"""Ablations: what each design choice of Selective Throttling buys.

Runs the three ablations of DESIGN.md §6 on a subset of the suite:

1. estimator swap    — C2 on BPRU (the paper's choice) vs JRS vs oracle;
2. escalation rule   — the §4.2 escalate-only rule on vs off;
3. gating threshold  — Pipeline Gating at thresholds 1-4.

Usage::

    python examples/ablation_study.py [instructions]
"""

import sys

from repro.experiments.ablations import (
    escalation_rule,
    estimator_swap,
    gating_threshold_sweep,
)
from repro.experiments.figures import format_figure
from repro.experiments.runner import ExperimentRunner

BENCHMARKS = ("go", "gcc", "twolf", "compress")


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    runner = ExperimentRunner(instructions=instructions, warmup=instructions // 3)

    print("=== 1. Estimator swap (policy C2) ===")
    swap = estimator_swap(runner, benchmarks=BENCHMARKS)
    print(format_figure(swap))
    averages = swap.averages()
    gap = (
        averages["C2/perfect"]["ed_improvement_pct"]
        - averages["C2/bpru"]["ed_improvement_pct"]
    )
    print(
        f"\nheadroom left on the table by realistic confidence estimation: "
        f"{gap:.1f} pp of E-D improvement"
    )
    print(
        "JRS-driven throttling has no VLC level and mislabels aggressively —"
        " the paper's reason for the four-level BPRU."
    )

    print("\n=== 2. Escalate-only rule (policy C2) ===")
    print(format_figure(escalation_rule(runner, benchmarks=BENCHMARKS)))
    print(
        "\nescalate-only holds throttles at the most restrictive armed level;"
        "\nlatest-wins lets a confident later branch de-escalate early."
    )

    print("\n=== 3. Pipeline Gating threshold sweep ===")
    print(format_figure(gating_threshold_sweep(runner, benchmarks=BENCHMARKS)))
    print(
        "\nthe paper (after Manne et al.) uses N=2: lower thresholds gate"
        "\nconstantly and destroy performance, higher ones stop saving power."
    )


if __name__ == "__main__":
    main()
