"""The paper's motivating trend: deeper pipelines waste more on speculation.

Sweeps pipeline depth (the paper's Figure 6 axis) and reports, per depth:
the baseline's wasted-energy fraction, and what Selective Throttling (C2)
recovers.  Also demonstrates the paper's §5.3.1 recipe of stretching the
in-order front-end and, at the deep end, the execution/D-cache latencies.

Usage::

    python examples/deep_pipeline_study.py [instructions]
"""

from __future__ import annotations

import sys

from repro import ExperimentRunner, compare, table3_config
from repro.utils.stats import arithmetic_mean, geometric_mean
from repro.workloads.suite import BENCHMARK_NAMES

DEPTHS = (6, 10, 14, 20, 28)


def main(argv) -> int:
    instructions = int(argv[1]) if len(argv) > 1 else 10_000
    benchmarks = BENCHMARK_NAMES[:4]  # keep the sweep quick; pass more if patient

    print(f"{'depth':>6s} {'front':>6s} {'IPC':>6s} {'wasted%':>8s} "
          f"{'C2 speedup':>11s} {'C2 energy%':>11s} {'C2 E-D%':>8s}")
    for depth in DEPTHS:
        config = table3_config().with_depth(depth)
        runner = ExperimentRunner(config=config, instructions=instructions)
        ipcs, wasted, comparisons = [], [], []
        for benchmark in benchmarks:
            baseline = runner.baseline(benchmark)
            ipcs.append(baseline.ipc)
            wasted.append(baseline.wasted_energy_fraction)
            comparisons.append(
                compare(baseline, runner.run(benchmark, ("throttle", "C2")))
            )
        print(
            f"{depth:6d} {config.front_end_stages:6d} "
            f"{arithmetic_mean(ipcs):6.2f} "
            f"{arithmetic_mean(wasted) * 100:7.1f}% "
            f"{geometric_mean(c.speedup for c in comparisons):11.3f} "
            f"{arithmetic_mean(c.energy_savings_pct for c in comparisons):11.2f} "
            f"{arithmetic_mean(c.ed_improvement_pct for c in comparisons):8.2f}"
        )
    print()
    print("Paper Figure 6: savings grow with depth "
          "(energy ~11% @ 6 stages -> ~17% @ 28).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
