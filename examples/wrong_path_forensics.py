"""Watch mis-speculation happen: pipetraces and wrong-path shadows.

Runs a short window of *go* (the suite's worst mispredictor) with the
pipeline tracer attached and prints:

1. a classic pipetrace around a misprediction (wrong-path µops render in
   lower case);
2. the wrong-path "shadow" behind each mispredicted branch — how many
   µops were fetched and how many made it all the way to issue before the
   squash (the work whose energy Table 1 calls wasted);
3. an instruction-lifetime histogram;
4. a peek at the wrong-path packets the instruction supply serves the
   front end down a mispredicted target.

Usage::

    python examples/wrong_path_forensics.py [benchmark]
"""

import sys

from repro.frontend import CompiledSupply
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.tracing import PipelineTracer, render_pipetrace, stage_occupancy_histogram
from repro.tracing.render import wrong_path_shadow_report
from repro.workloads.suite import BENCHMARK_NAMES, benchmark_spec


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "go"
    if name not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark; choose from {BENCHMARK_NAMES}")

    spec = benchmark_spec(name)
    # The processor builds a CompiledSupply by default; construct it
    # explicitly here so the example shows the injection point (a
    # LiveSupply or TraceSupply drops in the same way).
    program = spec.build_program()
    supply = CompiledSupply(program, spec.seed)
    processor = Processor(table3_config(), program, seed=spec.seed, supply=supply)
    tracer = PipelineTracer(capacity=20_000)
    processor.observer = tracer
    processor.run(6_000, warmup_instructions=1_000)

    traces = tracer.traces()
    branches = tracer.mispredicted_branches()
    print(f"{name}: {tracer.committed_count} committed, "
          f"{tracer.squashed_count} squashed in the traced window")
    print(f"mispredicted branches seen: {len(branches)}\n")

    # 1. Pipetrace around the first mispredicted branch in the window.
    if branches:
        anchor = branches[0].seq
        window = [t for t in traces if anchor - 4 <= t.seq <= anchor + 20]
        print("=== pipetrace around a misprediction "
              "(lower case = wrong path) ===")
        print(render_pipetrace(window))
        print()

    # 2. Wrong-path shadows.
    print("=== wrong-path shadow per mispredicted branch ===")
    print(wrong_path_shadow_report(traces))
    print()

    # 3. Lifetime histogram.
    print("=== instruction lifetimes ===")
    print(stage_occupancy_histogram(traces, bucket=8))
    print()

    # 4. What the supply hands fetch down a wrong path: whole-block
    # packets, one Python call per block instead of one per instruction.
    if branches:
        anchor = branches[0]
        block = next(
            b for b in program.blocks
            if b.instructions
            and b.address <= anchor.pc < b.address + 4 * len(b.instructions)
        )
        cursor = supply.start_cursor(block.taken_target
                                     if block.taken_target >= 0
                                     else block.fall_target, salt=1)
        print("=== first wrong-path packets past the mispredicted branch ===")
        for _ in range(3):
            records, cursor = supply.wrong_packet(cursor)
            ops = " ".join(static.opcode.value for static, *_ in records)
            print(f"  packet[{len(records):2d}] {ops}")
            print(f"    -> next block {cursor[0]}, speculative depth "
                  f"{len(cursor[2])}, step {cursor[3]}")


if __name__ == "__main__":
    main()
