"""Map the whole throttle-policy space and find its Pareto frontier.

The paper hand-picks 22 policies; this example enumerates the fetch-only
and fetch+noselect subspaces, evaluates them on three benchmarks, and
prints the (speedup, energy) Pareto frontier — checking whether the
paper's chosen points (A5, C2) are actually non-dominated on this
substrate.

Usage::

    python examples/policy_pareto.py [instructions]
"""

import sys

from repro.experiments.policy_search import (
    enumerate_policies,
    format_points,
    pareto_frontier,
    search_policies,
)

BENCHMARKS = ("go", "twolf", "gcc")


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    policies = enumerate_policies(include_decode=False)
    print(
        f"evaluating {len(policies)} policies x {len(BENCHMARKS)} benchmarks "
        f"({instructions} instructions each)..."
    )
    points = search_policies(
        benchmarks=BENCHMARKS, instructions=instructions, policies=policies
    )

    print("\n=== top policies by energy-delay ===")
    print(format_points(points, limit=12))

    frontier = pareto_frontier(points)
    print(f"\n=== Pareto frontier over (speedup, energy savings) "
          f"— {len(frontier)} of {len(points)} policies ===")
    print(format_points(frontier, limit=len(frontier)))

    paper_points = {
        "lc[fetch/4]-vlc[fetch=0]": "A5/C1",
        "lc[fetch/4+noselect]-vlc[fetch=0+noselect]": "~C2",
    }
    frontier_names = {p.policy_name for p in frontier}
    print()
    for name, label in paper_points.items():
        verdict = "ON the frontier" if name in frontier_names else "dominated"
        print(f"paper's {label:5s} ({name}): {verdict}")


if __name__ == "__main__":
    main()
