"""Bring your own workload: define a synthetic program, then evaluate
Selective Throttling on it.

The eight shipped benchmarks are calibrated stand-ins for the paper's
SPECint selection, but the generator is a general tool: this example
builds a "branchy pointer-chaser" from scratch, measures its gshare
behaviour, compares throttling policies on it, and finishes by recording
its true path to a trace and replaying it through the instruction-supply
layer (bit-identical to the live walk).

Usage::

    python examples/custom_workload.py [instructions]
"""

import os
import sys
import tempfile

from repro.core.throttler import SelectiveThrottler
from repro.core.policy import experiment_policy
from repro.frontend import CompiledSupply, TraceSupply, resolve_trace_records
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator, ProgramShape
from repro.workloads.trace import (
    TRACE_VERSION,
    TraceHeader,
    TraceReader,
    TraceRecorder,
)


def build_shape() -> ProgramShape:
    """A hostile workload: dense, noisy branches over pointer chains."""
    return ProgramShape(
        num_functions=16,
        blocks_per_function=(10, 18),
        block_size=(3, 9),
        loop_fraction=0.35,
        loop_trip_range=(4, 18),
        loop_jitter=0.3,          # data-dependent trip counts
        w_biased=0.30,
        w_pattern=0.10,
        w_correlated=0.15,
        w_random=0.10,            # 50/50 branches: the predictor's nightmare
        w_bad=0.15,
        bad_strength=(0.55, 0.75),
        serial_chain_fraction=0.30,
        hard_branch_chain=0.7,    # most hard branches test missing loads
    )


def run(program_seed: int, policy_name, instructions: int):
    program = ProgramGenerator(build_shape(), program_seed, name="chaser").generate()
    controller = None
    if policy_name is not None:
        controller = SelectiveThrottler(experiment_policy(policy_name))
    processor = Processor(
        table3_config(), program, controller=controller, seed=program_seed
    )
    processor.run(instructions, warmup_instructions=instructions // 3)
    return processor


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = 424242

    baseline = run(seed, None, instructions)
    stats = baseline.stats
    model = baseline.power
    print("custom workload 'chaser' under the Table-3 machine:")
    print(f"  IPC                    {stats.ipc:6.2f}")
    print(f"  gshare miss rate       {stats.branch_miss_rate * 100:6.1f}%")
    print(f"  wrong-path fetches     "
          f"{100 * stats.fetched_wrong_path / stats.fetched:6.1f}%")
    print(f"  wasted energy          "
          f"{100 * model.total_wasted_energy() / model.total_energy():6.1f}%")

    print(f"\n{'policy':8s} {'speedup':>8s} {'power%':>8s} {'energy%':>8s}")
    base_cycles = stats.cycles
    base_energy = model.total_energy()
    base_power = model.average_power()
    for name in ("A1", "A5", "C2", "C6"):
        throttled = run(seed, name, instructions)
        t_model = throttled.power
        speedup = base_cycles / throttled.stats.cycles
        power = 100 * (1 - t_model.average_power() / base_power)
        energy = 100 * (1 - t_model.total_energy() / base_energy)
        print(f"{name:8s} {speedup:8.3f} {power:8.2f} {energy:8.2f}")

    print(
        "\nOn branch-hostile code the aggressive policies shine: compare the"
        "\nsame table on a predictable workload by lowering w_random/w_bad."
    )

    # Record the custom program's true path and replay it through the
    # full pipeline via a TraceSupply.  (Calibrated benchmarks get this
    # for free from `repro trace record/replay`; custom programs wire the
    # pieces by hand since the trace header cannot name them.)
    replay_len = min(instructions, 4_000)
    program = ProgramGenerator(build_shape(), seed, name="chaser").generate()
    recorder = TraceRecorder(CompiledSupply(program, seed))
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "chaser.trace.gz")
        recorder.record_to_file(
            path, replay_len + replay_len // 3 + 4096,
            header=TraceHeader(TRACE_VERSION, "chaser", seed, 0),
        )
        replay_program = ProgramGenerator(build_shape(), seed, name="chaser").generate()
        supply = TraceSupply(
            replay_program, seed,
            resolve_trace_records(replay_program, TraceReader(path)),
        )
        replayed = Processor(
            table3_config(), replay_program, seed=seed, supply=supply
        )
        replayed.run(replay_len, warmup_instructions=replay_len // 3)
    live = run(seed, None, replay_len) if replay_len != instructions else baseline
    match = (
        replayed.stats.cycles == live.stats.cycles
        and replayed.stats.committed == live.stats.committed
    )
    print(
        f"\ntrace replay: {replayed.stats.committed} instructions in "
        f"{replayed.stats.cycles} cycles — "
        + ("bit-identical to the live walk" if match else "DIVERGED (bug!)")
    )


if __name__ == "__main__":
    main()
