"""Bring your own workload: define a synthetic program, then evaluate
Selective Throttling on it.

The eight shipped benchmarks are calibrated stand-ins for the paper's
SPECint selection, but the generator is a general tool: this example
builds a "branchy pointer-chaser" from scratch, measures its gshare
behaviour, and compares throttling policies on it.

Usage::

    python examples/custom_workload.py [instructions]
"""

import sys

from repro.core.throttler import SelectiveThrottler
from repro.core.policy import experiment_policy
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator, ProgramShape


def build_shape() -> ProgramShape:
    """A hostile workload: dense, noisy branches over pointer chains."""
    return ProgramShape(
        num_functions=16,
        blocks_per_function=(10, 18),
        block_size=(3, 9),
        loop_fraction=0.35,
        loop_trip_range=(4, 18),
        loop_jitter=0.3,          # data-dependent trip counts
        w_biased=0.30,
        w_pattern=0.10,
        w_correlated=0.15,
        w_random=0.10,            # 50/50 branches: the predictor's nightmare
        w_bad=0.15,
        bad_strength=(0.55, 0.75),
        serial_chain_fraction=0.30,
        hard_branch_chain=0.7,    # most hard branches test missing loads
    )


def run(program_seed: int, policy_name, instructions: int):
    program = ProgramGenerator(build_shape(), program_seed, name="chaser").generate()
    controller = None
    if policy_name is not None:
        controller = SelectiveThrottler(experiment_policy(policy_name))
    processor = Processor(
        table3_config(), program, controller=controller, seed=program_seed
    )
    processor.run(instructions, warmup_instructions=instructions // 3)
    return processor


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = 424242

    baseline = run(seed, None, instructions)
    stats = baseline.stats
    model = baseline.power
    print("custom workload 'chaser' under the Table-3 machine:")
    print(f"  IPC                    {stats.ipc:6.2f}")
    print(f"  gshare miss rate       {stats.branch_miss_rate * 100:6.1f}%")
    print(f"  wrong-path fetches     "
          f"{100 * stats.fetched_wrong_path / stats.fetched:6.1f}%")
    print(f"  wasted energy          "
          f"{100 * model.total_wasted_energy() / model.total_energy():6.1f}%")

    print(f"\n{'policy':8s} {'speedup':>8s} {'power%':>8s} {'energy%':>8s}")
    base_cycles = stats.cycles
    base_energy = model.total_energy()
    base_power = model.average_power()
    for name in ("A1", "A5", "C2", "C6"):
        throttled = run(seed, name, instructions)
        t_model = throttled.power
        speedup = base_cycles / throttled.stats.cycles
        power = 100 * (1 - t_model.average_power() / base_power)
        energy = 100 * (1 - t_model.total_energy() / base_energy)
        print(f"{name:8s} {speedup:8.3f} {power:8.2f} {energy:8.2f}")

    print(
        "\nOn branch-hostile code the aggressive policies shine: compare the"
        "\nsame table on a predictable workload by lowering w_random/w_bad."
    )


if __name__ == "__main__":
    main()
