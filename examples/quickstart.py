"""Quickstart: simulate one benchmark with and without Selective Throttling.

Runs the `go` benchmark (the suite's worst predictor case, 19.7% gshare
miss rate in the paper's Table 2) on the Table-3 baseline core, then again
under the paper's best configuration C2 (VLC: fetch stall, LC: quarter
fetch bandwidth + no-select), and prints the paper's four metrics.

Usage::

    python examples/quickstart.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro import ExperimentRunner, compare


def main(argv) -> int:
    benchmark = argv[1] if len(argv) > 1 else "go"
    instructions = int(argv[2]) if len(argv) > 2 else 20_000

    runner = ExperimentRunner(instructions=instructions)
    print(f"Simulating {benchmark!r} for {instructions} instructions ...")

    baseline = runner.baseline(benchmark)
    print(
        f"  baseline: IPC {baseline.ipc:.2f}, "
        f"{baseline.average_power_watts:.1f} W, "
        f"miss rate {baseline.miss_rate * 100:.1f}%, "
        f"{baseline.wasted_energy_fraction * 100:.1f}% of energy wasted "
        f"on mis-speculated instructions"
    )

    throttled = runner.run(benchmark, ("throttle", "C2"))
    print(
        f"  C2:       IPC {throttled.ipc:.2f}, "
        f"{throttled.average_power_watts:.1f} W"
    )

    result = compare(baseline, throttled)
    print()
    print(f"Selective Throttling (C2) on {benchmark}:")
    print(f"  speedup            {result.speedup:.3f}  (1.0 = no slowdown)")
    print(f"  power savings      {result.power_savings_pct:6.2f} %")
    print(f"  energy savings     {result.energy_savings_pct:6.2f} %")
    print(f"  energy-delay gain  {result.ed_improvement_pct:6.2f} %")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
