"""Study confidence estimator quality (SPEC / PVN) across the suite.

Replays every benchmark's true path through gshare plus both estimators —
the modified BPRU the paper proposes and the JRS estimator it compares
against — and prints their SPEC/PVN operating points next to the values
the paper reports (BPRU ~60/45, JRS ~90/24).  The contrast between the two
(JRS catches nearly every misprediction but cries wolf; BPRU is choosier)
is exactly what makes graduated throttling work.

Usage::

    python examples/confidence_quality.py [instructions]
"""

from __future__ import annotations

import sys

from repro import BENCHMARK_NAMES, GSharePredictor, benchmark_spec
from repro.confidence.bpru import BPRUEstimator
from repro.confidence.jrs import JRSEstimator
from repro.confidence.metrics import ConfidenceMatrix
from repro.program.walker import TruePathOracle


def measure(name: str, instructions: int):
    spec = benchmark_spec(name)
    program = spec.build_program()
    oracle = TruePathOracle(program, spec.seed)
    predictor = GSharePredictor(8)
    estimators = {"bpru": BPRUEstimator(8), "jrs": JRSEstimator(8, threshold=12)}
    matrices = {key: ConfidenceMatrix() for key in estimators}

    for index in range(instructions):
        record = oracle.get(index)
        static = record.static
        if static.is_cond_branch:
            prediction = predictor.predict(static.address)
            correct = prediction.taken == record.taken
            for key, estimator in estimators.items():
                level = estimator.estimate(static.address, prediction, predictor)
                matrices[key].record(level, correct)
                estimator.train(
                    static.address, correct, prediction.snapshot, taken=record.taken
                )
            if not correct:
                predictor.restore(prediction.snapshot, record.taken)
            predictor.train(static.address, record.taken, prediction.snapshot)
        if index % 8192 == 0:
            oracle.prune_before(max(0, index - 64))
    return matrices


def main(argv) -> int:
    instructions = int(argv[1]) if len(argv) > 1 else 80_000
    print(f"{'benchmark':10s} {'BPRU SPEC':>10s} {'BPRU PVN':>9s} "
          f"{'JRS SPEC':>9s} {'JRS PVN':>8s}")
    totals = {"bpru": [0.0, 0.0], "jrs": [0.0, 0.0]}
    for name in BENCHMARK_NAMES:
        matrices = measure(name, instructions)
        bpru, jrs = matrices["bpru"], matrices["jrs"]
        print(
            f"{name:10s} {bpru.spec() * 100:9.1f}% {bpru.pvn() * 100:8.1f}% "
            f"{jrs.spec() * 100:8.1f}% {jrs.pvn() * 100:7.1f}%"
        )
        for key in totals:
            totals[key][0] += matrices[key].spec()
            totals[key][1] += matrices[key].pvn()
    count = len(BENCHMARK_NAMES)
    print("-" * 50)
    print(
        f"{'average':10s} {totals['bpru'][0] / count * 100:9.1f}% "
        f"{totals['bpru'][1] / count * 100:8.1f}% "
        f"{totals['jrs'][0] / count * 100:8.1f}% "
        f"{totals['jrs'][1] / count * 100:7.1f}%"
    )
    print()
    print("paper      BPRU: SPEC ~60% PVN ~45%   JRS: SPEC ~90% PVN ~24%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
