"""Adaptive Selective Throttling: let the machine pick its own policy.

The paper fixes one static policy (C2).  The adaptive controller watches
the realised precision of its recent triggers and climbs or descends a
policy ladder (A1 -> A5 -> C2).  This example compares static A1, static
C2 and the adaptive controller across the suite, with a multi-seed
campaign quantifying the uncertainty of the adaptive win/loss.

Usage::

    python examples/adaptive_throttling.py [instructions]
"""

import sys

from repro.core.adaptive import AdaptiveThrottler
from repro.experiments.campaign import format_campaign, run_campaign
from repro.experiments.results import compare
from repro.experiments.runner import run_benchmark
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.workloads.suite import BENCHMARK_NAMES, benchmark_spec

BENCHMARKS = ("go", "gcc", "gzip", "twolf")


def run_adaptive(name: str, instructions: int):
    spec = benchmark_spec(name)
    throttler = AdaptiveThrottler()
    processor = Processor(
        table3_config(), spec.build_program(), controller=throttler, seed=spec.seed
    )
    processor.run(instructions, warmup_instructions=instructions // 3)
    return processor, throttler


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000

    print(f"{'bench':8s} {'rung':>4s} {'promote':>8s} {'demote':>7s} "
          f"{'precision':>10s} {'energy%':>8s} {'speedup':>8s}")
    for name in BENCHMARKS:
        baseline = run_benchmark(
            name, ("baseline",), instructions=instructions,
            warmup=instructions // 3,
        )
        processor, throttler = run_adaptive(name, instructions)
        energy = 100 * (
            1 - processor.power.total_energy() / baseline.energy_joules
        )
        speedup = baseline.cycles / processor.stats.cycles
        print(
            f"{name:8s} {throttler.rung:>4d} {throttler.promotions:>8d} "
            f"{throttler.demotions:>7d} {throttler.precision:>10.2f} "
            f"{energy:>8.2f} {speedup:>8.3f}"
        )

    print("\nstatic policies for context (multi-seed, 95% intervals):")
    campaign = run_campaign(
        {"A1": ("throttle", "A1"), "C2": ("throttle", "C2")},
        benchmarks=BENCHMARKS,
        seeds=2,
        instructions=instructions,
        name="static-policies",
    )
    print(format_campaign(campaign, ("energy_savings_pct", "speedup")))
    print(
        "\nThe adaptive controller converges to aggressive rungs on codes"
        "\nwhose confidence labels keep paying off, and retreats to gentle"
        "\nfetch-halving when they misfire — no per-program tuning."
    )


if __name__ == "__main__":
    main()
