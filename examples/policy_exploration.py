"""Explore the whole throttling policy space on one benchmark.

Sweeps every named experiment of Figures 3-5 (A1-A6, B1-B8, C1-C6) plus
Pipeline Gating and the three oracles over a chosen benchmark, printing a
league table sorted by energy-delay improvement.  This is the figure-level
view of the paper condensed to a single benchmark — handy when tuning a
new policy.

Usage::

    python examples/policy_exploration.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro import ExperimentRunner, compare, list_experiments
from repro.core.policy import GATING_EXPERIMENTS


def main(argv) -> int:
    benchmark = argv[1] if len(argv) > 1 else "twolf"
    instructions = int(argv[2]) if len(argv) > 2 else 15_000

    runner = ExperimentRunner(instructions=instructions)
    baseline = runner.baseline(benchmark)
    print(
        f"{benchmark}: baseline IPC {baseline.ipc:.2f}, "
        f"{baseline.average_power_watts:.1f} W, "
        f"{baseline.wasted_energy_fraction * 100:.1f}% wasted"
    )

    specs = {}
    for name in list_experiments():
        if name in GATING_EXPERIMENTS:
            continue  # A7/B9/C7 are all the same gating mechanism
        specs[name] = ("throttle", name)
    specs["gating"] = ("gating", 2)
    for mode in ("fetch", "decode", "select"):
        specs[f"oracle-{mode}"] = ("oracle", mode)

    results = []
    for label, spec in specs.items():
        candidate = runner.run(benchmark, spec, label=label)
        results.append(compare(baseline, candidate))

    results.sort(key=lambda c: c.ed_improvement_pct, reverse=True)
    print()
    print(f"{'policy':<14s}{'speedup':>8s} {'power%':>8s} {'energy%':>8s} {'E-D%':>8s}")
    for comparison in results:
        print(
            f"{comparison.label:<14s}{comparison.speedup:8.3f} "
            f"{comparison.power_savings_pct:8.2f} "
            f"{comparison.energy_savings_pct:8.2f} "
            f"{comparison.ed_improvement_pct:8.2f}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
