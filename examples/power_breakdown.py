"""Per-unit power analysis of one benchmark (a single-benchmark Table 1).

Shows where the watts go on the baseline machine, how much of each block's
energy is wasted on mis-speculated instructions, and what the best policy
(C2) recovers — with text bar charts.

Usage::

    python examples/power_breakdown.py [benchmark] [instructions]
"""

import sys

from repro.experiments.runner import run_benchmark
from repro.power.units import TABLE1_SHARES, PowerUnit
from repro.report.ascii import bar_chart
from repro.workloads.suite import BENCHMARK_NAMES


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "go"
    if benchmark not in BENCHMARK_NAMES:
        raise SystemExit(f"unknown benchmark; choose from {BENCHMARK_NAMES}")
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

    baseline = run_benchmark(
        benchmark, ("baseline",), instructions=instructions,
        warmup=instructions // 3,
    )
    throttled = run_benchmark(
        benchmark, ("throttle", "C2"), instructions=instructions,
        warmup=instructions // 3,
    )

    print(f"=== {benchmark}: baseline power breakdown ===")
    shares = {
        unit.name.lower(): baseline.breakdown[unit.name.lower()]["share"] * 100
        for unit in PowerUnit
    }
    print(bar_chart(shares, unit="%"))
    print(f"\naverage power: {baseline.average_power_watts:.1f} W "
          f"(paper baseline: 56.4 W suite average)")

    print("\n=== fraction of overall power wasted by mis-speculation ===")
    wasted = {
        unit.name.lower():
            baseline.breakdown[unit.name.lower()]["wasted_of_overall"] * 100
        for unit in PowerUnit
    }
    print(bar_chart(wasted, unit="%"))
    total_wasted = sum(wasted.values())
    print(f"\ntotal wasted: {total_wasted:.1f}% of overall power "
          f"(paper suite average: 27.9%)")

    print("\n=== what Selective Throttling (C2) recovers ===")
    power_saving = 100 * (
        1 - throttled.average_power_watts / baseline.average_power_watts
    )
    energy_saving = 100 * (1 - throttled.energy_joules / baseline.energy_joules)
    slowdown = 100 * (1 - baseline.cycles / throttled.cycles)
    print(f"  power savings   {power_saving:6.1f}%")
    print(f"  energy savings  {energy_saving:6.1f}%")
    print(f"  slowdown        {slowdown:6.1f}%")
    print(f"  fetch-throttled cycles: {throttled.extra['fetch_throttled_cycles']}")
    print(f"  selections blocked:     {throttled.extra['selection_blocked']}")


if __name__ == "__main__":
    main()
