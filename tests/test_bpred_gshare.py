"""Tests for the gshare predictor."""

import pytest

from repro.bpred.gshare import GSharePredictor
from repro.errors import ConfigurationError


def test_size_to_entries():
    predictor = GSharePredictor(8)
    # 8 KB of 2-bit counters = 32768 entries, 15 index bits.
    assert predictor.entries == 32768
    assert predictor.index_bits == 15


def test_invalid_size_rejected():
    with pytest.raises(ConfigurationError):
        GSharePredictor(0)


def test_learns_always_taken_branch():
    predictor = GSharePredictor(1)
    pc = 0x4000
    for _ in range(8):
        prediction = predictor.predict(pc)
        predictor.train(pc, True, prediction.snapshot)
    assert predictor.predict(pc).taken


def test_learns_never_taken_branch():
    predictor = GSharePredictor(1)
    pc = 0x4000
    for _ in range(8):
        prediction = predictor.predict(pc)
        predictor.restore(prediction.snapshot, False)
        predictor.train(pc, False, prediction.snapshot)
    assert not predictor.predict(pc).taken


def test_learns_alternating_pattern_via_history():
    predictor = GSharePredictor(8)
    pc = 0x4000
    outcome = True
    # warm up the alternating pattern
    for _ in range(64):
        prediction = predictor.predict(pc)
        if prediction.taken != outcome:
            predictor.restore(prediction.snapshot, outcome)
        predictor.train(pc, outcome, prediction.snapshot)
        outcome = not outcome
    hits = 0
    for _ in range(32):
        prediction = predictor.predict(pc)
        hits += prediction.taken == outcome
        if prediction.taken != outcome:
            predictor.restore(prediction.snapshot, outcome)
        predictor.train(pc, outcome, prediction.snapshot)
        outcome = not outcome
    assert hits >= 30


def test_speculative_history_update():
    predictor = GSharePredictor(8)
    history_before = predictor.history
    prediction = predictor.predict(0x1000)
    expected = ((history_before << 1) | int(prediction.taken)) & ((1 << 15) - 1)
    assert predictor.history == expected
    assert prediction.snapshot == history_before


def test_restore_repairs_history():
    predictor = GSharePredictor(8)
    prediction = predictor.predict(0x1000)
    predictor.restore(prediction.snapshot, not prediction.taken)
    expected = ((prediction.snapshot << 1) | int(not prediction.taken)) & ((1 << 15) - 1)
    assert predictor.history == expected


def test_counter_strength_and_weakness():
    predictor = GSharePredictor(1)
    pc = 0x2000
    prediction = predictor.predict(pc)
    # initial counters are weakly taken (2 for 2-bit counters)
    assert predictor.counter_strength(pc, prediction.snapshot) == 2
    assert predictor.is_weak(pc, prediction.snapshot)
    predictor.train(pc, True, prediction.snapshot)
    assert predictor.counter_strength(pc, prediction.snapshot) == 3
    assert not predictor.is_weak(pc, prediction.snapshot)


def test_counter_saturates():
    predictor = GSharePredictor(1)
    pc = 0x2000
    snapshot = predictor.history
    for _ in range(10):
        predictor.train(pc, True, snapshot)
    assert predictor.counter_strength(pc, snapshot) == 3
    for _ in range(10):
        predictor.train(pc, False, snapshot)
    assert predictor.counter_strength(pc, snapshot) == 0


def test_storage_bits_scale_with_size():
    assert GSharePredictor(16).storage_bits() > GSharePredictor(8).storage_bits()
    assert GSharePredictor(8).storage_bits() == 32768 * 2 + 15
