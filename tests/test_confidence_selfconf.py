"""Self-confidence estimators (perceptron magnitude / raw counters)."""

import pytest

from repro.bpred.gshare import GSharePredictor
from repro.bpred.perceptron import PerceptronPredictor
from repro.confidence.base import ConfidenceLevel
from repro.confidence.selfconf import (
    CounterConfidenceEstimator,
    PerceptronConfidenceEstimator,
)
from repro.errors import ConfigurationError


def test_perceptron_confidence_levels_track_magnitude():
    predictor = PerceptronPredictor(8, history_bits=8)
    estimator = PerceptronConfidenceEstimator()
    theta = predictor.theta

    def level_for(output: int) -> ConfidenceLevel:
        from repro.bpred.base import Prediction

        return estimator.estimate(
            0x100, Prediction(output >= 0, (0, output)), predictor
        )

    assert level_for(theta + 1) is ConfidenceLevel.VHC
    assert level_for(theta // 2) is ConfidenceLevel.HC
    assert level_for(theta // 4) is ConfidenceLevel.LC
    assert level_for(0) is ConfidenceLevel.VLC
    assert level_for(-(theta + 1)) is ConfidenceLevel.VHC


def test_perceptron_confidence_requires_perceptron():
    predictor = GSharePredictor(8)
    estimator = PerceptronConfidenceEstimator()
    prediction = predictor.predict(0x100)
    with pytest.raises(ConfigurationError):
        estimator.estimate(0x100, prediction, predictor)


def test_untrained_perceptron_is_very_low_confidence():
    predictor = PerceptronPredictor(8)
    estimator = PerceptronConfidenceEstimator()
    prediction = predictor.predict(0x200)
    assert estimator.estimate(0x200, prediction, predictor) is ConfidenceLevel.VLC


def test_trained_perceptron_becomes_very_high_confidence():
    predictor = PerceptronPredictor(8)
    estimator = PerceptronConfidenceEstimator()
    pc = 0x300
    for _ in range(300):
        prediction = predictor.predict(pc)
        predictor.train(pc, True, prediction.snapshot)
    prediction = predictor.predict(pc)
    assert estimator.estimate(pc, prediction, predictor) is ConfidenceLevel.VHC


def test_counter_confidence_weak_is_low():
    predictor = GSharePredictor(8)
    estimator = CounterConfidenceEstimator()
    prediction = predictor.predict(0x400)
    # gshare initialises weakly taken: strength 2 -> LC.
    assert estimator.estimate(0x400, prediction, predictor) is ConfidenceLevel.LC


def test_counter_confidence_strong_is_high():
    # Bimodal indexes by PC alone, so repeated training saturates the
    # exact counter the next prediction reads (gshare would spread the
    # updates over history-dependent indices).
    from repro.bpred.bimodal import BimodalPredictor

    predictor = BimodalPredictor(8)
    estimator = CounterConfidenceEstimator()
    pc = 0x500
    for _ in range(8):
        prediction = predictor.predict(pc)
        predictor.train(pc, True, prediction.snapshot)
    prediction = predictor.predict(pc)
    assert estimator.estimate(pc, prediction, predictor) is ConfidenceLevel.HC


def test_self_estimators_are_storage_free():
    assert PerceptronConfidenceEstimator().storage_bits() == 0
    assert CounterConfidenceEstimator().storage_bits() == 0


def test_pipeline_accepts_new_kinds():
    from dataclasses import replace

    from repro.pipeline.config import table3_config
    from repro.pipeline.processor import Processor
    from repro.workloads.suite import benchmark_spec

    spec = benchmark_spec("gzip")
    config = replace(
        table3_config(), bpred_kind="perceptron", confidence_kind="perceptron-self"
    )
    processor = Processor(config, spec.build_program(), seed=spec.seed)
    stats = processor.run(1_500, warmup_instructions=300)
    assert stats.committed >= 1_500
    assert stats.confidence.total > 0
