"""Experiment-driver layer: runner memoisation and figure aggregation."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult, figure1, format_figure
from repro.experiments.results import ComparisonResult, compare
from repro.experiments.runner import ExperimentRunner, run_benchmark


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=1_500, warmup=400)


def test_baseline_is_memoised(runner):
    first = runner.baseline("gzip")
    second = runner.baseline("gzip")
    assert first is second


def test_different_specs_are_distinct_cache_entries(runner):
    baseline = runner.run("gzip", ("baseline",))
    throttled = runner.run("gzip", ("throttle", "A1"))
    assert baseline is not throttled
    assert throttled.label == "A1"


def test_label_override_does_not_corrupt_cache(runner):
    original = runner.run("gzip", ("throttle", "A1"))
    relabeled = runner.run("gzip", ("throttle", "A1"), label="renamed")
    assert relabeled.label == "renamed"
    again = runner.run("gzip", ("throttle", "A1"))
    assert again.label == "A1"
    assert again.cycles == original.cycles


def test_estimator_override_is_part_of_the_key(runner):
    bpru = runner.run("gzip", ("throttle", "A1"))
    jrs = runner.run("gzip", ("throttle", "A1", "jrs"))
    assert bpru.cycles != jrs.cycles or bpru.energy_joules != jrs.energy_joules


def test_compare_rejects_cross_benchmark(runner):
    a = runner.baseline("gzip")
    b = run_benchmark("go", ("baseline",), instructions=1_500, warmup=400)
    with pytest.raises(ExperimentError):
        compare(a, b)


def test_compare_identity_is_neutral(runner):
    baseline = runner.baseline("gzip")
    comparison = compare(baseline, baseline)
    assert comparison.speedup == pytest.approx(1.0)
    assert comparison.energy_savings_pct == pytest.approx(0.0)
    assert comparison.ed_improvement_pct == pytest.approx(0.0)


def test_figure_average_mixes_geometric_speedup():
    figure = FigureResult("demo")
    figure.rows["X"] = {
        "a": ComparisonResult("a", "X", 0.5, 0, 0, 0),
        "b": ComparisonResult("b", "X", 2.0, 0, 0, 0),
    }
    # Geometric mean of 0.5 and 2.0 is exactly 1.0.
    assert figure.average("X")["speedup"] == pytest.approx(1.0)


def test_figure_subset_run_contains_only_requested(runner):
    figure = figure1(runner, benchmarks=["gzip"])
    for per_benchmark in figure.rows.values():
        assert list(per_benchmark) == ["gzip"]


def test_format_figure_has_a_row_per_experiment():
    figure = FigureResult("demo")
    figure.rows["X"] = {"a": ComparisonResult("a", "X", 1.0, 1.0, 1.0, 1.0)}
    figure.rows["Y"] = {"a": ComparisonResult("a", "Y", 1.0, 2.0, 2.0, 2.0)}
    text = format_figure(figure)
    assert len(text.splitlines()) == 4  # title + header + 2 rows


def test_oracle_runs_use_perfect_confidence(runner):
    result = runner.run("gzip", ("oracle", "fetch"))
    # Perfect labels: every misprediction is VLC, every correct VHC.
    assert result.spec_metric == pytest.approx(1.0)
    assert result.pvn_metric == pytest.approx(1.0)
