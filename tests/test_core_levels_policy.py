"""Tests for throttle levels and the named experiment policies."""

import pytest

from repro.confidence.base import ConfidenceLevel
from repro.core.levels import BandwidthLevel
from repro.core.policy import (
    FIGURE3_EXPERIMENTS,
    FIGURE4_EXPERIMENTS,
    FIGURE5_EXPERIMENTS,
    GATING_EXPERIMENTS,
    ThrottleAction,
    ThrottlePolicy,
    experiment_policy,
    list_experiments,
)
from repro.errors import ExperimentError


# --- levels -------------------------------------------------------------

def test_full_always_active():
    assert all(BandwidthLevel.FULL.active(c) for c in range(8))


def test_half_alternates():
    pattern = [BandwidthLevel.HALF.active(c) for c in range(6)]
    assert pattern == [True, False, True, False, True, False]


def test_quarter_one_in_four():
    active = [c for c in range(16) if BandwidthLevel.QUARTER.active(c)]
    assert active == [0, 4, 8, 12]


def test_stall_never_active():
    assert not any(BandwidthLevel.STALL.active(c) for c in range(16))


def test_most_restrictive_ordering():
    assert BandwidthLevel.most_restrictive(
        BandwidthLevel.HALF, BandwidthLevel.STALL
    ) is BandwidthLevel.STALL
    assert BandwidthLevel.most_restrictive(
        BandwidthLevel.QUARTER, BandwidthLevel.FULL
    ) is BandwidthLevel.QUARTER


def test_describe_labels():
    assert BandwidthLevel.HALF.describe() == "/2"
    assert BandwidthLevel.STALL.describe() == "=0"


# --- actions / policies ---------------------------------------------------

def test_null_action():
    assert ThrottleAction().is_null
    assert not ThrottleAction(fetch=BandwidthLevel.HALF).is_null
    assert not ThrottleAction(no_select=True).is_null


def test_action_describe():
    action = ThrottleAction(BandwidthLevel.QUARTER, BandwidthLevel.STALL, True)
    assert action.describe() == "fetch/4+decode=0+noselect"
    assert ThrottleAction().describe() == "none"


def test_policy_high_confidence_default_null():
    policy = ThrottlePolicy("t", lc=ThrottleAction(BandwidthLevel.HALF),
                            vlc=ThrottleAction(BandwidthLevel.STALL))
    assert policy.action_for(ConfidenceLevel.VHC).is_null
    assert policy.action_for(ConfidenceLevel.HC).is_null
    assert policy.action_for(ConfidenceLevel.LC).fetch is BandwidthLevel.HALF
    assert policy.action_for(ConfidenceLevel.VLC).fetch is BandwidthLevel.STALL


# --- experiment tables ------------------------------------------------------

def test_figure3_transcription():
    a5 = FIGURE3_EXPERIMENTS["A5"]
    assert a5.action_for(ConfidenceLevel.LC).fetch is BandwidthLevel.QUARTER
    assert a5.action_for(ConfidenceLevel.VLC).fetch is BandwidthLevel.STALL
    a6 = FIGURE3_EXPERIMENTS["A6"]
    assert a6.action_for(ConfidenceLevel.LC).fetch is BandwidthLevel.STALL
    assert FIGURE3_EXPERIMENTS["A7"] is None  # Pipeline Gating


def test_figure4_vlc_always_stalls_fetch():
    for name, policy in FIGURE4_EXPERIMENTS.items():
        if policy is None:
            continue
        assert policy.action_for(ConfidenceLevel.VLC).fetch is BandwidthLevel.STALL, name


def test_figure4_b1_decode_only():
    b1 = FIGURE4_EXPERIMENTS["B1"]
    lc = b1.action_for(ConfidenceLevel.LC)
    assert lc.fetch is BandwidthLevel.FULL
    assert lc.decode is BandwidthLevel.HALF


def test_figure5_noselect_pairs():
    for plain, with_sel in (("C1", "C2"), ("C3", "C4"), ("C5", "C6")):
        base = FIGURE5_EXPERIMENTS[plain].action_for(ConfidenceLevel.LC)
        sel = FIGURE5_EXPERIMENTS[with_sel].action_for(ConfidenceLevel.LC)
        assert not base.no_select
        assert sel.no_select
        assert base.fetch is sel.fetch
        assert base.decode is sel.decode


def test_figure5_c2_matches_paper_best():
    c2 = FIGURE5_EXPERIMENTS["C2"]
    lc = c2.action_for(ConfidenceLevel.LC)
    vlc = c2.action_for(ConfidenceLevel.VLC)
    assert lc.fetch is BandwidthLevel.QUARTER and lc.no_select
    assert vlc.fetch is BandwidthLevel.STALL


def test_experiment_lookup():
    assert experiment_policy("A5").name == "A5"
    assert experiment_policy("A7") is None
    with pytest.raises(ExperimentError):
        experiment_policy("Z9")


def test_list_experiments_complete():
    names = list_experiments()
    assert len(names) == 7 + 9 + 7
    assert GATING_EXPERIMENTS == {"A7", "B9", "C7"}


def test_policy_describe_mentions_actions():
    text = experiment_policy("C2").describe()
    assert "fetch/4" in text and "noselect" in text
