"""Command-line interface (fast paths only; figures run at tiny scale)."""

import json

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "compress" in out


def test_table3_command(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "8 instr/cycle" in out


def test_run_command(capsys):
    code = main(["run", "go", "C2", "--instructions", "2000", "--warmup", "500"])
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "energy savings" in out


def test_run_command_with_estimator_override(capsys):
    code = main(
        ["run", "go", "A5", "jrs", "--instructions", "2000", "--warmup", "500"]
    )
    assert code == 0
    assert "A5/jrs" in capsys.readouterr().out


def test_run_command_requires_two_args():
    with pytest.raises(SystemExit):
        main(["run", "go"])


def test_unknown_benchmark_subset_rejected():
    with pytest.raises(SystemExit):
        main(["figure1", "--benchmarks", "nonexistent"])


def test_campaign_command_with_cache_and_jobs(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    save_path = tmp_path / "campaign.json"
    argv = [
        "campaign", "A5",
        "--benchmarks", "gzip",
        "--seeds", "2",
        "--instructions", "1200",
        "--jobs", "2",
        "--cache-dir", str(cache_dir),
        "--save", str(save_path),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "A5" in out
    assert "±" in out
    # Entries only — the underscore-prefixed stats sidecar is metadata.
    cached_entries = list(cache_dir.glob("[!_]*.json"))
    assert len(cached_entries) == 4  # 2 seeds x (baseline + A5)
    first = save_path.read_text()

    # Warm rerun: byte-identical output from the cache alone.
    assert main(argv) == 0
    assert save_path.read_text() == first
    assert len(list(cache_dir.glob("[!_]*.json"))) == 4


def test_campaign_command_requires_an_experiment():
    with pytest.raises(SystemExit):
        main(["campaign"])


def test_run_command_with_cache_dir(tmp_path, capsys):
    argv = [
        "run", "go", "C2",
        "--instructions", "1200", "--warmup", "300",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    assert "speedup" in capsys.readouterr().out
    assert list((tmp_path / "cache").glob("*.json"))


def test_no_cache_flag_disables_the_cache(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    argv = [
        "run", "go", "C2",
        "--instructions", "1200", "--warmup", "300",
        "--cache-dir", str(cache_dir), "--no-cache",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert not cache_dir.exists() or not list(cache_dir.glob("*.json"))


def test_bar_metric_rejects_unknown_names_with_choices():
    from repro.cli import _BAR_METRICS, _bar_metric

    for name in _BAR_METRICS:
        assert _bar_metric(name) == _BAR_METRICS[name]
    with pytest.raises(SystemExit) as excinfo:
        _bar_metric("wattage")
    message = str(excinfo.value)
    assert "wattage" in message
    for valid in sorted(_BAR_METRICS):
        assert valid in message


def test_unknown_bars_choice_rejected_at_the_parser():
    with pytest.raises(SystemExit):
        main(["figure1", "--bars", "wattage"])


def test_figure1_with_export(tmp_path, capsys):
    csv_path = tmp_path / "fig1.csv"
    json_path = tmp_path / "fig1.json"
    code = main(
        [
            "figure1",
            "--instructions", "1500",
            "--warmup", "500",
            "--benchmarks", "go",
            "--bars", "energy",
            "--csv", str(csv_path),
            "--json", str(json_path),
        ]
    )
    assert code == 0
    assert "oracle-fetch" in capsys.readouterr().out
    assert csv_path.read_text().startswith("figure,experiment,benchmark")
    payload = json.loads(json_path.read_text())
    assert payload["figure"] == "figure1"
    assert any(r["benchmark"] == "go" for r in payload["records"])
