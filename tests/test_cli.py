"""Command-line interface (fast paths only; figures run at tiny scale)."""

import json

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "compress" in out


def test_table3_command(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "8 instr/cycle" in out


def test_run_command(capsys):
    code = main(["run", "go", "C2", "--instructions", "2000", "--warmup", "500"])
    assert code == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "energy savings" in out


def test_run_command_with_estimator_override(capsys):
    code = main(
        ["run", "go", "A5", "jrs", "--instructions", "2000", "--warmup", "500"]
    )
    assert code == 0
    assert "A5/jrs" in capsys.readouterr().out


def test_run_command_requires_two_args():
    with pytest.raises(SystemExit):
        main(["run", "go"])


def test_unknown_benchmark_subset_rejected():
    with pytest.raises(SystemExit):
        main(["figure1", "--benchmarks", "nonexistent"])


def test_figure1_with_export(tmp_path, capsys):
    csv_path = tmp_path / "fig1.csv"
    json_path = tmp_path / "fig1.json"
    code = main(
        [
            "figure1",
            "--instructions", "1500",
            "--warmup", "500",
            "--benchmarks", "go",
            "--bars", "energy",
            "--csv", str(csv_path),
            "--json", str(json_path),
        ]
    )
    assert code == 0
    assert "oracle-fetch" in capsys.readouterr().out
    assert csv_path.read_text().startswith("figure,experiment,benchmark")
    payload = json.loads(json_path.read_text())
    assert payload["figure"] == "figure1"
    assert any(r["benchmark"] == "go" for r in payload["records"])
