"""Tests for the branch behaviour models."""

import pytest

from repro.errors import ProgramError
from repro.program.behavior import (
    BiasedBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)


def test_biased_extremes():
    always = BiasedBehavior(1.0, seed=1)
    never = BiasedBehavior(0.0, seed=1)
    assert all(always.next_outcome(0) for _ in range(50))
    assert not any(never.next_outcome(0) for _ in range(50))


def test_biased_rate_close_to_p():
    behavior = BiasedBehavior(0.8, seed=3)
    taken = sum(behavior.next_outcome(0) for _ in range(20_000))
    assert abs(taken / 20_000 - 0.8) < 0.02


def test_biased_reset_replays_stream():
    behavior = BiasedBehavior(0.5, seed=9)
    first = [behavior.next_outcome(0) for _ in range(50)]
    behavior.reset()
    assert [behavior.next_outcome(0) for _ in range(50)] == first


def test_biased_rejects_bad_probability():
    with pytest.raises(ProgramError):
        BiasedBehavior(1.5, seed=1)


def test_loop_fixed_trip_sequence():
    behavior = LoopBehavior(mean_trip=4, seed=1, jitter=0.0)
    outcomes = [behavior.next_outcome(0) for _ in range(12)]
    # taken, taken, taken, not-taken repeating (do-while with trip 4).
    assert outcomes == [True, True, True, False] * 3


def test_loop_trip_one_never_taken():
    behavior = LoopBehavior(mean_trip=1, seed=1, jitter=0.0)
    assert not any(behavior.next_outcome(0) for _ in range(10))


def test_loop_jitter_always_terminates():
    behavior = LoopBehavior(mean_trip=10, seed=5, jitter=0.5)
    longest_run = run = 0
    for _ in range(5000):
        if behavior.next_outcome(0):
            run += 1
            longest_run = max(longest_run, run)
        else:
            run = 0
    assert longest_run < 100  # bounded trips


def test_loop_validation():
    with pytest.raises(ProgramError):
        LoopBehavior(0, seed=1)
    with pytest.raises(ProgramError):
        LoopBehavior(5, seed=1, jitter=2.0)


def test_pattern_cycles():
    behavior = PatternBehavior([True, False, False])
    outcomes = [behavior.next_outcome(0) for _ in range(9)]
    assert outcomes == [True, False, False] * 3


def test_pattern_reset():
    behavior = PatternBehavior([True, False])
    behavior.next_outcome(0)
    behavior.reset()
    assert behavior.next_outcome(0) is True


def test_pattern_rejects_empty():
    with pytest.raises(ProgramError):
        PatternBehavior([])


def test_correlated_pure_function_of_history_without_noise():
    behavior = CorrelatedBehavior(history_mask=0b101, noise=0.0, seed=1)
    # parity of masked bits decides the outcome
    assert behavior.next_outcome(0b000) is False
    assert behavior.next_outcome(0b001) is True
    assert behavior.next_outcome(0b100) is True
    assert behavior.next_outcome(0b101) is False


def test_correlated_noise_flips_sometimes():
    behavior = CorrelatedBehavior(history_mask=0b1, noise=0.5, seed=2)
    outcomes = [behavior.next_outcome(0) for _ in range(2000)]
    flipped = sum(outcomes)  # parity says False; True outcomes are flips
    assert 800 < flipped < 1200


def test_correlated_validation():
    with pytest.raises(ProgramError):
        CorrelatedBehavior(0, noise=0.1, seed=1)
    with pytest.raises(ProgramError):
        CorrelatedBehavior(1, noise=1.5, seed=1)
