"""Text rendering and export of figure results."""

import csv
import io
import json

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.results import ComparisonResult
from repro.report.ascii import bar_chart, figure_bars, sweep_lines
from repro.report.export import figure_to_csv, figure_to_json, figure_to_records


def _figure() -> FigureResult:
    figure = FigureResult("demo")
    figure.rows["X1"] = {
        "go": ComparisonResult("go", "X1", 0.95, 12.0, 9.0, 5.0),
        "gcc": ComparisonResult("gcc", "X1", 0.98, 8.0, 6.0, 4.0),
    }
    figure.rows["X2"] = {
        "go": ComparisonResult("go", "X2", 0.90, 15.0, 10.0, -2.0),
        "gcc": ComparisonResult("gcc", "X2", 0.93, 11.0, 8.0, 1.0),
    }
    return figure


def test_bar_chart_renders_all_rows():
    text = bar_chart({"go": 10.0, "gcc": 5.0})
    assert "go" in text and "gcc" in text
    assert text.count("\n") == 1


def test_bar_chart_marks_negative_values_differently():
    text = bar_chart({"up": 5.0, "down": -5.0})
    lines = dict(zip(("up", "down"), text.splitlines()))
    assert "#" in lines["up"] and "#" not in lines["down"]
    assert "-" in lines["down"]


def test_bar_chart_scales_to_largest_magnitude():
    text = bar_chart({"big": 100.0, "small": 1.0}, width=20)
    big_line, small_line = text.splitlines()
    assert big_line.count("#") == 20
    assert small_line.count("#") == 1


def test_bar_chart_empty_input():
    assert bar_chart({}) == "(no data)"


def test_figure_bars_contains_every_experiment_and_benchmark():
    text = figure_bars(_figure(), "energy_savings_pct")
    for token in ("X1", "X2", "go", "gcc", "Energy savings"):
        assert token in text


def test_figure_bars_speedup_zero_is_one():
    # speedup bars grow from 1.0; a 0.95 speedup is a (small) regression bar
    text = figure_bars(_figure(), "speedup")
    assert "Speedup" in text


def test_figure_bars_rejects_unknown_metric():
    with pytest.raises(ValueError):
        figure_bars(_figure(), "nonsense")


def test_figure_bars_benchmark_subset():
    text = figure_bars(_figure(), "energy_savings_pct", benchmarks=("go",))
    assert "go" in text
    assert "gcc" not in text


def test_sweep_lines_formats_points():
    sweep = {
        6: {"energy_savings_pct": 11.0, "ed_improvement_pct": 5.0},
        14: {"energy_savings_pct": 13.0, "ed_improvement_pct": 8.0},
    }
    text = sweep_lines(sweep, x_label="depth")
    assert "depth=6" in text and "depth=14" in text


def test_records_flatten_every_cell():
    records = figure_to_records(_figure())
    assert len(records) == 4
    keys = {(r["experiment"], r["benchmark"]) for r in records}
    assert ("X1", "go") in keys and ("X2", "gcc") in keys


def test_csv_round_trip():
    text = figure_to_csv(_figure())
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 4
    assert rows[0]["figure"] == "demo"
    assert float(rows[0]["speedup"]) == pytest.approx(0.95)


def test_json_payload_includes_averages():
    payload = json.loads(figure_to_json(_figure()))
    assert payload["figure"] == "demo"
    assert len(payload["records"]) == 4
    assert "X1" in payload["averages"]
    assert payload["averages"]["X2"]["ed_improvement_pct"] == pytest.approx(-0.5)
