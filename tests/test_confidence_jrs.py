"""Tests for the JRS confidence estimator."""

import pytest

from repro.bpred.base import Prediction
from repro.bpred.gshare import GSharePredictor
from repro.confidence.base import ConfidenceLevel
from repro.confidence.jrs import JRSEstimator
from repro.errors import ConfigurationError


def _prediction(history=0):
    return Prediction(True, history)


def test_starts_low_confidence():
    estimator = JRSEstimator(8, threshold=12)
    level = estimator.estimate(0x1000, _prediction(), GSharePredictor(1))
    assert level is ConfidenceLevel.LC


def test_becomes_high_confidence_after_threshold_corrects():
    estimator = JRSEstimator(8, threshold=12)
    predictor = GSharePredictor(1)
    for _ in range(12):
        estimator.train(0x1000, True, 0)
    assert estimator.estimate(0x1000, _prediction(), predictor) is ConfidenceLevel.HC


def test_below_threshold_stays_low():
    estimator = JRSEstimator(8, threshold=12)
    predictor = GSharePredictor(1)
    for _ in range(11):
        estimator.train(0x1000, True, 0)
    assert estimator.estimate(0x1000, _prediction(), predictor) is ConfidenceLevel.LC


def test_misprediction_resets_counter():
    estimator = JRSEstimator(8, threshold=12)
    predictor = GSharePredictor(1)
    for _ in range(15):
        estimator.train(0x1000, True, 0)
    estimator.train(0x1000, False, 0)
    assert estimator.estimate(0x1000, _prediction(), predictor) is ConfidenceLevel.LC


def test_counter_saturates_at_15():
    estimator = JRSEstimator(8, threshold=12)
    for _ in range(100):
        estimator.train(0x1000, True, 0)
    index = estimator._index(0x1000, 0)
    assert estimator.table[index] == 15


def test_history_indexes_distinct_entries():
    estimator = JRSEstimator(8, threshold=2)
    predictor = GSharePredictor(1)
    estimator.train(0x1000, True, 0)
    estimator.train(0x1000, True, 0)
    assert estimator.estimate(0x1000, _prediction(0), predictor) is ConfidenceLevel.HC
    # same pc, different history -> different (cold) entry
    assert estimator.estimate(0x1000, _prediction(0x55), predictor) is ConfidenceLevel.LC


def test_output_is_binary():
    estimator = JRSEstimator(8)
    predictor = GSharePredictor(1)
    levels = set()
    for pc in range(0x1000, 0x1100, 4):
        levels.add(estimator.estimate(pc, _prediction(), predictor))
    assert levels <= {ConfidenceLevel.HC, ConfidenceLevel.LC}


def test_storage_bits():
    assert JRSEstimator(8).storage_bits() == 8 * 1024 * 8


def test_validation():
    with pytest.raises(ConfigurationError):
        JRSEstimator(0)
    with pytest.raises(ConfigurationError):
        JRSEstimator(8, threshold=16)
    with pytest.raises(ConfigurationError):
        JRSEstimator(8, threshold=0)
