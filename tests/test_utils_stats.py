"""Tests for the statistics helpers."""

import math

import pytest

from repro.utils.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percent_change,
    weighted_mean,
)


def test_arithmetic_mean():
    assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0


def test_arithmetic_mean_empty_raises():
    with pytest.raises(ValueError):
        arithmetic_mean([])


def test_geometric_mean():
    assert math.isclose(geometric_mean([1.0, 4.0]), 2.0)
    assert math.isclose(geometric_mean([2.0, 2.0, 2.0]), 2.0)


def test_geometric_mean_rejects_nonpositive():
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])
    with pytest.raises(ValueError):
        geometric_mean([])


def test_harmonic_mean():
    assert math.isclose(harmonic_mean([1.0, 1.0]), 1.0)
    assert math.isclose(harmonic_mean([2.0, 6.0]), 3.0)


def test_harmonic_mean_rejects_nonpositive():
    with pytest.raises(ValueError):
        harmonic_mean([2.0, -1.0])


def test_weighted_mean():
    assert math.isclose(weighted_mean([1.0, 3.0], [1.0, 1.0]), 2.0)
    assert math.isclose(weighted_mean([1.0, 3.0], [3.0, 1.0]), 1.5)


def test_weighted_mean_validation():
    with pytest.raises(ValueError):
        weighted_mean([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_mean([1.0, 2.0], [0.0, 0.0])


def test_percent_change():
    assert math.isclose(percent_change(10.0, 12.0), 20.0)
    assert math.isclose(percent_change(10.0, 8.0), -20.0)


def test_percent_change_zero_baseline_raises():
    with pytest.raises(ValueError):
        percent_change(0.0, 5.0)
