"""Shared fixtures: small programs and processors that run fast."""

from __future__ import annotations

import pytest

from repro.pipeline.config import ProcessorConfig, table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator, ProgramShape


def small_shape() -> ProgramShape:
    """A compact program shape for fast unit tests."""
    return ProgramShape(
        num_functions=4,
        blocks_per_function=(6, 10),
        block_size=(3, 6),
    )


@pytest.fixture(scope="session")
def small_program():
    """One finalized small program shared by the whole session."""
    return ProgramGenerator(small_shape(), seed=42, name="testprog").generate()


@pytest.fixture()
def fresh_program():
    """A per-test program (for tests that mutate behaviour state)."""
    return ProgramGenerator(small_shape(), seed=42, name="testprog").generate()


@pytest.fixture()
def config() -> ProcessorConfig:
    """The Table-3 baseline configuration."""
    return table3_config()


def run_small(program, controller=None, instructions=3000, config=None, seed=42):
    """Build a processor on ``program`` and run a short simulation."""
    processor = Processor(
        config or table3_config(), program, controller=controller, seed=seed
    )
    processor.run(instructions)
    return processor
