"""Tests for bimodal, local two-level, hybrid and static predictors."""

import pytest

from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.static import StaticPredictor
from repro.bpred.twolevel import LocalTwoLevelPredictor
from repro.errors import ConfigurationError


# --- bimodal ----------------------------------------------------------------

def test_bimodal_learns_bias():
    predictor = BimodalPredictor(1)
    pc = 0x3000
    for _ in range(4):
        predictor.train(pc, False)
    assert not predictor.predict(pc).taken
    for _ in range(8):
        predictor.train(pc, True)
    assert predictor.predict(pc).taken


def test_bimodal_no_history_state():
    predictor = BimodalPredictor(1)
    prediction = predictor.predict(0x3000)
    assert prediction.snapshot is None
    predictor.restore(None, True)  # must be a no-op


def test_bimodal_distinct_pcs_distinct_counters():
    predictor = BimodalPredictor(1)
    for _ in range(4):
        predictor.train(0x3000, False)
    assert not predictor.predict(0x3000).taken
    assert predictor.predict(0x3004).taken  # untouched entry stays weak-taken


def test_bimodal_invalid_size():
    with pytest.raises(ConfigurationError):
        BimodalPredictor(-1)


# --- local two-level --------------------------------------------------------

def test_twolevel_learns_short_pattern():
    predictor = LocalTwoLevelPredictor(history_entries=64, history_bits=8)
    pc = 0x5000
    pattern = [True, True, False]
    hits = 0
    for i in range(600):
        outcome = pattern[i % 3]
        prediction = predictor.predict(pc)
        if i > 500:
            hits += prediction.taken == outcome
        if prediction.taken != outcome:
            predictor.restore(prediction.snapshot, outcome)
        predictor.train(pc, outcome, prediction.snapshot)
    assert hits >= 95


def test_twolevel_speculative_history_and_restore():
    predictor = LocalTwoLevelPredictor(history_entries=16, history_bits=4)
    pc = 0x5000
    prediction = predictor.predict(pc)
    bht_index, local = prediction.snapshot
    assert predictor.bht[bht_index] == ((local << 1) | int(prediction.taken)) & 0xF
    predictor.restore(prediction.snapshot, not prediction.taken)
    assert predictor.bht[bht_index] == ((local << 1) | int(not prediction.taken)) & 0xF


def test_twolevel_validation():
    with pytest.raises(ConfigurationError):
        LocalTwoLevelPredictor(history_entries=0)


# --- hybrid -----------------------------------------------------------------

def test_hybrid_size_split():
    predictor = HybridPredictor(8)
    assert predictor.gshare.size_kb == 4
    assert predictor.bimodal.size_kb == 4


def test_hybrid_rejects_odd_size():
    with pytest.raises(ConfigurationError):
        HybridPredictor(3)


def test_hybrid_learns_biased_branch():
    predictor = HybridPredictor(2)
    pc = 0x6000
    for _ in range(16):
        prediction = predictor.predict(pc)
        if prediction.taken:  # train towards not-taken
            predictor.restore(prediction.snapshot, False)
        predictor.train(pc, False, prediction.snapshot)
    assert not predictor.predict(pc).taken


def test_hybrid_chooser_moves_toward_better_component():
    predictor = HybridPredictor(2)
    pc = 0x6000
    index = predictor._chooser_index(pc)
    start = predictor.chooser[index]
    # Drive outcomes that gshare (history-based) learns and bimodal cannot:
    # alternate taken/not-taken.
    outcome = True
    for _ in range(400):
        prediction = predictor.predict(pc)
        if prediction.taken != outcome:
            predictor.restore(prediction.snapshot, outcome)
        predictor.train(pc, outcome, prediction.snapshot)
        outcome = not outcome
    assert predictor.chooser[index] >= start


def test_hybrid_storage_accounts_all_components():
    predictor = HybridPredictor(8)
    assert predictor.storage_bits() > (
        predictor.gshare.storage_bits() + predictor.bimodal.storage_bits()
    )


# --- static -----------------------------------------------------------------

def test_static_policies():
    assert StaticPredictor("taken").predict(0).taken
    assert not StaticPredictor("not_taken").predict(0).taken


def test_static_btfn():
    predictor = StaticPredictor("backward_taken")
    predictor.set_backward(True)
    assert predictor.predict(0).taken
    predictor.set_backward(False)
    assert not predictor.predict(0).taken


def test_static_unknown_policy():
    with pytest.raises(ConfigurationError):
        StaticPredictor("coin-flip")


def test_static_is_stateless():
    predictor = StaticPredictor("taken")
    predictor.train(0, False)
    predictor.restore(None, False)
    assert predictor.predict(0).taken
    assert predictor.storage_bits() == 0
