"""Multi-seed campaigns: statistics, execution and persistence."""

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments.campaign import (
    CampaignResult,
    MetricSummary,
    _t_critical,
    format_campaign,
    run_campaign,
    summarize,
)


def test_t_table_covers_moderate_sample_sizes():
    # dof 11-30 used to fall back to z=1.960, understating the intervals
    # of 12-31 seed campaigns.  Pin the dof=15 critical value exactly.
    assert _t_critical(15) == 2.131
    assert _t_critical(30) == 2.042
    # Past the table the normal approximation takes over.
    assert _t_critical(31) == 1.960


def test_t_table_decreases_toward_z():
    values = [_t_critical(dof) for dof in range(1, 31)]
    assert values == sorted(values, reverse=True)
    assert all(value > 1.960 for value in values)


def test_summarize_uses_t_not_z_at_dof_15():
    # 16 samples, sample sd 8: half width = t(15) * 8 / 4 = 4.262, whereas
    # the old z fallback produced 3.92.
    values = [0.0, 16.0] * 8
    summary = summarize(values)
    sd = summary.stddev
    assert summary.half_width == pytest.approx(2.131 * sd / 4)
    assert summary.half_width > 1.960 * sd / 4


def test_summarize_single_sample_has_zero_width():
    summary = summarize([5.0])
    assert summary.mean == 5.0
    assert summary.half_width == 0.0
    assert summary.samples == 1


def test_summarize_constant_sample():
    summary = summarize([2.0, 2.0, 2.0])
    assert summary.mean == 2.0
    assert summary.stddev == 0.0
    assert summary.half_width == 0.0


def test_summarize_known_interval():
    # n=4, mean 5, sample sd 2 -> half width = t(3) * 2 / 2 = 3.182
    summary = summarize([3.0, 7.0, 3.0, 7.0])
    assert summary.mean == pytest.approx(5.0)
    sd = math.sqrt(16 / 3)
    assert summary.stddev == pytest.approx(sd)
    assert summary.half_width == pytest.approx(3.182 * sd / 2)
    assert summary.low == pytest.approx(summary.mean - summary.half_width)
    assert summary.high == pytest.approx(summary.mean + summary.half_width)


def test_summarize_rejects_empty():
    with pytest.raises(ExperimentError):
        summarize([])


def test_describe_mentions_sample_count():
    assert "n=3" in summarize([1.0, 2.0, 3.0]).describe()


@pytest.fixture(scope="module")
def small_campaign():
    return run_campaign(
        {"A5": ("throttle", "A5")},
        benchmarks=("gzip",),
        seeds=2,
        instructions=2_000,
        name="unit",
    )


def test_campaign_collects_one_sample_per_seed(small_campaign):
    cell = small_campaign.samples["A5"]["gzip"]
    for metric, values in cell.items():
        assert len(values) == 2, metric


def test_campaign_seed_variants_differ(small_campaign):
    values = small_campaign.samples["A5"]["gzip"]["energy_savings_pct"]
    # Different program seeds => different sampled programs => different
    # measurements (astronomically unlikely to collide exactly).
    assert values[0] != values[1]


def test_campaign_suite_summary(small_campaign):
    summary = small_campaign.suite_summary("A5", "speedup")
    assert isinstance(summary, MetricSummary)
    assert summary.samples == 2
    assert 0.3 < summary.mean < 1.2


def test_campaign_json_round_trip(small_campaign, tmp_path):
    path = tmp_path / "campaign.json"
    small_campaign.save(str(path))
    loaded = CampaignResult.load(str(path))
    assert loaded.name == small_campaign.name
    assert loaded.seeds == small_campaign.seeds
    assert (
        loaded.samples["A5"]["gzip"]["speedup"]
        == small_campaign.samples["A5"]["gzip"]["speedup"]
    )


def test_format_campaign_renders_labels(small_campaign):
    text = format_campaign(small_campaign)
    assert "A5" in text
    assert "±" in text


def test_campaign_requires_a_seed():
    with pytest.raises(ExperimentError):
        run_campaign({"A5": ("throttle", "A5")}, seeds=0)
