"""The instruction-supply layer: compiled/live parity and edge goldens.

Three kinds of guarantees:

* **stream parity** — :class:`CompiledSupply` serves record streams (true
  path and wrong-path packets) bit-identical to the seed walkers behind
  :class:`LiveSupply`, on calibrated benchmarks and adversarial CFGs;
* **golden wrong-path edges** — RET with an empty speculative stack,
  walks into CFG sink blocks, speculative call-stack max-depth
  truncation, and empty fall-through chains are pinned as SHA-256 stream
  fingerprints captured on the seed :class:`WrongPathNavigator`, so the
  supply refactor (or any future one) cannot silently change them;
* **hash-chain identity** — the precomputed-prefix hashing the compiled
  tables rely on equals :func:`stateless_hash` step for step.
"""

import hashlib

import pytest

from repro.errors import WorkloadError
from repro.frontend.supply import (
    CompiledSupply,
    LiveSupply,
    TraceSupply,
    build_supply,
    resolve_trace_records,
)
from repro.isa.instruction import StaticInstruction
from repro.isa.opcodes import Opcode
from repro.program.behavior import BiasedBehavior
from repro.program.cfg import BasicBlock, Program, TerminatorKind
from repro.program.walker import TruePathOracle, WrongPathNavigator
from repro.utils.rng import stateless_hash, stateless_hash_step
from repro.workloads.suite import benchmark_program, benchmark_spec

_MASK64 = (1 << 64) - 1


# ----------------------------------------------------------------------
# Hash-chain identity
# ----------------------------------------------------------------------

def test_stateless_hash_step_matches_full_hash():
    for seed, a, b in ((1, 2, 3), (77, 0x4bc, 129), (2003, 0, 0), (5, 10**9, 7)):
        partial = stateless_hash_step(seed & _MASK64, a)
        assert stateless_hash_step(partial, b) == stateless_hash(seed, a, b)
        assert stateless_hash_step(seed & _MASK64, a) == stateless_hash(seed, a)


# ----------------------------------------------------------------------
# Stream parity on calibrated benchmarks
# ----------------------------------------------------------------------

@pytest.mark.parametrize("bench_name", ("go", "compress", "gcc"))
def test_true_path_matches_seed_oracle(bench_name):
    spec = benchmark_spec(bench_name)
    oracle = TruePathOracle(benchmark_program(bench_name), spec.seed)
    compiled = CompiledSupply(benchmark_program(bench_name), spec.seed)
    for index in range(5000):
        a, b = oracle.get(index), compiled.get(index)
        # Distinct Program instances carry equal-but-distinct statics:
        # compare by address plus the dynamic fields.
        assert (a.static.address, a.taken, a.target_block, a.mem_address) == (
            b.static.address, b.taken, b.target_block, b.mem_address
        ), f"true-path divergence at record {index}"


@pytest.mark.parametrize("bench_name", ("go", "parser"))
def test_wrong_packets_match_seed_navigator(bench_name):
    spec = benchmark_spec(bench_name)
    program = benchmark_program(bench_name)
    navigator = WrongPathNavigator(program, spec.seed)
    compiled = CompiledSupply(benchmark_program(bench_name), spec.seed)
    for block_id in range(0, len(program.blocks), 5):
        cursor = navigator.start_cursor(block_id, salt=block_id * 31 + 7)
        reference = []
        ref_cursor = cursor
        for _ in range(80):
            static, taken, target, ref_cursor, mem = navigator.fetch_one(ref_cursor)
            reference.append((static.address, taken, target, mem))
        walked = []
        packet_cursor = cursor
        while len(walked) < 80:
            records, packet_cursor = compiled.wrong_packet(packet_cursor)
            walked.extend(
                (r[0].address, r[1], r[2], r[3]) for r in records
            )
        assert walked[:80] == reference


def test_live_supply_packets_match_compiled():
    spec = benchmark_spec("twolf")
    live = LiveSupply(benchmark_program("twolf"), spec.seed)
    compiled = CompiledSupply(benchmark_program("twolf"), spec.seed)
    cursor = live.start_cursor(3, 99)
    assert cursor == compiled.start_cursor(3, 99)
    for _ in range(40):
        live_records, live_end = live.wrong_packet(cursor)
        comp_records, comp_end = compiled.wrong_packet(cursor)
        assert [(r[0].address, r[1], r[2], r[3]) for r in live_records] == [
            (r[0].address, r[1], r[2], r[3]) for r in comp_records
        ]
        assert live_end == comp_end
        cursor = live_end
    # True-path surfaces agree too.
    a, b = live.get(123), compiled.get(123)
    assert (a.static.address, a.taken, a.target_block, a.mem_address) == (
        b.static.address, b.taken, b.target_block, b.mem_address
    )


def test_build_supply_kinds():
    spec = benchmark_spec("gzip")
    assert build_supply("compiled", benchmark_program("gzip"), spec.seed).kind == "compiled"
    assert build_supply("live", benchmark_program("gzip"), spec.seed).kind == "live"
    with pytest.raises(WorkloadError):
        build_supply("nope", benchmark_program("gzip"), spec.seed)


# ----------------------------------------------------------------------
# Wrong-path edge cases, pinned as goldens
# ----------------------------------------------------------------------

def _edge_program() -> Program:
    """An adversarial CFG: RET at entry, a self-jump sink, an unbounded
    speculative call chain, and an empty fall-through chain."""
    b0 = BasicBlock(0, 0, TerminatorKind.RET)
    b0.instructions = [StaticInstruction(0, Opcode.ADD, dest=1),
                       StaticInstruction(0, Opcode.RET)]
    b1 = BasicBlock(1, 0, TerminatorKind.CALL, taken_target=2, fall_target=3)
    b1.instructions = [StaticInstruction(0, Opcode.LOAD, dest=2, sources=(1,),
                                         mem_region=1, mem_stride=8,
                                         mem_footprint=4096),
                       StaticInstruction(0, Opcode.CALL)]
    b2 = BasicBlock(2, 0, TerminatorKind.JUMP, taken_target=2)
    b2.instructions = [StaticInstruction(0, Opcode.SUB, dest=3),
                       StaticInstruction(0, Opcode.BR_UNCOND)]
    b3 = BasicBlock(3, 0, TerminatorKind.COND, taken_target=4, fall_target=6,
                    behavior=BiasedBehavior(0.7, seed=11))
    b3.instructions = [StaticInstruction(0, Opcode.STORE, sources=(1, 2),
                                         mem_region=0, mem_stride=0,
                                         mem_footprint=1024),
                       StaticInstruction(0, Opcode.BR_COND, sources=(3,))]
    b4 = BasicBlock(4, 0, TerminatorKind.CALL, taken_target=4, fall_target=3)
    b4.instructions = [StaticInstruction(0, Opcode.CALL)]
    b5 = BasicBlock(5, 0, TerminatorKind.FALL, fall_target=6)
    b5.instructions = []
    b6 = BasicBlock(6, 0, TerminatorKind.FALL, fall_target=0)
    b6.instructions = [StaticInstruction(0, Opcode.XOR, dest=4)]
    program = Program([b0, b1, b2, b3, b4, b5, b6], entry_block=1, name="edges")
    program.finalize()
    return program


_EDGE_SEED = 77

# (start block, salt, records, fingerprint) — SHA-256 over the repr of the
# walked (address, opcode, taken, target, mem_address) stream, captured on
# the seed WrongPathNavigator before the supply layer existed.
_EDGE_GOLDENS = {
    "ret-empty-ras": (
        0, 5, 40,
        "b4b286c0073513031105e66eb43560868e9cd385b52d7fc4607e696f52187361",
    ),
    "sink-self-jump": (
        2, 9, 30,
        "1ff9daabb604c48c3d5b8feea4aa12b95cb009ac03c1f3ed319ab6d101b027e3",
    ),
    "call-depth-truncation": (
        4, 3, 200,
        "911e9522d8e85f4850749c4c7d88baa952115a969f83e5fd7ec5919572b3f4bd",
    ),
    "empty-fall-chain": (
        5, 1, 30,
        "4ae3cfe7f0054583e52d3e2b6bd14f40f69f5c6b66ebdcf42f1896bc5e2a206b",
    ),
}


def _stream_fingerprint(supply_like, start_block: int, salt: int, count: int) -> str:
    cursor = supply_like.start_cursor(start_block, salt)
    walked = []
    while len(walked) < count:
        records, cursor = supply_like.wrong_packet(cursor)
        for static, taken, target, mem in records:
            walked.append(
                (static.address, static.opcode.value, bool(taken), target, mem)
            )
    return hashlib.sha256(repr(walked[:count]).encode()).hexdigest()


@pytest.mark.parametrize("case", sorted(_EDGE_GOLDENS))
def test_wrong_path_edges_match_goldens_compiled(case):
    block, salt, count, expected = _EDGE_GOLDENS[case]
    compiled = CompiledSupply(_edge_program(), _EDGE_SEED)
    assert _stream_fingerprint(compiled, block, salt, count) == expected


@pytest.mark.parametrize("case", sorted(_EDGE_GOLDENS))
def test_wrong_path_edges_match_goldens_live(case):
    block, salt, count, expected = _EDGE_GOLDENS[case]
    live = LiveSupply(_edge_program(), _EDGE_SEED)
    assert _stream_fingerprint(live, block, salt, count) == expected


def test_call_depth_truncates_at_64():
    """The speculative call stack caps at depth 64 (a wrong path cannot
    grow state without bound before its branch resolves)."""
    compiled = CompiledSupply(_edge_program(), _EDGE_SEED)
    cursor = compiled.start_cursor(4, 3)
    for _ in range(200):
        _, cursor = compiled.wrong_packet(cursor)
    assert len(cursor[2]) == 64


def test_true_path_ret_with_empty_call_stack_raises():
    from repro.errors import ProgramError

    program = _edge_program()
    # Entering at block 0 (a RET) with no prior CALL must fail on the
    # true path — and identically on both supplies.
    b0_first = Program(program.blocks, entry_block=0, name="ret-first")
    b0_first._finalized = True  # blocks already validated/addressed
    for supply in (CompiledSupply(b0_first, 1), LiveSupply(b0_first, 1)):
        with pytest.raises(ProgramError, match="empty call stack"):
            supply.get(5)


# ----------------------------------------------------------------------
# Trace supplies
# ----------------------------------------------------------------------

def test_trace_supply_serves_recorded_stream_and_exhausts():
    spec = benchmark_spec("compress")
    oracle = TruePathOracle(benchmark_program("compress"), spec.seed)
    from repro.workloads.trace import TraceRecorder

    records = TraceRecorder(oracle).record(400)
    program = benchmark_program("compress")
    supply = TraceSupply(program, spec.seed, resolve_trace_records(program, records))
    fresh = TruePathOracle(benchmark_program("compress"), spec.seed)
    for index in range(400):
        a, b = supply.get(index), fresh.get(index)
        assert (a.static.address, a.taken, a.target_block, a.mem_address) == (
            b.static.address, b.taken, b.target_block, b.mem_address
        )
    with pytest.raises(WorkloadError, match="trace exhausted"):
        supply.get(400)


def test_resolve_trace_records_rejects_mismatches():
    from repro.workloads.trace import TraceRecord

    program = benchmark_program("compress")
    bogus = [TraceRecord(address=0x3, opcode="add", taken=False,
                         target_block=-1, mem_address=0)]
    with pytest.raises(WorkloadError, match="record 1"):
        resolve_trace_records(program, bogus)


def test_live_supply_full_pipeline_matches_compiled():
    """The engine's supply="live" path is bit-identical to the default
    compiled supply end to end (pins the fetch stage's ring-alias and
    ``_base``-property integration, which stream-level parity misses)."""
    import json

    from repro.experiments.engine import make_cell, result_to_dict, simulate

    compiled = simulate(make_cell("go", instructions=1500, warmup=400))
    live = simulate(make_cell("go", instructions=1500, warmup=400, supply="live"))
    assert json.dumps(result_to_dict(compiled), sort_keys=True) == json.dumps(
        result_to_dict(live), sort_keys=True
    )
