"""Pipeline-geometry derivations of ProcessorConfig."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.config import ProcessorConfig, table3_config


def test_effective_fetch_buffer_scales_with_depth():
    shallow = table3_config().with_depth(6)
    deep = table3_config().with_depth(28)
    assert deep.effective_fetch_buffer > shallow.effective_fetch_buffer


def test_effective_fetch_buffer_covers_front_end_bandwidth():
    """A deep front end must be able to hold full-width fetch for every
    in-order stage, or fetch throttles itself (the Figure 6 artefact)."""
    for depth in (6, 14, 20, 28):
        config = table3_config().with_depth(depth)
        needed = config.fetch_width * config.front_end_stages
        assert config.effective_fetch_buffer >= needed


def test_explicit_fetch_buffer_respected():
    config = replace(table3_config(), fetch_buffer_size=48)
    assert config.effective_fetch_buffer == 48


def test_explicit_fetch_buffer_not_sticky_across_depth_change():
    auto = table3_config()  # fetch_buffer_size == 0 (auto)
    deep = auto.with_depth(28)
    assert deep.fetch_buffer_size == 0
    assert deep.effective_fetch_buffer == deep.fetch_width * (
        deep.front_end_stages + 2
    )


def test_negative_fetch_buffer_rejected():
    with pytest.raises(ConfigurationError):
        ProcessorConfig(fetch_buffer_size=-1)


def test_front_end_plus_backend_equals_depth():
    for depth in (6, 10, 14, 22, 28):
        config = table3_config().with_depth(depth)
        front = config.fetch_to_decode_latency + config.decode_to_rename_latency
        assert front == config.front_end_stages
        assert config.front_end_stages + 4 == depth


def test_with_depth_adds_execute_latency_at_deep_end():
    assert table3_config().with_depth(14).extra_exec_latency == 0
    assert table3_config().with_depth(28).extra_exec_latency > 0
    assert table3_config().with_depth(28).extra_dcache_latency > 0


def test_with_table_sizes_splits_half_and_half():
    config = table3_config().with_table_sizes(32)
    assert config.bpred_size_kb == 16
    assert config.confidence_size_kb == 16


def test_with_table_sizes_rejects_odd_total():
    with pytest.raises(ConfigurationError):
        table3_config().with_table_sizes(7)
