"""Pipeline tracing: capture, queries and text rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.instruction import DynamicInstruction, StaticInstruction
from repro.isa.opcodes import Opcode
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.tracing import PipelineTracer, render_pipetrace, stage_occupancy_histogram
from repro.tracing.render import wrong_path_shadow_report
from repro.workloads.suite import benchmark_spec


def _fake_instr(seq, wrong_path=False, opcode=Opcode.ADD):
    instr = DynamicInstruction(seq, StaticInstruction(seq * 4, opcode, dest=3))
    instr.fetch_cycle = seq
    instr.decode_cycle = seq + 2
    instr.rename_cycle = seq + 4
    instr.issue_cycle = seq + 6
    instr.complete_cycle = seq + 7
    instr.on_wrong_path = wrong_path
    return instr


def test_tracer_records_commits_and_squashes():
    tracer = PipelineTracer()
    committed = _fake_instr(0)
    squashed = _fake_instr(1, wrong_path=True)
    squashed.squashed = True
    tracer.on_commit(committed, 10)
    tracer.on_squash(squashed, 11)
    assert tracer.committed_count == 1
    assert tracer.squashed_count == 1
    assert len(tracer.committed()) == 1
    assert len(tracer.squashed()) == 1


def test_tracer_capacity_keeps_most_recent():
    tracer = PipelineTracer(capacity=3)
    for seq in range(10):
        tracer.on_commit(_fake_instr(seq), seq + 9)
    traces = tracer.traces()
    assert len(traces) == 3
    assert [t.seq for t in traces] == [7, 8, 9]
    assert tracer.committed_count == 10  # counters keep the full tally


def test_trace_lifetime_and_issue_wait():
    tracer = PipelineTracer()
    tracer.on_commit(_fake_instr(0), 9)
    trace = tracer.traces()[0]
    assert trace.lifetime == 9
    assert trace.issue_wait == 2


def test_invalid_capacity_rejected():
    with pytest.raises(ConfigurationError):
        PipelineTracer(capacity=0)


def test_render_pipetrace_letters_in_order():
    tracer = PipelineTracer()
    tracer.on_commit(_fake_instr(0), 9)
    text = render_pipetrace(tracer.traces())
    row = text.splitlines()[1]
    body = row.split("|", 1)[1]
    letters = [c for c in body if c != " "]
    assert letters == ["F", "D", "R", "I", "C", "T"]


def test_render_pipetrace_lowercases_wrong_path():
    tracer = PipelineTracer()
    instr = _fake_instr(0, wrong_path=True)
    instr.squashed = True
    tracer.on_squash(instr, 8)
    text = render_pipetrace(tracer.traces())
    assert "f" in text and "F" not in text.split("|", 2)[-1]


def test_render_pipetrace_empty():
    assert render_pipetrace([]) == "(no traces)"


def test_histogram_buckets_lifetimes():
    tracer = PipelineTracer()
    for seq in range(8):
        tracer.on_commit(_fake_instr(seq), seq + 9)  # all lifetime 9
    text = stage_occupancy_histogram(tracer.traces(), bucket=4)
    assert "8-11" in text
    assert "8 instructions" in text


def test_shadow_report_counts_wrong_path_work():
    tracer = PipelineTracer()
    branch = _fake_instr(0, opcode=Opcode.BR_COND)
    branch.mispredicted = True
    tracer.on_commit(branch, 9)
    for seq in (1, 2, 3):
        wp = _fake_instr(seq, wrong_path=True)
        wp.squashed = True
        if seq == 3:
            wp.issue_cycle = -1  # never issued
        tracer.on_squash(wp, 12)
    report = wrong_path_shadow_report(tracer.traces())
    assert "3" in report  # 3 fetched
    assert "2" in report  # 2 issued


def test_tracer_in_full_simulation():
    spec = benchmark_spec("gzip")
    processor = Processor(table3_config(), spec.build_program(), seed=spec.seed)
    tracer = PipelineTracer(capacity=5_000)
    processor.observer = tracer
    processor.run(2_000, warmup_instructions=0)
    assert tracer.committed_count >= 2_000
    assert tracer.squashed_count > 0
    branches = tracer.mispredicted_branches()
    assert branches, "expected mispredicted branches in the window"
    # Committed instructions must show a monotone stage progression.
    for trace in tracer.committed()[:200]:
        events = trace.stage_events()
        cycles = [cycle for cycle, _ in events]
        assert cycles == sorted(cycles)


def test_clear_resets_everything():
    tracer = PipelineTracer()
    tracer.on_commit(_fake_instr(0), 9)
    tracer.clear()
    assert not tracer.traces()
    assert tracer.committed_count == 0
