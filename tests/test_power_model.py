"""Tests for the power model and its clock-gating styles."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.isa.instruction import DynamicInstruction, StaticInstruction
from repro.isa.opcodes import Opcode
from repro.power.model import ClockGatingStyle, PowerModel
from repro.power.units import (
    NUM_UNITS,
    TABLE1_SHARES,
    TABLE1_TOTAL_WATTS,
    DEFAULT_PORTS,
    PowerUnit,
    UnitPowerTable,
    calibrated_unit_powers,
    default_unit_powers,
)


def _flat_table(watts=10.0):
    return UnitPowerTable(
        {unit: watts for unit in PowerUnit},
        DEFAULT_PORTS,
        frequency_hz=1e9,
    )


def test_cc0_burns_max_power_always():
    model = PowerModel(_flat_table(), ClockGatingStyle.CC0)
    model.end_cycle(model.new_activity(), occupancy=0.0)
    assert math.isclose(model.average_power(), 10.0 * NUM_UNITS)


def test_cc1_all_or_nothing():
    model = PowerModel(_flat_table(), ClockGatingStyle.CC1)
    activity = model.new_activity()
    activity[PowerUnit.ICACHE] = 1  # any usage -> full power
    model.end_cycle(activity, occupancy=0.0)
    assert math.isclose(model.unit_energy[PowerUnit.ICACHE], 10.0 * 1e-9)
    assert model.unit_energy[PowerUnit.ALU] == 0.0


def test_cc2_linear_zero_idle():
    model = PowerModel(_flat_table(), ClockGatingStyle.CC2)
    activity = model.new_activity()
    activity[PowerUnit.DCACHE] = 1  # 1 of 2 ports
    model.end_cycle(activity, occupancy=0.0)
    assert math.isclose(model.unit_energy[PowerUnit.DCACHE], 5.0 * 1e-9)
    assert model.unit_energy[PowerUnit.ALU] == 0.0


def test_cc3_idle_floor_ten_percent():
    model = PowerModel(_flat_table(), ClockGatingStyle.CC3)
    model.end_cycle(model.new_activity(), occupancy=0.0)
    for unit in PowerUnit:
        assert math.isclose(model.unit_energy[unit], 1.0 * 1e-9)


def test_cc3_linear_with_usage():
    model = PowerModel(_flat_table(), ClockGatingStyle.CC3)
    activity = model.new_activity()
    activity[PowerUnit.DCACHE] = 2  # both ports: full power
    model.end_cycle(activity, occupancy=0.0)
    assert math.isclose(model.unit_energy[PowerUnit.DCACHE], 10.0 * 1e-9)


def test_usage_clamped_at_ports():
    model = PowerModel(_flat_table(), ClockGatingStyle.CC3)
    activity = model.new_activity()
    activity[PowerUnit.DCACHE] = 99
    model.end_cycle(activity, occupancy=0.0)
    assert math.isclose(model.unit_energy[PowerUnit.DCACHE], 10.0 * 1e-9)


def test_clock_uses_occupancy():
    model = PowerModel(_flat_table(), ClockGatingStyle.CC3)
    model.end_cycle(model.new_activity(), occupancy=1.0)
    assert math.isclose(model.unit_energy[PowerUnit.CLOCK], 10.0 * 1e-9)


def test_squashed_attribution_moves_energy_to_wasted():
    model = PowerModel(_flat_table(), ClockGatingStyle.CC3)
    instr = DynamicInstruction(0, StaticInstruction(0, Opcode.ADD, dest=3))
    model.attach(instr)
    instr.unit_accesses[PowerUnit.ALU] = 2
    instr.fetch_cycle = 0
    model.credit_squashed(instr, now_cycle=5)
    expected = 2 * (10.0 * 1e-9 * 0.9 / DEFAULT_PORTS[PowerUnit.ALU])
    assert math.isclose(model.wasted_energy[PowerUnit.ALU], expected)
    assert model.wasted_instr_cycles == 5


def test_committed_instruction_counts_clock_cycles():
    model = PowerModel(_flat_table())
    instr = DynamicInstruction(0, StaticInstruction(0, Opcode.ADD, dest=3))
    instr.fetch_cycle = 2
    model.credit_committed(instr, now_cycle=10)
    assert model.committed_instr_cycles == 8


def test_wasted_clock_energy_proportional_to_wrong_cycles():
    model = PowerModel(_flat_table())
    # one cycle of full clock activity
    model.end_cycle(model.new_activity(), occupancy=1.0)
    squashed = DynamicInstruction(0, StaticInstruction(0, Opcode.ADD, dest=3))
    model.attach(squashed)
    squashed.fetch_cycle = 0
    model.credit_squashed(squashed, now_cycle=3)
    committed = DynamicInstruction(1, StaticInstruction(4, Opcode.ADD, dest=3))
    committed.fetch_cycle = 0
    model.credit_committed(committed, now_cycle=9)
    # 3 wrong cycles of 12 retired-instruction cycles; the paper's
    # convention attributes the unit's *total* energy proportionally.
    expected_fraction = 3 / 12
    assert math.isclose(
        model.wasted_clock_energy(),
        model.unit_energy[PowerUnit.CLOCK] * expected_fraction,
    )
    # The stricter dynamic-only accounting is also exposed.
    assert math.isclose(
        model.unit_wasted_dynamic_energy(PowerUnit.CLOCK),
        model.dynamic_energy[PowerUnit.CLOCK] * expected_fraction,
    )


def test_breakdown_shares_sum_to_one():
    model = PowerModel(_flat_table())
    activity = model.new_activity()
    activity[PowerUnit.ICACHE] = 4
    model.end_cycle(activity, occupancy=0.5)
    shares = sum(row["share"] for row in model.breakdown().values())
    assert math.isclose(shares, 1.0)


def test_calibration_hits_table1_breakdown():
    utilization = {unit: 0.5 for unit in PowerUnit}
    table = calibrated_unit_powers(utilization)
    # with cc3 at exactly the calibrated utilisation, shares match Table 1
    for unit in PowerUnit:
        average = table.max_watts[unit] * (0.1 + 0.9 * 0.5)
        assert math.isclose(average, TABLE1_SHARES[unit] * TABLE1_TOTAL_WATTS)


def test_calibration_validates_utilisation():
    with pytest.raises(ConfigurationError):
        calibrated_unit_powers({unit: 2.0 for unit in PowerUnit})


def test_default_unit_powers_frequency():
    table = default_unit_powers()
    assert math.isclose(table.cycle_seconds, 1 / 1.2e9)


def test_unit_power_table_validation():
    with pytest.raises(ConfigurationError):
        UnitPowerTable({}, DEFAULT_PORTS)
    with pytest.raises(ConfigurationError):
        UnitPowerTable({unit: -1.0 for unit in PowerUnit}, DEFAULT_PORTS)


def test_average_utilization_tracks_usage():
    model = PowerModel(_flat_table())
    activity = model.new_activity()
    activity[PowerUnit.DCACHE] = 1  # 0.5 usage
    model.end_cycle(activity, occupancy=0.25)
    model.end_cycle(model.new_activity(), occupancy=0.25)
    utilization = model.average_utilization()
    assert math.isclose(utilization[PowerUnit.DCACHE], 0.25)
    assert math.isclose(utilization[PowerUnit.CLOCK], 0.25)
