"""Ablation drivers (run at very small scale for speed)."""

import pytest

from repro.core.throttler import SelectiveThrottler
from repro.errors import ExperimentError
from repro.experiments.ablations import (
    clock_gating_styles,
    escalation_rule,
    estimator_swap,
    gating_threshold_sweep,
    mshr_sensitivity,
)
from repro.experiments.runner import ExperimentRunner, make_controller

BENCHMARKS = ("go",)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=2_500, warmup=800)


def test_estimator_swap_produces_three_variants(runner):
    figure = estimator_swap(runner, benchmarks=BENCHMARKS)
    assert set(figure.rows) == {"C2/bpru", "C2/jrs", "C2/perfect"}
    averages = figure.averages()
    # The oracle estimator bounds the realistic ones on energy-delay.
    assert (
        averages["C2/perfect"]["ed_improvement_pct"]
        >= averages["C2/bpru"]["ed_improvement_pct"] - 1e-9
    )


def test_escalation_rule_runs_both_modes(runner):
    figure = escalation_rule(runner, benchmarks=BENCHMARKS)
    assert set(figure.rows) == {"C2/escalate", "C2/latest-wins"}


def test_gating_threshold_monotone_speedup(runner):
    figure = gating_threshold_sweep(runner, thresholds=(1, 3), benchmarks=BENCHMARKS)
    averages = figure.averages()
    assert (
        averages["gating-th3"]["speedup"] >= averages["gating-th1"]["speedup"] - 0.01
    )


def test_clock_gating_style_ordering():
    styles = clock_gating_styles(2_500, 800, benchmarks=BENCHMARKS)
    assert set(styles) == {"cc0", "cc1", "cc2", "cc3"}
    assert styles["cc0"]["average_power_watts"] > styles["cc2"]["average_power_watts"]
    assert styles["cc3"]["average_power_watts"] >= styles["cc2"]["average_power_watts"]


def test_mshr_sensitivity_returns_requested_points():
    sweep = mshr_sensitivity((2, 8), 2_500, 800, benchmarks=BENCHMARKS)
    assert set(sweep) == {2, 8}
    for row in sweep.values():
        assert row["baseline_ipc"] > 0


def test_make_controller_estimator_override_spec():
    controller = make_controller(("throttle", "C2", "jrs"))
    assert isinstance(controller, SelectiveThrottler)
    assert controller.escalate_only


def test_make_controller_noescalate_spec():
    controller = make_controller(("throttle-noescalate", "C2"))
    assert isinstance(controller, SelectiveThrottler)
    assert not controller.escalate_only


def test_make_controller_rejects_gating_name_as_throttle():
    with pytest.raises(ExperimentError):
        make_controller(("throttle", "A7"))


def test_runner_estimator_override_changes_config(runner):
    result = runner.run(BENCHMARKS[0], ("throttle", "C2", "jrs"))
    assert result.label == "C2/jrs"
