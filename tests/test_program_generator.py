"""Tests for the synthetic program generator."""

import pytest

from repro.errors import ProgramError
from repro.isa.opcodes import Opcode
from repro.program.cfg import TerminatorKind
from repro.program.generator import ProgramGenerator, ProgramShape


def _generate(seed=42, **overrides):
    shape = ProgramShape(**overrides)
    return ProgramGenerator(shape, seed=seed, name="gen-test").generate()


def test_generation_is_deterministic():
    a = _generate()
    b = _generate()
    assert len(a.blocks) == len(b.blocks)
    for block_a, block_b in zip(a.blocks, b.blocks):
        ops_a = [i.opcode for i in block_a.instructions]
        ops_b = [i.opcode for i in block_b.instructions]
        assert ops_a == ops_b
        assert block_a.kind is block_b.kind
        assert block_a.taken_target == block_b.taken_target


def test_different_seed_different_program():
    a = _generate(seed=1)
    b = _generate(seed=2)
    ops_a = [i.opcode for blk in a.blocks for i in blk.instructions]
    ops_b = [i.opcode for blk in b.blocks for i in blk.instructions]
    assert ops_a != ops_b


def test_program_validates_and_finalizes():
    program = _generate()
    assert program.finalized
    assert program.static_instruction_count() > 0


def test_every_cond_block_has_behavior():
    program = _generate()
    for block in program.blocks:
        if block.kind is TerminatorKind.COND:
            assert block.behavior is not None
            assert block.instructions[-1].opcode is Opcode.BR_COND


def test_calls_form_a_dag():
    program = _generate(num_functions=8)
    for block in program.blocks:
        if block.kind is TerminatorKind.CALL:
            callee = program.block(block.taken_target)
            assert callee.function_id > block.function_id


def test_jumps_stay_within_function():
    program = _generate()
    for block in program.blocks:
        if block.kind is TerminatorKind.JUMP:
            target = program.block(block.taken_target)
            # main's closing jump loops back to its own entry
            assert target.function_id == block.function_id


def test_loop_backedges_target_earlier_blocks():
    program = _generate()
    for block in program.blocks:
        if block.kind is TerminatorKind.COND and block.taken_target < block.block_id:
            head = program.block(block.taken_target)
            assert head.function_id == block.function_id


def test_functions_end_in_ret_except_main():
    program = _generate(num_functions=5)
    last_blocks = {}
    for block in program.blocks:
        last_blocks[block.function_id] = block
    assert last_blocks[0].kind is TerminatorKind.JUMP
    for function_id, block in last_blocks.items():
        if function_id != 0:
            assert block.kind is TerminatorKind.RET


def test_memory_ops_have_region_and_stride():
    program = _generate(mem_regions=4)
    seen_mem = False
    for block in program.blocks:
        for instr in block.instructions:
            if instr.opcode in (Opcode.LOAD, Opcode.STORE):
                seen_mem = True
                assert 0 <= instr.mem_region < 4
                assert instr.mem_stride >= 0
    assert seen_mem


def test_shape_validation():
    with pytest.raises(ProgramError):
        _generate(num_functions=0)
    with pytest.raises(ProgramError):
        _generate(blocks_per_function=(1, 2))
    with pytest.raises(ProgramError):
        _generate(block_size=(0, 3))
    with pytest.raises(ProgramError):
        _generate(p_cond=0.9, p_call=0.3, p_jump=0.3)


def test_block_sizes_within_shape_bounds():
    program = _generate(block_size=(3, 5))
    for block in program.blocks:
        body = [i for i in block.instructions if not i.is_branch]
        assert 3 <= len(body) <= 5
