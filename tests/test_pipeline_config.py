"""Tests for the processor configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.pipeline.config import ProcessorConfig, table3_config


def test_table3_defaults_match_paper():
    config = table3_config()
    assert config.fetch_width == 8
    assert config.issue_width == 8
    assert config.rob_size == 128
    assert config.lsq_size == 64
    assert config.int_alu == 8
    assert config.int_mult == 2
    assert config.mem_ports == 2
    assert config.fp_alu == 8
    assert config.fp_mult == 1
    assert config.btb_entries == 1024 and config.btb_ways == 2
    assert config.icache_kb == 64 and config.dcache_kb == 64
    assert config.l2_kb == 512 and config.l2_ways == 4
    assert config.l1_latency == 1 and config.l2_latency == 6
    assert config.memory_latency == 18
    assert config.tlb_entries == 128
    assert config.pipeline_depth == 14
    assert config.redirect_penalty == 2
    assert config.frequency_hz == pytest.approx(1.2e9)
    assert config.bpred_kind == "gshare" and config.bpred_size_kb == 8


def test_front_end_geometry_scales_with_depth():
    shallow = table3_config().with_depth(6)
    deep = table3_config().with_depth(28)
    assert shallow.front_end_stages == 2
    assert deep.front_end_stages == 24
    assert (
        shallow.fetch_to_decode_latency + shallow.decode_to_rename_latency
        == shallow.front_end_stages
    )
    assert (
        deep.fetch_to_decode_latency + deep.decode_to_rename_latency
        == deep.front_end_stages
    )


def test_with_depth_adds_latency_only_when_deep():
    assert table3_config().with_depth(14).extra_exec_latency == 0
    assert table3_config().with_depth(20).extra_exec_latency == 1
    assert table3_config().with_depth(28).extra_dcache_latency == 2
    assert table3_config().with_depth(6).extra_exec_latency == 0


def test_with_depth_rejects_too_shallow():
    with pytest.raises(ConfigurationError):
        table3_config().with_depth(4)


def test_with_table_sizes_splits_evenly():
    config = table3_config().with_table_sizes(32)
    assert config.bpred_size_kb == 16
    assert config.confidence_size_kb == 16


def test_with_table_sizes_validates():
    with pytest.raises(ConfigurationError):
        table3_config().with_table_sizes(7)


def test_validation_rejects_nonpositive_widths():
    with pytest.raises(ConfigurationError):
        ProcessorConfig(fetch_width=0)
    with pytest.raises(ConfigurationError):
        ProcessorConfig(rob_size=-1)
    with pytest.raises(ConfigurationError):
        ProcessorConfig(frequency_hz=0)


def test_config_copies_are_independent():
    base = table3_config()
    deep = base.with_depth(28)
    assert base.pipeline_depth == 14
    assert deep.pipeline_depth == 28
