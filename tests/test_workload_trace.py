"""Trace record→write→parse→replay round-trips (workloads/trace.py)."""

import pytest

from repro.errors import WorkloadError
from repro.program.walker import TruePathOracle
from repro.workloads.suite import benchmark_program
from repro.workloads.trace import TraceReader, TraceRecord, TraceRecorder


@pytest.fixture(scope="module")
def recorded():
    """300 true-path records of a calibrated benchmark."""
    oracle = TruePathOracle(benchmark_program("compress"), seed=123)
    return TraceRecorder(oracle).record(300)


def test_record_covers_branches_and_memory(recorded):
    opcodes = {record.opcode for record in recorded}
    assert "br_cond" in opcodes
    assert any(record.is_cond_branch for record in recorded)
    assert any(not record.is_cond_branch for record in recorded)
    # Memory records carry real addresses; non-memory records carry zero.
    mem = [r for r in recorded if r.opcode in ("load", "store")]
    assert mem, "calibrated benchmarks always touch memory"
    assert all(record.mem_address > 0 for record in mem)
    non_mem = [r for r in recorded if r.opcode not in ("load", "store")]
    assert all(record.mem_address == 0 for record in non_mem)


def test_in_memory_record_matches_file_record(tmp_path, recorded):
    path = tmp_path / "trace.txt"
    oracle = TruePathOracle(benchmark_program("compress"), seed=123)
    TraceRecorder(oracle).record_to_file(str(path), 300)
    parsed = list(TraceReader(str(path)))
    assert parsed == recorded


def test_write_parse_round_trip_preserves_every_field(tmp_path, recorded):
    path = tmp_path / "trace.txt"
    with open(path, "w", encoding="ascii") as handle:
        for r in recorded:
            handle.write(
                f"{r.address:x} {r.opcode} {int(r.taken)} "
                f"{r.target_block} {r.mem_address:x}\n"
            )
    parsed = list(TraceReader(str(path)))
    assert len(parsed) == len(recorded)
    for original, reread in zip(recorded, parsed):
        assert reread == original
        assert reread.is_cond_branch == original.is_cond_branch


def test_replay_matches_a_fresh_oracle_walk(recorded):
    """A recorded trace replays the exact dynamic stream the oracle serves."""
    oracle = TruePathOracle(benchmark_program("compress"), seed=123)
    for index, record in enumerate(recorded):
        dynamic = oracle.get(index)
        assert record.address == dynamic.static.address
        assert record.opcode == dynamic.static.opcode.value
        assert record.taken == dynamic.taken
        assert record.target_block == dynamic.target_block
        assert record.mem_address == dynamic.mem_address


def test_branch_edge_cases_round_trip(tmp_path):
    """Taken/not-taken conditionals, negative targets and calls survive."""
    records = [
        TraceRecord(address=0x400000, opcode="br_cond", taken=True,
                    target_block=7, mem_address=0),
        TraceRecord(address=0x400004, opcode="br_cond", taken=False,
                    target_block=-1, mem_address=0),
        TraceRecord(address=0x400008, opcode="call", taken=True,
                    target_block=3, mem_address=0),
        TraceRecord(address=0x40000C, opcode="load", taken=False,
                    target_block=-1, mem_address=0x1000_0040),
        TraceRecord(address=0x400010, opcode="int_alu", taken=False,
                    target_block=-1, mem_address=0),
    ]
    path = tmp_path / "edge.txt"
    with open(path, "w", encoding="ascii") as handle:
        for r in records:
            handle.write(
                f"{r.address:x} {r.opcode} {int(r.taken)} "
                f"{r.target_block} {r.mem_address:x}\n"
            )
    parsed = list(TraceReader(str(path)))
    assert parsed == records
    assert [r.is_cond_branch for r in parsed] == [True, True, False, False, False]


def test_malformed_record_raises_with_location(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("400000 br_cond 1 7 0\n400004 load 0\n", encoding="ascii")
    with pytest.raises(WorkloadError, match="bad.txt:2"):
        list(TraceReader(str(path)))


def test_record_to_file_prunes_as_it_goes(tmp_path):
    """Long recordings stay constant-memory (the oracle prunes behind)."""
    oracle = TruePathOracle(benchmark_program("gzip"), seed=5)
    path = tmp_path / "long.txt"
    TraceRecorder(oracle).record_to_file(str(path), 10_000)
    assert sum(1 for _ in TraceReader(str(path))) == 10_000
    # Records behind the prune point are gone from the live oracle.
    assert oracle._base > 0


# ----------------------------------------------------------------------
# Versioned (v2) traces: header, gzip, full-pipeline replay
# ----------------------------------------------------------------------

def test_v2_header_round_trip(tmp_path):
    from repro.workloads.trace import record_benchmark_trace

    path = tmp_path / "c.trace"
    header = record_benchmark_trace("compress", str(path), 200)
    reader = TraceReader(str(path))
    parsed = reader.read_header()
    assert parsed == header
    assert parsed.version == 2
    assert parsed.benchmark == "compress"
    assert parsed.records == 200
    assert len(list(reader)) == 200


def test_gzip_traces_round_trip(tmp_path):
    from repro.workloads.trace import record_benchmark_trace

    plain = tmp_path / "c.trace"
    packed = tmp_path / "c.trace.gz"
    record_benchmark_trace("compress", str(plain), 150)
    record_benchmark_trace("compress", str(packed), 150)
    assert list(TraceReader(str(plain))) == list(TraceReader(str(packed)))
    # The gzip file really is compressed.
    assert packed.read_bytes()[:2] == b"\x1f\x8b"


def test_malformed_field_raises_with_line_number(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("400000 br_cond 1 7 0\n40zz04 load 0 -1 0\n", encoding="ascii")
    with pytest.raises(WorkloadError, match="bad.txt:2"):
        list(TraceReader(str(path)))


def test_headerless_trace_cannot_replay(tmp_path):
    from repro.workloads.trace import load_trace_supply

    path = tmp_path / "v1.txt"
    path.write_text("400000 add 0 -1 0\n", encoding="ascii")
    with pytest.raises(WorkloadError, match="headerless"):
        load_trace_supply(str(path))


def test_trace_replay_is_bit_identical_to_live_walk(tmp_path):
    """Acceptance: a recorded trace replays through the full pipeline to
    the same result fingerprint as the live walk."""
    import json

    from repro.experiments.engine import (
        make_trace_cell,
        result_to_dict,
        simulate,
        SimCell,
    )
    from repro.pipeline.config import table3_config
    from repro.workloads.trace import record_benchmark_trace

    path = tmp_path / "go.trace.gz"
    record_benchmark_trace("go", str(path), 2500 + 600 + 2000)
    replay_cell = make_trace_cell(
        str(path), instructions=2500, warmup=600, config=table3_config(),
        label="baseline",
    )
    live_cell = SimCell(
        benchmark="go", controller_spec=("baseline",), config=table3_config(),
        instructions=2500, warmup=600,
    )
    replayed = result_to_dict(simulate(replay_cell))
    lived = result_to_dict(simulate(live_cell))
    assert json.dumps(replayed, sort_keys=True) == json.dumps(lived, sort_keys=True)


def test_trace_cell_fingerprint_tracks_content(tmp_path):
    from repro.experiments.engine import cell_fingerprint, make_trace_cell
    from repro.workloads.trace import record_benchmark_trace

    a = tmp_path / "a.trace"
    record_benchmark_trace("compress", str(a), 300)
    cell = make_trace_cell(str(a), instructions=100, warmup=0)
    plain = cell_fingerprint(cell)
    # Same cell without the trace is a different address.
    from dataclasses import replace
    assert cell_fingerprint(replace(cell, trace=None)) != plain
    # Re-recording with different content misses cleanly.
    record_benchmark_trace("compress", str(a), 301)
    assert cell_fingerprint(make_trace_cell(str(a), instructions=100, warmup=0)) != plain
