"""The pipeline invariant sanitizer: clean runs pass, corruption is caught.

Three corruptions are injected mid-run — a skewed ROB occupancy counter,
a phantom renamer busy tag, and a latch timestamp moved backwards — and
each must surface as a :class:`SanitizerError` naming the violated
invariant, the stage after which it was detected, and the cycle.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import SanitizerError
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator

from tests.conftest import small_shape


def _sanitized_processor(seed=42):
    program = ProgramGenerator(small_shape(), seed=seed, name="sanprog").generate()
    config = replace(table3_config(), sanitize=True)
    return Processor(config, program, seed=seed)


def _run_cycles(processor, cycles):
    for _ in range(cycles):
        processor.step()


def test_sanitize_flag_selects_checked_stepper():
    processor = _sanitized_processor()
    assert processor._step == processor.scheduler.step_sanitized
    program = ProgramGenerator(small_shape(), seed=42, name="sanprog").generate()
    plain = Processor(table3_config(), program, seed=42)
    assert plain._step == plain.scheduler.step


def test_clean_run_passes_and_matches_unsanitized():
    sanitized = _sanitized_processor()
    sanitized.run(2000)
    program = ProgramGenerator(small_shape(), seed=42, name="sanprog").generate()
    plain = Processor(table3_config(), program, seed=42)
    plain.run(2000)
    assert sanitized.stats.committed == plain.stats.committed
    assert sanitized.cycle == plain.cycle
    assert sanitized.stats.squashed == plain.stats.squashed


def test_corrupted_rob_count_is_caught():
    processor = _sanitized_processor()
    _run_cycles(processor, 50)
    processor.rob_count += 1
    with pytest.raises(SanitizerError) as exc_info:
        _run_cycles(processor, 5)
    message = str(exc_info.value)
    assert "rob-occupancy" in message
    assert "after stage" in message
    assert "cycle" in message


def test_phantom_renamer_tag_is_caught():
    processor = _sanitized_processor()
    _run_cycles(processor, 50)
    # A busy tag no in-flight instruction owns: a free-list leak.
    processor.threads[0].renamer.pending_tags.add(10**9)
    with pytest.raises(SanitizerError) as exc_info:
        _run_cycles(processor, 5)
    message = str(exc_info.value)
    assert "renamer-free-list" in message
    assert "after stage" in message
    assert "cycle" in message


def test_latch_timestamp_regression_is_caught():
    processor = _sanitized_processor()
    thread = processor.threads[0]
    # Run until the fetch latch holds a couple of instructions, then
    # push the head's ready stamp past its successor's: a violation of
    # latch_ready monotonicity (FIFO order would be lost).
    for _ in range(3000):
        processor.step()
        if len(thread.fetch_entries) >= 2:
            break
    else:
        pytest.fail("fetch latch never reached two entries")
    # The array kernel keeps the ready stamp in the latch's own column.
    latch = thread.fetch_latch
    latch.stamps[latch.head] = 10**9
    with pytest.raises(SanitizerError) as exc_info:
        _run_cycles(processor, 5)
    message = str(exc_info.value)
    assert "latch-monotone" in message
    assert "after stage" in message
    assert "cycle" in message


def test_error_names_invariant_stage_and_cycle():
    processor = _sanitized_processor()
    _run_cycles(processor, 20)
    processor.iq_count += 3
    with pytest.raises(SanitizerError) as exc_info:
        _run_cycles(processor, 5)
    message = str(exc_info.value)
    # The documented message contract: invariant 'X' violated after
    # stage 'Y' at cycle N.
    assert message.startswith("invariant 'iq-occupancy' violated after stage '")
    assert " at cycle " in message


def test_env_variable_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert table3_config().sanitize is True
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert table3_config().sanitize is False
    monkeypatch.delenv("REPRO_SANITIZE")
    assert table3_config().sanitize is False


def test_sanitize_field_not_in_fingerprints():
    from repro.experiments.engine import config_fingerprint

    on = config_fingerprint(replace(table3_config(), sanitize=True))
    off = config_fingerprint(table3_config())
    assert on == off
    assert all(name != "sanitize" for name, _ in on)
