"""SMT core: parity with the baseline processor, policies, mixes, metrics,
engine integration and CLI determinism."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError, ExperimentError, WorkloadError
from repro.experiments.engine import (
    ResultCache,
    build_engine,
    make_cell,
    make_smt_cell,
    simulate_smt,
    smt_baseline_cells,
    smt_cell_fingerprint,
)
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.report.smt import format_smt_report
from repro.smt.core import SmtProcessor
from repro.smt.metrics import (
    collect_smt_result,
    harmonic_fairness,
    smt_result_from_dict,
    smt_result_to_dict,
    weighted_speedup,
)
from repro.smt.mixes import MIX_NAMES, load_mixes, mix_spec
from repro.smt.policies import (
    ConfidenceGatingPolicy,
    ICountPolicy,
    RoundRobinPolicy,
    make_fetch_policy,
)
from repro.workloads.suite import benchmark_spec


def _program(benchmark: str, seed: int):
    return replace(benchmark_spec(benchmark), seed=seed).build_program()


# ----------------------------------------------------------------------
# Parity: a 1-thread SMT core IS the baseline machine
# ----------------------------------------------------------------------

def test_single_thread_smt_matches_baseline_processor_exactly():
    seed = 4242
    baseline = Processor(table3_config(), _program("go", seed), seed=seed)
    baseline.run(3000, warmup_instructions=500)

    for policy in ("round-robin", "icount", "confidence-gating"):
        smt = SmtProcessor(
            table3_config(), [_program("go", seed)], [seed],
            fetch_policy=make_fetch_policy(policy),
        )
        smt.run(3000, warmup_instructions=500)
        assert smt.stats.committed == baseline.stats.committed, policy
        assert smt.stats.cycles == baseline.stats.cycles, policy
        assert smt.stats.fetched == baseline.stats.fetched, policy
        assert smt.stats.squashed == baseline.stats.squashed, policy
        assert smt.power.total_energy() == pytest.approx(
            baseline.power.total_energy()
        ), policy


def test_single_thread_shared_mode_also_matches():
    seed = 99
    baseline = Processor(table3_config(), _program("gzip", seed), seed=seed)
    baseline.run(2000)
    smt = SmtProcessor(
        table3_config(), [_program("gzip", seed)], [seed], sharing="shared"
    )
    smt.run(2000)
    assert smt.stats.committed == baseline.stats.committed
    assert smt.stats.cycles == baseline.stats.cycles


# ----------------------------------------------------------------------
# Multi-thread behaviour
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def branchy_run():
    mix = mix_spec("mix2-branchy")
    smt = SmtProcessor(
        table3_config(), mix.build_programs(), mix.thread_seeds(),
        fetch_policy=ConfidenceGatingPolicy(),
    )
    smt.run(1500, warmup_instructions=300)
    return smt


def test_two_thread_mix_runs_both_threads_to_target(branchy_run):
    for thread in branchy_run.threads:
        assert thread.committed >= 1500
    assert branchy_run.stats.committed == sum(
        thread.committed for thread in branchy_run.threads
    )


def test_threads_share_cycles_but_commit_separately(branchy_run):
    cycles = branchy_run.stats.cycles
    ipcs = [thread.committed / cycles for thread in branchy_run.threads]
    assert all(ipc > 0.0 for ipc in ipcs)
    # Total IPC decomposes into the per-thread IPCs.
    assert sum(ipcs) == pytest.approx(branchy_run.stats.ipc)


def test_confidence_gating_gates_the_branchy_thread(branchy_run):
    go_thread, twolf_thread = branchy_run.threads
    # go mispredicts far more than twolf: it must lose fetch slots.
    assert go_thread.policy_gated_cycles > twolf_thread.policy_gated_cycles


def test_confidence_gating_reduces_wasted_energy_vs_round_robin():
    mix = mix_spec("mix2-branchy")
    fractions = {}
    for policy in ("round-robin", "confidence-gating"):
        smt = SmtProcessor(
            table3_config(), mix.build_programs(), mix.thread_seeds(),
            fetch_policy=make_fetch_policy(policy),
        )
        smt.run(1200, warmup_instructions=300)
        total = smt.power.total_energy()
        fractions[policy] = smt.power.total_wasted_energy() / total
    assert fractions["confidence-gating"] < fractions["round-robin"]


def test_same_seed_same_mix_is_deterministic():
    mix = mix_spec("mix2-skewed")

    def run_once():
        smt = SmtProcessor(
            table3_config(), mix.build_programs(), mix.thread_seeds(),
            fetch_policy=ConfidenceGatingPolicy(),
        )
        smt.run(800, warmup_instructions=200)
        return collect_smt_result(smt, mix.name, "confidence-gating", 800)

    assert smt_result_to_dict(run_once()) == smt_result_to_dict(run_once())


def test_four_thread_mix_and_per_thread_power_attribution():
    mix = mix_spec("mix4-diverse")
    smt = SmtProcessor(
        table3_config(), mix.build_programs(), mix.thread_seeds(),
        fetch_policy=ICountPolicy(),
    )
    smt.run(400, warmup_instructions=100)
    attribution = smt.power.thread_attribution()
    assert sorted(attribution) == [0, 1, 2, 3]
    for thread in smt.threads:
        ledger = attribution[thread.thread_id]
        assert ledger["committed"] == thread.committed
        assert ledger["useful_joules"] > 0.0


def test_shared_mode_occupancy_uses_the_shared_cap():
    """Clock-tree occupancy divides by the shared ROB capacity, not the
    sum of the full-size per-thread ROBs (which would halve reported
    occupancy per extra thread)."""
    config = table3_config()
    mix = mix_spec("mix2-steady")
    shared = SmtProcessor(
        config, mix.build_programs(), mix.thread_seeds(), sharing="shared"
    )
    assert shared.total_rob_size == config.rob_size
    partitioned = SmtProcessor(
        config, mix.build_programs(), mix.thread_seeds(), sharing="partitioned"
    )
    assert partitioned.total_rob_size == config.rob_size


def test_smt_constructor_validation():
    config = table3_config()
    program = _program("go", 1)
    with pytest.raises(ConfigurationError):
        SmtProcessor(config, [], [])
    with pytest.raises(ConfigurationError):
        SmtProcessor(config, [program], [1, 2])
    with pytest.raises(ConfigurationError):
        SmtProcessor(config, [program, program], [1, 2])  # shared instance
    with pytest.raises(ConfigurationError):
        SmtProcessor(config, [program], [1], sharing="bogus")


# ----------------------------------------------------------------------
# Policies and mixes
# ----------------------------------------------------------------------

def test_policy_registry_and_validation():
    assert isinstance(make_fetch_policy("round-robin"), RoundRobinPolicy)
    assert isinstance(make_fetch_policy("icount"), ICountPolicy)
    assert isinstance(make_fetch_policy("confidence-gating"), ConfidenceGatingPolicy)
    with pytest.raises(ConfigurationError):
        make_fetch_policy("nonexistent")
    with pytest.raises(ConfigurationError):
        ConfidenceGatingPolicy(thresholds=(3, 2, 1))
    with pytest.raises(ConfigurationError):
        ConfidenceGatingPolicy(thresholds=(0, 1, 2))
    with pytest.raises(ConfigurationError):
        ConfidenceGatingPolicy(thresholds=(1, 1, 4))  # duplicates collapse a level


def test_round_robin_actually_alternates():
    """The rotation modulus is the thread count, not an arbitrary span."""
    mix = mix_spec("mix2-steady")
    smt = SmtProcessor(
        table3_config(), mix.build_programs(), mix.thread_seeds(),
        fetch_policy=RoundRobinPolicy(),
    )
    policy = smt.fetch_policy
    wins = {0: 0, 1: 0}
    for cycle in range(64):
        chosen = policy.pick(smt, cycle)
        wins[chosen.thread_id] += 1
    # On an idle machine every thread is eligible every cycle: exact halves.
    assert wins == {0: 32, 1: 32}


def test_throttled_thread_never_wins_the_fetch_port():
    """A thread whose controller gates fetch must not consume the slot."""
    from repro.core.gating import PipelineGatingController
    from repro.core.throttler import NullController

    mix = mix_spec("mix2-steady")
    gating = PipelineGatingController(1)
    gating._outstanding = 5  # force thread 0's gate closed
    smt = SmtProcessor(
        table3_config(), mix.build_programs(), mix.thread_seeds(),
        controllers=[gating, NullController()],
        fetch_policy=RoundRobinPolicy(),
    )
    policy = smt.fetch_policy
    for cycle in range(16):
        assert policy.pick(smt, cycle).thread_id == 1


def test_gating_levels_follow_thresholds():
    policy = ConfidenceGatingPolicy(thresholds=(1, 2, 4))
    from repro.core.levels import BandwidthLevel

    assert policy.level_for(0) is BandwidthLevel.FULL
    assert policy.level_for(1) is BandwidthLevel.HALF
    assert policy.level_for(2) is BandwidthLevel.QUARTER
    assert policy.level_for(3) is BandwidthLevel.QUARTER
    assert policy.level_for(4) is BandwidthLevel.STALL


def test_mix_registry():
    assert "mix2-branchy" in MIX_NAMES
    assert all(name in load_mixes() for name in MIX_NAMES)
    with pytest.raises(WorkloadError):
        mix_spec("mix9-unknown")
    spec = mix_spec("mix4-branchy")
    assert spec.nthreads == 4


def test_homogeneous_mix_gets_distinct_program_instances():
    mix = mix_spec("mix2-twins")
    seeds = mix.thread_seeds()
    assert seeds[0] != seeds[1]
    programs = mix.build_programs()
    assert programs[0] is not programs[1]


def test_mix_seed_override_changes_thread_seeds():
    mix = mix_spec("mix2-branchy")
    assert mix.thread_seeds(1) != mix.thread_seeds(2)
    assert mix.thread_seeds(7) == mix.thread_seeds(7)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

def test_weighted_speedup_and_fairness():
    assert weighted_speedup([1.0, 2.0], [2.0, 4.0]) == pytest.approx(0.5)
    assert harmonic_fairness([1.0, 2.0], [2.0, 4.0]) == pytest.approx(0.5)
    # Fairness punishes imbalance; weighted speedup does not.
    balanced = harmonic_fairness([1.0, 1.0], [2.0, 2.0])
    skewed = harmonic_fairness([1.8, 0.2], [2.0, 2.0])
    assert weighted_speedup([1.8, 0.2], [2.0, 2.0]) == pytest.approx(0.5)
    assert skewed < balanced
    with pytest.raises(ExperimentError):
        weighted_speedup([1.0], [1.0, 2.0])
    with pytest.raises(ExperimentError):
        weighted_speedup([1.0], [0.0])


def test_smt_result_round_trips_through_dict():
    cell = make_smt_cell("mix2-steady", instructions=500, warmup=100)
    result = simulate_smt(cell)
    assert smt_result_from_dict(smt_result_to_dict(result)) == result
    assert result.nthreads == 2
    assert result.energy_per_instruction_nj > 0.0


# ----------------------------------------------------------------------
# Engine integration: fingerprints, cache, mixed batches
# ----------------------------------------------------------------------

def test_smt_fingerprint_separates_cells():
    base = make_smt_cell("mix2-branchy", instructions=500, warmup=100)
    prints = {
        smt_cell_fingerprint(base),
        smt_cell_fingerprint(replace(base, policy="icount")),
        smt_cell_fingerprint(replace(base, sharing="shared")),
        smt_cell_fingerprint(replace(base, seed=5)),
        smt_cell_fingerprint(replace(base, mix="mix2-steady")),
        smt_cell_fingerprint(replace(base, instructions=501)),
    }
    assert len(prints) == 6


def test_engine_runs_mixed_batches_through_one_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    engine = build_engine(cache=cache)
    smt_cell = make_smt_cell("mix2-steady", instructions=400, warmup=100)
    cells = [smt_cell] + smt_baseline_cells(smt_cell)
    first = engine.run(cells)
    assert engine.executed == 3
    assert cache.stores == 3

    warm = build_engine(cache=ResultCache(str(tmp_path)))
    second = warm.run(cells)
    assert warm.executed == 0  # everything served from disk
    assert smt_result_to_dict(second[0]) == smt_result_to_dict(first[0])
    assert second[1:] == first[1:]


def test_smt_and_sim_cache_entries_never_collide(tmp_path):
    cache = ResultCache(str(tmp_path))
    smt_cell = make_smt_cell("mix2-steady", instructions=400, warmup=100)
    sim_cell = make_cell("parser", instructions=400, warmup=100)
    result = simulate_smt(smt_cell)
    cache.put(smt_cell, result)
    assert cache.get(sim_cell) is None
    assert smt_result_to_dict(cache.get(smt_cell)) == smt_result_to_dict(result)


def test_baseline_cells_reuse_derived_thread_seeds():
    cell = make_smt_cell("mix2-branchy", instructions=300, warmup=0, seed=11)
    references = smt_baseline_cells(cell)
    assert [ref.benchmark for ref in references] == ["go", "twolf"]
    assert references[0].effective_seed != references[1].effective_seed
    assert references[0].effective_seed == mix_spec("mix2-branchy").thread_seeds(11)[0]


# ----------------------------------------------------------------------
# Report and CLI
# ----------------------------------------------------------------------

def test_smt_report_is_deterministic_and_complete(tmp_path):
    cell = make_smt_cell("mix2-steady", instructions=400, warmup=100)
    engine = build_engine()
    results = engine.run([cell] + smt_baseline_cells(cell))
    report = format_smt_report(results[0], results[1:])
    assert "weighted speedup" in report
    assert "harmonic fairness" in report
    assert "parser" in report and "bzip2" in report
    again = build_engine().run([cell] + smt_baseline_cells(cell))
    assert format_smt_report(again[0], again[1:]) == report
    with pytest.raises(ExperimentError):
        format_smt_report(results[0], results[1:2])


def test_cli_smt_command_byte_identical_with_cache(tmp_path, capsys):
    from repro.cli import main

    argv = [
        "smt", "--mix", "mix2-steady",
        "--instructions", "400", "--warmup", "100",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "SMT mix 'mix2-steady'" in first
    assert main(argv) == 0
    assert capsys.readouterr().out == first
    # 1 SMT entry + 2 single-thread references (entries only — the
    # underscore-prefixed stats sidecar is metadata, not an entry).
    assert len(list((tmp_path / "cache").glob("[!_]*.json"))) == 3


def test_cli_smt_without_mix_lists_mixes(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["smt"])
    out = capsys.readouterr().out
    assert "mix2-branchy" in out
