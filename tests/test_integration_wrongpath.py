"""Integration tests of the wrong-path resource-waste channels (§3).

These run short full-pipeline simulations and check the *mechanisms* the
oracle-fetch speedup rests on: cache pollution, MSHR occupancy, and the
accounting that feeds Table 1.
"""

from dataclasses import replace

import pytest

from repro.core.oracle import OracleController, OracleMode
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.power.units import PowerUnit
from repro.workloads.suite import benchmark_spec

INSTRUCTIONS = 8_000
WARMUP = 3_000


def _run(name, controller=None, **config_overrides):
    spec = benchmark_spec(name)
    config = table3_config()
    if config_overrides:
        config = replace(config, **config_overrides)
    processor = Processor(
        config, spec.build_program(), controller=controller, seed=spec.seed
    )
    processor.run(INSTRUCTIONS, warmup_instructions=WARMUP)
    return processor


@pytest.fixture(scope="module")
def go_baseline():
    return _run("go")


@pytest.fixture(scope="module")
def go_oracle_fetch():
    return _run("go", controller=OracleController(OracleMode.FETCH))


def test_wrong_path_fetch_fraction_is_large(go_baseline):
    stats = go_baseline.stats
    fraction = stats.fetched_wrong_path / stats.fetched
    # The paper: incorrectly fetched instructions reach up to 80% of all
    # instructions; go (19.7% miss rate) is the extreme benchmark.
    assert 0.4 < fraction < 0.9


def test_oracle_fetch_never_fetches_wrong_path(go_oracle_fetch):
    assert go_oracle_fetch.stats.fetched_wrong_path == 0


def test_wrong_path_pollutes_the_dcache(go_baseline, go_oracle_fetch):
    polluted = go_baseline.memory.dcache.stats.miss_rate
    clean = go_oracle_fetch.memory.dcache.stats.miss_rate
    assert polluted > clean


def test_oracle_fetch_is_not_slower(go_baseline, go_oracle_fetch):
    # Pollution and MSHR occupancy must cost the baseline at least as much
    # as wrong-path "prefetching" gains it.
    assert go_oracle_fetch.stats.cycles <= go_baseline.stats.cycles * 1.005


def test_wasted_energy_fraction_in_paper_range(go_baseline):
    model = go_baseline.power
    wasted = model.total_wasted_energy() / model.total_energy()
    # go is the worst benchmark of the suite (suite average ~28%).
    assert 0.25 < wasted < 0.55


def test_wasted_never_exceeds_unit_energy(go_baseline):
    model = go_baseline.power
    for unit in PowerUnit:
        assert 0.0 <= model.unit_wasted_energy(unit) <= model.unit_energy[unit] + 1e-12


def test_scarce_mshrs_slow_the_baseline():
    plenty = _run("go", mshr_count=16)
    scarce = _run("go", mshr_count=2)
    assert scarce.stats.cycles > plenty.stats.cycles


def test_mshr_pressure_tracks_wrong_path():
    """Oracle fetch issues no wrong-path loads, so scarce MSHRs hurt it
    far less than they hurt the polluted baseline."""
    base_plenty = _run("go", mshr_count=16)
    base_scarce = _run("go", mshr_count=2)
    oracle_plenty = _run(
        "go", controller=OracleController(OracleMode.FETCH), mshr_count=16
    )
    oracle_scarce = _run(
        "go", controller=OracleController(OracleMode.FETCH), mshr_count=2
    )
    base_hit = base_scarce.stats.cycles / base_plenty.stats.cycles
    oracle_hit = oracle_scarce.stats.cycles / oracle_plenty.stats.cycles
    assert base_hit > oracle_hit


def test_access_accounting_consistency(go_baseline):
    model = go_baseline.power
    for unit in PowerUnit:
        if unit is PowerUnit.CLOCK:
            continue
        assert model.squashed_accesses[unit] <= model.unit_accesses[unit]


def test_confidence_hint_reaches_the_estimator(go_baseline):
    """The pipeline must deliver set_actual before every estimate: with
    the default BPRU value-hit rate, some branches get VLC labels, which
    only the value-hit path or saturated counters can produce early on."""
    stats = go_baseline.stats
    assert stats.confidence.total > 0
