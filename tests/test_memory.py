"""Tests for caches, TLB and the memory hierarchy."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tlb import TLB


# --- cache ------------------------------------------------------------------

def test_cache_geometry():
    cache = Cache("t", 64 * 1024, 2, 32)
    assert cache.num_sets == 1024


def test_cache_bad_geometry():
    with pytest.raises(ConfigurationError):
        Cache("t", 100, 2, 32)
    with pytest.raises(ConfigurationError):
        Cache("t", 64 * 1024, 2, 33)


def test_cache_miss_then_hit_same_line():
    cache = Cache("t", 1024, 2, 32)
    assert not cache.access(0x100)
    assert cache.access(0x100)
    assert cache.access(0x11C)  # same 32-byte line
    assert cache.stats.misses == 1
    assert cache.stats.hits == 2


def test_cache_lru_eviction():
    cache = Cache("t", 64, 2, 32)  # 1 set, 2 ways
    cache.access(0x000)
    cache.access(0x100)
    cache.access(0x000)  # refresh
    cache.access(0x200)  # evicts 0x100
    assert cache.probe(0x000)
    assert not cache.probe(0x100)
    assert cache.stats.evictions == 1


def test_cache_probe_does_not_touch_state():
    cache = Cache("t", 64, 2, 32)
    cache.access(0x000)
    accesses = cache.stats.accesses
    assert cache.probe(0x000)
    assert cache.stats.accesses == accesses


def test_cache_invalidate_all():
    cache = Cache("t", 1024, 2, 32)
    cache.access(0x100)
    cache.invalidate_all()
    assert not cache.probe(0x100)


def test_cache_line_address():
    cache = Cache("t", 1024, 2, 32)
    assert cache.line_address(0x11F) == 0x100
    assert cache.line_address(0x120) == 0x120


def test_cache_stats_reset():
    cache = Cache("t", 1024, 2, 32)
    cache.access(0x100)
    cache.stats.reset()
    assert cache.stats.accesses == 0
    assert cache.stats.miss_rate == 0.0


# --- TLB --------------------------------------------------------------------

def test_tlb_miss_penalty_then_hit():
    tlb = TLB(entries=4, page_bytes=4096, miss_penalty=30)
    assert tlb.access(0x1000) == 30
    assert tlb.access(0x1FFC) == 0  # same page
    assert tlb.miss_rate == 0.5


def test_tlb_lru_eviction():
    tlb = TLB(entries=2, page_bytes=4096, miss_penalty=10)
    tlb.access(0x1000)
    tlb.access(0x2000)
    tlb.access(0x1000)  # refresh page 1
    tlb.access(0x3000)  # evicts page 2
    assert tlb.access(0x1000) == 0
    assert tlb.access(0x2000) == 10


def test_tlb_validation():
    with pytest.raises(ConfigurationError):
        TLB(entries=0)
    with pytest.raises(ConfigurationError):
        TLB(page_bytes=1000)


# --- hierarchy --------------------------------------------------------------

def test_hierarchy_l1_hit_latency():
    memory = MemoryHierarchy()
    memory.load(0x1000)  # cold miss
    result = memory.load(0x1000)
    assert result.l1_hit
    assert result.latency == 1


def test_hierarchy_l2_hit_latency():
    memory = MemoryHierarchy(icache_kb=1, dcache_kb=1, l2_kb=512)
    memory.load(0x1000)  # warm L2
    # Evict from tiny L1 by streaming
    for address in range(0x10000, 0x10000 + 4096, 32):
        memory.load(address)
    result = memory.load(0x1000)
    assert not result.l1_hit and result.l2_hit
    assert result.latency == 1 + 6


def test_hierarchy_memory_latency_on_cold_miss():
    memory = MemoryHierarchy()
    result = memory.load(0x9999000)
    assert not result.l1_hit and not result.l2_hit
    assert result.latency >= 1 + 18  # plus a possible TLB penalty


def test_hierarchy_fetch_skips_tlb():
    memory = MemoryHierarchy()
    first = memory.fetch(0x4000)
    assert first.latency == 1 + 18  # icache+L2 miss, never a TLB penalty


def test_hierarchy_extra_dcache_latency():
    memory = MemoryHierarchy(extra_dcache_latency=2)
    memory.load(0x1000)
    assert memory.load(0x1000).latency == 3


def test_hierarchy_reset_stats_preserves_content():
    memory = MemoryHierarchy()
    memory.load(0x1000)
    memory.reset_stats()
    assert memory.dcache.stats.accesses == 0
    assert memory.load(0x1000).l1_hit  # line still resident
