"""The unified execution engine: one simulation path, cached and parallel.

Covers the regressions the engine was built to kill:

* campaign runs silently dropping the ``extra`` throttling counters that
  single runs carry;
* the runner and the campaign disagreeing on which seed the processor
  gets when a program seed is overridden;

plus the cache fingerprint (no collisions, config changes invalidate) and
the two scaling contracts: parallel campaigns serialise byte-identically
to serial ones, and a warm cache performs zero new simulations.
"""

from __future__ import annotations

from dataclasses import fields, replace

import pytest

from repro.experiments.campaign import campaign_cells, run_campaign
from repro.experiments.engine import (
    ExecutionEngine,
    ResultCache,
    build_engine,
    cell_fingerprint,
    make_cell,
    result_from_dict,
    result_to_dict,
    simulate,
)
from repro.experiments.results import SimulationResult
from repro.experiments.runner import ExperimentRunner, _config_key, run_benchmark
from repro.pipeline.config import table3_config
from repro.workloads.suite import benchmark_spec

_INSTRUCTIONS = 1_200
_WARMUP = 300

_EXTRA_KEYS = (
    "fetch_throttled_cycles",
    "decode_throttled_cycles",
    "selection_blocked",
    "squashed",
)


def _cell(**overrides):
    defaults = dict(
        benchmark="gzip",
        controller_spec=("throttle", "A5"),
        instructions=_INSTRUCTIONS,
        warmup=_WARMUP,
    )
    defaults.update(overrides)
    return make_cell(**defaults)


@pytest.fixture(scope="module")
def throttled_result():
    return simulate(_cell())


# --- one execution path for every entry point --------------------------------

def test_runner_and_engine_results_are_identical(throttled_result):
    via_runner = run_benchmark(
        "gzip", ("throttle", "A5"),
        instructions=_INSTRUCTIONS, warmup=_WARMUP,
    )
    assert via_runner == throttled_result


def test_campaign_cells_match_run_benchmark_field_for_field():
    # The historical bug: the campaign's private copy of run_benchmark
    # dropped `extra` and reseeded only half the simulation.  Every cell a
    # campaign enumerates must now equal run_benchmark on the same cell.
    pairs = campaign_cells(
        {"A5": ("throttle", "A5")}, ["gzip"], seeds=1,
        instructions=_INSTRUCTIONS, warmup=_WARMUP, config=table3_config(),
    )
    for (variant, benchmark, label), cell in pairs:
        via_campaign_path = simulate(cell)
        via_runner = run_benchmark(
            benchmark, cell.controller_spec,
            instructions=_INSTRUCTIONS, warmup=_WARMUP,
            seed=cell.seed, label=label,
        )
        for spec_field in fields(SimulationResult):
            assert getattr(via_campaign_path, spec_field.name) == getattr(
                via_runner, spec_field.name
            ), spec_field.name


def test_throttled_results_carry_extra_counters(throttled_result):
    for key in _EXTRA_KEYS:
        assert key in throttled_result.extra
    assert throttled_result.extra["squashed"] > 0


def test_seed_override_is_bit_identical_across_entry_points():
    # One seed convention: the override drives the program *and* the
    # processor, whichever door the simulation enters through.
    seed = benchmark_spec("gzip").seed + 1000
    direct = simulate(_cell(seed=seed))
    convenience = run_benchmark(
        "gzip", ("throttle", "A5"),
        instructions=_INSTRUCTIONS, warmup=_WARMUP, seed=seed,
    )
    assert direct == convenience
    assert direct != simulate(_cell())  # and the override really reseeds


def test_default_seed_is_the_calibrated_benchmark_seed():
    assert _cell().effective_seed == benchmark_spec("gzip").seed
    assert _cell(seed=7).effective_seed == 7


# --- fingerprints ------------------------------------------------------------

def test_fingerprint_distinguishes_every_cell_dimension():
    base = _cell()
    variants = [
        _cell(benchmark="go"),
        _cell(controller_spec=("throttle", "A6")),
        _cell(controller_spec=("gating", 2)),
        _cell(instructions=_INSTRUCTIONS + 1),
        _cell(warmup=_WARMUP + 1),
        _cell(seed=1),
        _cell(clock_gating="cc0"),
        _cell(config=replace(table3_config(), mshr_count=2)),
        _cell(config=table3_config().with_depth(20)),
        # (not 16 KB: 8+8 KB *is* the Table 3 baseline split)
        _cell(config=table3_config().with_table_sizes(32)),
    ]
    prints = [cell_fingerprint(cell) for cell in [base] + variants]
    assert len(set(prints)) == len(prints)


def test_fingerprint_changes_with_package_version(monkeypatch):
    # A persistent cache directory must not serve results computed by a
    # different simulator version.
    import repro

    before = cell_fingerprint(_cell())
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert cell_fingerprint(_cell()) != before


def test_fingerprint_ignores_display_label():
    assert cell_fingerprint(_cell()) == cell_fingerprint(_cell(label="pretty"))


def test_fingerprint_ignores_explicit_default_seed():
    default = benchmark_spec("gzip").seed
    assert cell_fingerprint(_cell()) == cell_fingerprint(_cell(seed=default))


def test_config_key_never_collides_across_distinct_configs():
    configs = [table3_config()]
    for depth in (8, 20, 24):
        configs.append(table3_config().with_depth(depth))
    for kb in (32, 64):
        configs.append(table3_config().with_table_sizes(kb))
    configs.append(replace(table3_config(), mshr_count=2))
    configs.append(replace(table3_config(), confidence_kind="jrs"))
    assert len({_config_key(config) for config in configs}) == len(configs)


def test_config_key_equal_for_equivalent_configs():
    # Sweeps that land back on the baseline must share its key, or the
    # runner would re-simulate identical machines.
    assert _config_key(table3_config().with_depth(14)) == _config_key(table3_config())
    assert _config_key(table3_config().with_table_sizes(16)) == _config_key(
        table3_config()
    )


# --- the on-disk cache -------------------------------------------------------

def test_result_dict_round_trip(throttled_result):
    assert result_from_dict(result_to_dict(throttled_result)) == throttled_result


def test_cache_round_trip_and_counters(tmp_path, throttled_result):
    cache = ResultCache(str(tmp_path))
    cell = _cell()
    assert cache.get(cell) is None
    cache.put(cell, throttled_result)
    assert cache.get(cell) == throttled_result
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)


def test_cache_relabels_display_only(tmp_path, throttled_result):
    cache = ResultCache(str(tmp_path))
    cache.put(_cell(), throttled_result)
    relabelled = cache.get(_cell(label="renamed"))
    assert relabelled.label == "renamed"
    assert replace(relabelled, label=throttled_result.label) == throttled_result


def test_changed_config_field_invalidates_cache_entry(tmp_path, throttled_result):
    cache = ResultCache(str(tmp_path))
    cache.put(_cell(), throttled_result)
    changed = _cell(config=replace(table3_config(), mshr_count=2))
    assert cache.get(changed) is None
    assert cache.misses == 1


# --- custom-policy controller specs ------------------------------------------

def test_policy_spec_round_trips_all_four_levels():
    from repro.confidence.base import ConfidenceLevel
    from repro.core.levels import BandwidthLevel
    from repro.core.policy import ThrottleAction, ThrottlePolicy
    from repro.experiments.engine import policy_from_spec, policy_spec

    policy = ThrottlePolicy(
        "custom",
        lc=ThrottleAction(BandwidthLevel.QUARTER, no_select=True),
        vlc=ThrottleAction(BandwidthLevel.STALL, BandwidthLevel.STALL, True),
        hc=ThrottleAction(BandwidthLevel.HALF),
        vhc=ThrottleAction(decode=BandwidthLevel.HALF),
    )
    rebuilt = policy_from_spec(policy_spec(policy))
    assert rebuilt.name == "custom"
    for level in ConfidenceLevel:
        original = policy.action_for(level)
        copy = rebuilt.action_for(level)
        assert (copy.fetch, copy.decode, copy.no_select) == (
            original.fetch, original.decode, original.no_select
        ), level


def test_policy_spec_cells_run_through_the_engine():
    from repro.core.policy import experiment_policy
    from repro.experiments.engine import policy_spec

    spec = policy_spec(experiment_policy("A5"))
    via_policy = simulate(_cell(controller_spec=spec))
    named = simulate(_cell())  # ("throttle", "A5") on the same cell
    assert via_policy == named  # same policy, same label, same simulation


# --- the engine --------------------------------------------------------------

def test_engine_preserves_submission_order():
    engine = ExecutionEngine()
    cells = [_cell(controller_spec=("baseline",)), _cell()]
    results = engine.run(cells)
    assert [r.label for r in results] == ["baseline", "A5"]
    assert engine.executed == 2


def test_engine_rejects_zero_jobs():
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError):
        ExecutionEngine(jobs=0)


def test_runner_memo_does_not_leak_custom_labels():
    runner = ExperimentRunner(instructions=_INSTRUCTIONS, warmup=_WARMUP)
    labelled = runner.run("gzip", ("throttle", "A5"), label="pretty")
    assert labelled.label == "pretty"
    assert runner.run("gzip", ("throttle", "A5")).label == "A5"
    assert runner.engine.executed == 1  # same memo entry served both


def test_runner_prefetch_warms_the_memo():
    runner = ExperimentRunner(instructions=_INSTRUCTIONS, warmup=_WARMUP)
    results = runner.prefetch([("gzip", ("baseline",)), ("gzip", ("throttle", "A5"))])
    assert [r.label for r in results] == ["baseline", "A5"]
    assert runner.engine.executed == 2
    runner.baseline("gzip")
    runner.run("gzip", ("throttle", "A5"))
    assert runner.engine.executed == 2  # both served from the memo


# --- campaign scaling contracts ----------------------------------------------

@pytest.fixture(scope="module")
def campaign_kwargs():
    return dict(
        experiments={"A5": ("throttle", "A5")},
        benchmarks=("gzip",),
        seeds=2,
        instructions=_INSTRUCTIONS,
        name="engine-test",
    )


@pytest.fixture(scope="module")
def serial_campaign(campaign_kwargs):
    return run_campaign(**campaign_kwargs)


def test_parallel_campaign_is_byte_identical_to_serial(
    serial_campaign, campaign_kwargs
):
    parallel = run_campaign(jobs=2, **campaign_kwargs)
    assert parallel.to_json() == serial_campaign.to_json()


def test_warm_cache_campaign_simulates_nothing(
    tmp_path, serial_campaign, campaign_kwargs
):
    cold = build_engine(cache_dir=str(tmp_path))
    first = run_campaign(engine=cold, **campaign_kwargs)
    assert cold.executed == 4  # 2 seeds x (baseline + A5)
    assert cold.cache.hits == 0

    warm = build_engine(cache_dir=str(tmp_path))
    second = run_campaign(engine=warm, **campaign_kwargs)
    assert warm.executed == 0
    assert warm.cache.hits == 4
    assert second.to_json() == first.to_json() == serial_campaign.to_json()
