"""The static-analysis pass: every rule family on fixture packages.

Each rule gets a violating snippet, a conforming snippet and (where the
rule has one) an allowlisted snippet, fed through
:class:`~repro.analysis.walker.ProjectIndex` exactly as ``repro check``
feeds the real tree.  Plus: baseline round-trip, JSON schema, and the
gate that the repository's own ``src/`` is clean.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import run_check
from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.registry import ALL_RULES, Violation
from repro.analysis.report import JSON_SCHEMA, render_json, render_text
from repro.analysis.walker import ProjectIndex

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def build_index(tmp_path, files):
    for rel, source in files.items():
        full = tmp_path / rel
        full.parent.mkdir(parents=True, exist_ok=True)
        full.write_text(source)
    return ProjectIndex.build(str(tmp_path))


def run_rule(index, rule_id):
    for rule in ALL_RULES:
        if rule.rule_id == rule_id:
            return rule.check(index)
    raise AssertionError(f"no such rule {rule_id}")


# ----------------------------------------------------------------------
# DET001: wall clock
# ----------------------------------------------------------------------

def test_det001_flags_wall_clock(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "import time\n"
            "from time import monotonic\n"
            "def stamp():\n"
            "    return time.time()\n"
            "def tick():\n"
            "    return monotonic()\n"
            "def pure(x):\n"
            "    return x + 1\n"
        ),
    })
    violations = run_rule(index, "DET001")
    assert [(v.symbol, v.path) for v in violations] == [
        ("stamp", "pkg/mod.py"), ("tick", "pkg/mod.py"),
    ]
    assert "wall clock" in violations[0].message


def test_det001_resolves_datetime_aliases(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "from datetime import datetime as dt\n"
            "def when():\n"
            "    return dt.now()\n"
        ),
    })
    assert len(run_rule(index, "DET001")) == 1


def test_det001_allowlists_cache_maintenance(tmp_path):
    index = build_index(tmp_path, {
        "repro/experiments/engine.py": (
            "import time\n"
            "class ResultCache:\n"
            "    def info(self):\n"
            "        return time.time()\n"
            "    def prune(self, days):\n"
            "        return time.time() - days\n"
            "    def lookup(self):\n"
            "        return time.time()\n"
        ),
    })
    violations = run_rule(index, "DET001")
    # info/prune are allowlisted; lookup is not.
    assert [v.symbol for v in violations] == ["ResultCache.lookup"]


# ----------------------------------------------------------------------
# DET002: entropy
# ----------------------------------------------------------------------

def test_det002_flags_entropy_and_global_random(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "import os\n"
            "import random\n"
            "import uuid\n"
            "def a():\n"
            "    return random.random()\n"
            "def b():\n"
            "    return os.urandom(8)\n"
            "def c():\n"
            "    return uuid.uuid4()\n"
            "def d():\n"
            "    return random.Random()\n"
        ),
    })
    violations = run_rule(index, "DET002")
    assert [v.symbol for v in violations] == ["a", "b", "c", "d"]


def test_det002_accepts_seeded_instances(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "import random\n"
            "def make(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n"
        ),
    })
    assert run_rule(index, "DET002") == []


# ----------------------------------------------------------------------
# DET003: set iteration
# ----------------------------------------------------------------------

def test_det003_flags_set_iteration(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "def f(items):\n"
            "    seen = set(items)\n"
            "    out = []\n"
            "    for item in seen:\n"
            "        out.append(item)\n"
            "    return out\n"
            "def g(items):\n"
            "    return [x for x in {i * 2 for i in items}]\n"
            "def h(items):\n"
            "    return list(frozenset(items))\n"
        ),
    })
    violations = run_rule(index, "DET003")
    assert [v.symbol for v in violations] == ["f", "g", "h"]
    assert "sorted()" in violations[0].message


def test_det003_accepts_sorted_and_reductions(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "def f(items):\n"
            "    seen = set(items)\n"
            "    total = sum(seen)\n"          # order-insensitive
            "    top = max(seen)\n"
            "    hit = 3 in seen\n"
            "    return [x for x in sorted(seen)], total, top, hit\n"
        ),
    })
    assert run_rule(index, "DET003") == []


def test_det003_does_not_flag_dict_iteration(tmp_path):
    # Dicts iterate in insertion order (deterministic); only sets are
    # hash-ordered.
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "def f(mapping):\n"
            "    return [key for key in mapping] + list(mapping.keys())\n"
        ),
    })
    assert run_rule(index, "DET003") == []


# ----------------------------------------------------------------------
# HOT001: __slots__
# ----------------------------------------------------------------------

_SLOTLESS = (
    "class Hot:\n"
    "    def __init__(self):\n"
    "        self.x = 1\n"
)


def test_hot001_flags_slotless_hot_package_class(tmp_path):
    index = build_index(tmp_path, {"repro/pipeline/thing.py": _SLOTLESS})
    violations = run_rule(index, "HOT001")
    assert [v.symbol for v in violations] == ["Hot"]
    assert "__slots__" in violations[0].message


def test_hot001_ignores_cold_packages(tmp_path):
    index = build_index(tmp_path, {"repro/report/thing.py": _SLOTLESS})
    assert run_rule(index, "HOT001") == []


def test_hot001_exemptions(tmp_path):
    index = build_index(tmp_path, {
        "repro/power/thing.py": (
            "import enum\n"
            "from dataclasses import dataclass\n"
            "class Slotted:\n"
            "    __slots__ = ('x',)\n"
            "@dataclass\n"
            "class Config:\n"
            "    x: int = 1\n"
            "class Style(enum.Enum):\n"
            "    A = 'a'\n"
            "class BadThing(ValueError):\n"
            "    pass\n"
        ),
    })
    assert run_rule(index, "HOT001") == []


def test_hot001_allowlists_stage_classes(tmp_path):
    # Stage instances are a documented tick-rebinding extension point.
    index = build_index(tmp_path, {
        "repro/pipeline/stages/fetch.py": (
            "class FetchStage(Stage):\n"
            "    def __init__(self):\n"
            "        self.width = 4\n"
        ),
    })
    assert run_rule(index, "HOT001") == []


# ----------------------------------------------------------------------
# HOT002: stage method discipline
# ----------------------------------------------------------------------

def test_hot002_flags_closures_try_and_sum(tmp_path):
    index = build_index(tmp_path, {
        "repro/pipeline/stages/custom.py": (
            "class CustomStage(Stage):\n"
            "    def tick(self, cycle, activity):\n"
            "        total = sum(e.count for e in self.entries)\n"
            "        key = lambda e: e.seq\n"
            "        try:\n"
            "            pass\n"
            "        except ValueError:\n"
            "            pass\n"
        ),
    })
    violations = run_rule(index, "HOT002")
    messages = " / ".join(v.message for v in violations)
    assert len(violations) == 3
    assert "sum()" in messages
    assert "lambda" in messages
    assert "try block" in messages
    assert all(v.symbol == "CustomStage.tick" for v in violations)


def test_hot002_accepts_accumulator_loops(tmp_path):
    index = build_index(tmp_path, {
        "repro/pipeline/stages/custom.py": (
            "class CustomStage(Stage):\n"
            "    def tick(self, cycle, activity):\n"
            "        total = 0\n"
            "        for entry in self.entries:\n"
            "            total += entry.count\n"
            "        return total\n"
        ),
    })
    assert run_rule(index, "HOT002") == []


def test_hot002_ignores_non_stage_classes(tmp_path):
    index = build_index(tmp_path, {
        "repro/pipeline/stages/helper.py": (
            "class Helper:\n"
            "    def compute(self):\n"
            "        return sum((1, 2, 3))\n"
        ),
    })
    assert run_rule(index, "HOT002") == []


# ----------------------------------------------------------------------
# CON001: stage contracts
# ----------------------------------------------------------------------

def test_con001_missing_contract(tmp_path):
    index = build_index(tmp_path, {
        "repro/pipeline/stages/custom.py": (
            "class CustomStage(Stage):\n"
            "    def tick(self, cycle, activity):\n"
            "        pass\n"
        ),
    })
    violations = run_rule(index, "CON001")
    assert len(violations) == 1
    assert "declares no CONTRACT" in violations[0].message


def test_con001_undeclared_write(tmp_path):
    index = build_index(tmp_path, {
        "repro/pipeline/stages/custom.py": (
            "class CustomStage(Stage):\n"
            "    CONTRACT = {'reads': (), 'writes': ('fetch_latch',)}\n"
            "    def tick(self, cycle, activity):\n"
            "        for thread in self.kernel.threads:\n"
            "            thread.fetch_entries.append(1)\n"
            "            thread.decode_entries.append(2)\n"
        ),
    })
    violations = run_rule(index, "CON001")
    # The undeclared touch surfaces as both a write and a read finding.
    assert violations
    assert any(
        "writes surface 'decode_latch'" in v.message for v in violations
    )
    assert all("decode_latch" in v.message for v in violations)


def test_con001_undeclared_read(tmp_path):
    index = build_index(tmp_path, {
        "repro/pipeline/stages/custom.py": (
            "class CustomStage(Stage):\n"
            "    CONTRACT = {'reads': (), 'writes': ('iq',)}\n"
            "    def tick(self, cycle, activity):\n"
            "        for thread in self.kernel.threads:\n"
            "            n = len(thread.rob.entries)\n"
            "            thread.iq.count = n\n"
        ),
    })
    violations = run_rule(index, "CON001")
    assert len(violations) == 1
    assert "reads surface 'rob'" in violations[0].message


def test_con001_conforming_stage_with_aliases(tmp_path):
    # Exercises alias tracking: a bound mutator, a call-result alias
    # and a self-attribute alias established in __init__.
    index = build_index(tmp_path, {
        "repro/pipeline/stages/custom.py": (
            "class CustomStage(Stage):\n"
            "    CONTRACT = {\n"
            "        'reads': ('decode_latch',),\n"
            "        'writes': ('fetch_latch', 'completions'),\n"
            "    }\n"
            "    def __init__(self, kernel):\n"
            "        self.buckets = kernel.completions.buckets\n"
            "    def tick(self, cycle, activity):\n"
            "        for thread in self.kernel.threads:\n"
            "            pipe = thread.fetch_entries\n"
            "            popleft = pipe.popleft\n"
            "            depth = len(thread.decode_entries)\n"
            "            bucket = self.buckets.get(cycle)\n"
            "            if bucket is not None:\n"
            "                bucket.append(depth)\n"
        ),
    })
    assert run_rule(index, "CON001") == []


def test_con001_malformed_contract(tmp_path):
    index = build_index(tmp_path, {
        "repro/pipeline/stages/custom.py": (
            "class CustomStage(Stage):\n"
            "    CONTRACT = {'reads': (), 'writes': ('warp_core',)}\n"
            "    def tick(self, cycle, activity):\n"
            "        pass\n"
        ),
    })
    violations = run_rule(index, "CON001")
    assert len(violations) == 1
    assert "unknown surface 'warp_core'" in violations[0].message


# ----------------------------------------------------------------------
# SER001: controller-spec grammar
# ----------------------------------------------------------------------

def test_ser001_flags_unknown_kind_and_unpicklable_elements(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "bad_spec = ('bogus', 'C2')\n"
            "lambda_spec = ('policy', lambda s: s)\n"
            "list_spec = ('policy', 'p', [1, 2])\n"
        ),
    })
    violations = run_rule(index, "SER001")
    messages = " / ".join(v.message for v in violations)
    assert len(violations) == 3
    assert "unknown controller-spec kind 'bogus'" in messages
    assert "lambda" in messages
    assert "list" in messages


def test_ser001_accepts_grammar_and_dynamic_specs(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "a_spec = ('throttle', 'C2')\n"
            "b_spec = ('policy', 'custom', 6, ('dispatch', 2), None, 0.5)\n"
            "def make(kind):\n"
            "    c_spec = (kind, 2)\n"  # dynamic head: not checkable
            "    return c_spec\n"
            "plain = ('not', 'a', 'spec')\n"  # not a *_spec binding
        ),
    })
    assert run_rule(index, "SER001") == []


def test_ser001_checks_keyword_arguments(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "def build(cell):\n"
            "    return cell(controller_spec=('oops', 1))\n"
        ),
    })
    violations = run_rule(index, "SER001")
    assert len(violations) == 1
    assert "'oops'" in violations[0].message


# ----------------------------------------------------------------------
# Baselines and reports
# ----------------------------------------------------------------------

def _some_violations(tmp_path):
    index = build_index(tmp_path, {
        "pkg/mod.py": (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
    })
    return run_rule(index, "DET001")


def test_baseline_round_trip(tmp_path):
    violations = _some_violations(tmp_path)
    assert violations
    path = str(tmp_path / "baseline.json")
    write_baseline(path, violations)
    keys = load_baseline(path)
    kept, suppressed, stale = apply_baseline(violations, keys)
    assert kept == []
    assert suppressed == len(violations)
    assert stale == []


def test_baseline_reports_stale_keys(tmp_path):
    violations = _some_violations(tmp_path)
    keys = {v.baseline_key for v in violations} | {"DET001::gone.py::old"}
    kept, suppressed, stale = apply_baseline(violations, keys)
    assert kept == []
    assert stale == ["DET001::gone.py::old"]


def test_baseline_key_is_line_free():
    violation = Violation(
        rule="DET001", path="pkg/mod.py", line=17, symbol="stamp",
        message="m",
    )
    assert violation.baseline_key == "DET001::pkg/mod.py::stamp"
    assert violation.render() == "pkg/mod.py:17: DET001 [stamp] m"


def test_baseline_rejects_foreign_files(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"something": "else"}))
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_json_report_schema(tmp_path):
    violations = _some_violations(tmp_path)
    payload = render_json(violations, suppressed=2, stale=["K"])
    assert payload["schema"] == JSON_SCHEMA
    assert payload["count"] == len(violations)
    assert payload["suppressed"] == 2
    assert payload["stale_baseline_keys"] == ["K"]
    assert {r["id"] for r in payload["rules"]} == {
        "DET001", "DET002", "DET003", "HOT001", "HOT002", "CON001", "SER001",
    }
    entry = payload["violations"][0]
    assert set(entry) == {
        "rule", "path", "line", "symbol", "message", "baseline_key",
    }
    json.dumps(payload)  # must be JSON-serialisable as-is


def test_text_report_mentions_counts(tmp_path):
    violations = _some_violations(tmp_path)
    text = render_text(violations, suppressed=1, stale=["K"])
    assert "violation(s)" in text
    assert "suppressed by baseline" in text
    assert "stale" in text
    assert violations[0].render() in text


# ----------------------------------------------------------------------
# The gate: this repository's own source is clean
# ----------------------------------------------------------------------

def test_repository_source_is_clean():
    violations = run_check(src_root=SRC_ROOT)
    assert violations == [], "\n".join(v.render() for v in violations)
