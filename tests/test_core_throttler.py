"""Tests for the Selective Throttling runtime and Pipeline Gating."""

from repro.confidence.base import ConfidenceLevel
from repro.core.gating import PipelineGatingController
from repro.core.levels import BandwidthLevel
from repro.core.policy import experiment_policy
from repro.core.throttler import NullController, SelectiveThrottler
from repro.isa.instruction import DynamicInstruction, StaticInstruction
from repro.isa.opcodes import Opcode

import pytest

from repro.errors import ConfigurationError


def _branch(seq):
    return DynamicInstruction(seq, StaticInstruction(seq * 4, Opcode.BR_COND, sources=(2,)))


def _body(seq):
    return DynamicInstruction(seq, StaticInstruction(seq * 4, Opcode.ADD, dest=3))


# --- null controller ----------------------------------------------------

def test_null_controller_never_blocks():
    controller = NullController()
    instr = _body(1)
    assert controller.fetch_allowed(0)
    assert not controller.blocks_decode(0, instr)
    assert not controller.blocks_selection(instr)
    assert not controller.blocks_wrong_path_fetch


# --- selective throttling -------------------------------------------------

def test_high_confidence_never_arms():
    throttler = SelectiveThrottler(experiment_policy("A5"))
    branch = _branch(1)
    throttler.on_branch_fetched(branch, ConfidenceLevel.VHC)
    throttler.on_branch_fetched(branch, ConfidenceLevel.HC)
    assert throttler.active_token_count == 0
    assert all(throttler.fetch_allowed(c) for c in range(8))


def test_lc_arms_quarter_fetch_until_resolution():
    throttler = SelectiveThrottler(experiment_policy("A5"))
    branch = _branch(1)
    throttler.on_branch_fetched(branch, ConfidenceLevel.LC)
    pattern = [throttler.fetch_allowed(c) for c in range(8)]
    assert pattern == [True, False, False, False] * 2
    throttler.on_branch_resolved(branch)
    assert all(throttler.fetch_allowed(c) for c in range(8))


def test_vlc_stalls_fetch_completely():
    throttler = SelectiveThrottler(experiment_policy("A5"))
    branch = _branch(1)
    throttler.on_branch_fetched(branch, ConfidenceLevel.VLC)
    assert not any(throttler.fetch_allowed(c) for c in range(8))


def test_escalate_only_rule():
    throttler = SelectiveThrottler(experiment_policy("A5"))
    vlc_branch = _branch(1)
    lc_branch = _branch(2)
    throttler.on_branch_fetched(vlc_branch, ConfidenceLevel.VLC)  # stall
    throttler.on_branch_fetched(lc_branch, ConfidenceLevel.LC)  # weaker
    # the weaker later trigger must not relax the stall
    assert not any(throttler.fetch_allowed(c) for c in range(8))
    throttler.on_branch_resolved(vlc_branch)
    # now only the LC quarter-throttle remains
    assert throttler.fetch_allowed(0)
    assert not throttler.fetch_allowed(1)


def test_squash_releases_token():
    throttler = SelectiveThrottler(experiment_policy("A5"))
    branch = _branch(1)
    throttler.on_branch_fetched(branch, ConfidenceLevel.VLC)
    throttler.on_branch_squashed(branch)
    assert throttler.active_token_count == 0
    assert all(throttler.fetch_allowed(c) for c in range(4))


def test_release_is_idempotent():
    throttler = SelectiveThrottler(experiment_policy("A5"))
    branch = _branch(1)
    throttler.on_branch_fetched(branch, ConfidenceLevel.VLC)
    throttler.on_branch_resolved(branch)
    throttler.on_branch_squashed(branch)  # double release must not blow up
    assert throttler.active_token_count == 0


def test_decode_throttle_spares_the_triggering_branch():
    throttler = SelectiveThrottler(experiment_policy("B3"))  # LC: decode=0
    branch = _branch(10)
    throttler.on_branch_fetched(branch, ConfidenceLevel.LC)
    older = _body(5)
    younger = _body(11)
    # the branch itself and anything older must keep decoding
    assert not throttler.blocks_decode(1, branch)
    assert not throttler.blocks_decode(1, older)
    assert throttler.blocks_decode(1, younger)
    throttler.on_branch_resolved(branch)
    assert not throttler.blocks_decode(1, younger)


def test_noselect_blocks_only_younger_instructions():
    throttler = SelectiveThrottler(experiment_policy("C2"))
    branch = _branch(10)
    throttler.on_branch_fetched(branch, ConfidenceLevel.LC)
    assert not throttler.blocks_selection(branch)  # never blocks itself
    assert not throttler.blocks_selection(_body(9))
    assert throttler.blocks_selection(_body(11))
    throttler.on_branch_resolved(branch)
    assert not throttler.blocks_selection(_body(11))


def test_noselect_uses_oldest_armed_branch():
    throttler = SelectiveThrottler(experiment_policy("C2"))
    first = _branch(10)
    second = _branch(20)
    throttler.on_branch_fetched(first, ConfidenceLevel.LC)
    throttler.on_branch_fetched(second, ConfidenceLevel.LC)
    assert throttler.blocks_selection(_body(15))
    throttler.on_branch_resolved(first)
    assert not throttler.blocks_selection(_body(15))
    assert throttler.blocks_selection(_body(25))


def test_trigger_statistics():
    throttler = SelectiveThrottler(experiment_policy("A5"))
    throttler.on_branch_fetched(_branch(1), ConfidenceLevel.LC)
    throttler.on_branch_fetched(_branch(2), ConfidenceLevel.VLC)
    throttler.on_branch_fetched(_branch(3), ConfidenceLevel.VHC)
    assert throttler.triggers == 2
    assert throttler.triggers_by_level[ConfidenceLevel.LC] == 1
    assert throttler.triggers_by_level[ConfidenceLevel.VLC] == 1


def test_reset_clears_tokens():
    throttler = SelectiveThrottler(experiment_policy("A6"))
    throttler.on_branch_fetched(_branch(1), ConfidenceLevel.LC)
    throttler.reset()
    assert all(throttler.fetch_allowed(c) for c in range(4))


# --- pipeline gating --------------------------------------------------------

def test_gating_gates_above_threshold():
    gating = PipelineGatingController(gating_threshold=2)
    branches = [_branch(i) for i in range(4)]
    for branch in branches[:2]:
        gating.on_branch_fetched(branch, ConfidenceLevel.LC)
    assert gating.fetch_allowed(0)  # at threshold: not gated (must exceed)
    gating.on_branch_fetched(branches[2], ConfidenceLevel.LC)
    assert not gating.fetch_allowed(1)
    gating.on_branch_resolved(branches[0])
    assert gating.fetch_allowed(2)


def test_gating_ignores_high_confidence():
    gating = PipelineGatingController(2)
    for i in range(10):
        gating.on_branch_fetched(_branch(i), ConfidenceLevel.HC)
    assert gating.outstanding_low_confidence == 0
    assert gating.fetch_allowed(0)


def test_gating_squash_releases():
    gating = PipelineGatingController(1)
    a, b = _branch(1), _branch(2)
    gating.on_branch_fetched(a, ConfidenceLevel.LC)
    gating.on_branch_fetched(b, ConfidenceLevel.VLC)
    assert not gating.fetch_allowed(0)
    gating.on_branch_squashed(b)
    assert gating.fetch_allowed(1)


def test_gating_drop_is_idempotent():
    gating = PipelineGatingController(1)
    branch = _branch(1)
    gating.on_branch_fetched(branch, ConfidenceLevel.LC)
    gating.on_branch_resolved(branch)
    gating.on_branch_squashed(branch)
    assert gating.outstanding_low_confidence == 0


def test_gating_validation():
    with pytest.raises(ConfigurationError):
        PipelineGatingController(0)
