"""Tests for ROB, LSQ, issue queue, renamer and FU pool."""

import pytest

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction, StaticInstruction
from repro.isa.opcodes import Opcode, OpClass
from repro.pipeline.config import table3_config
from repro.pipeline.iq import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.renamer import ARCH_READY_TAG, RegisterRenamer
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.rob import ReorderBuffer


def _instr(seq, opcode=Opcode.ADD, dest=3, sources=(1, 2)):
    return DynamicInstruction(seq, StaticInstruction(seq * 4, opcode, dest=dest, sources=sources))


# --- ROB ---------------------------------------------------------------

def test_rob_fifo_order():
    rob = ReorderBuffer(4)
    a, b = _instr(1), _instr(2)
    rob.push(a)
    rob.push(b)
    assert rob.head() is a
    assert rob.pop_head() is a
    assert rob.pop_head() is b


def test_rob_full_and_occupancy():
    rob = ReorderBuffer(2)
    rob.push(_instr(1))
    assert rob.occupancy == 0.5
    rob.push(_instr(2))
    assert rob.full
    with pytest.raises(SimulationError):
        rob.push(_instr(3))


def test_rob_squash_younger():
    rob = ReorderBuffer(8)
    instrs = [_instr(i) for i in range(1, 6)]
    for instr in instrs:
        rob.push(instr)
    squashed = rob.squash_younger(3)
    assert [i.seq for i in squashed] == [5, 4]
    assert len(rob) == 3
    assert rob.head().seq == 1


def test_rob_pop_empty_raises():
    with pytest.raises(SimulationError):
        ReorderBuffer(2).pop_head()


# --- LSQ ---------------------------------------------------------------

def test_lsq_allocate_release_cycle():
    lsq = LoadStoreQueue(2)
    lsq.allocate(_instr(1, Opcode.LOAD, sources=(1,)))
    lsq.allocate(_instr(2, Opcode.STORE, dest=None))
    assert lsq.full
    lsq.release()
    assert not lsq.full
    lsq.release()
    with pytest.raises(SimulationError):
        lsq.release()


def test_lsq_overflow_raises():
    lsq = LoadStoreQueue(1)
    lsq.allocate(_instr(1, Opcode.LOAD, sources=(1,)))
    with pytest.raises(SimulationError):
        lsq.allocate(_instr(2, Opcode.LOAD, sources=(1,)))


# --- renamer -------------------------------------------------------------

def test_rename_tracks_producers():
    renamer = RegisterRenamer()
    producer = _instr(10, dest=5)
    waits = renamer.rename(producer)
    assert waits == ()  # sources architectural, ready
    assert producer.phys_dest == 10
    consumer = _instr(11, dest=6, sources=(5,))
    waits = renamer.rename(consumer)
    assert waits == (10,)
    renamer.mark_completed(10)
    late_consumer = _instr(12, dest=7, sources=(5,))
    assert renamer.rename(late_consumer) == ()


def test_rename_zero_register_never_renamed():
    renamer = RegisterRenamer()
    instr = _instr(10, dest=0)
    renamer.rename(instr)
    assert instr.phys_dest == -1


def test_rename_checkpoint_restore():
    renamer = RegisterRenamer()
    renamer.rename(_instr(1, dest=5))
    checkpoint = renamer.checkpoint()
    renamer.rename(_instr(2, dest=5))
    consumer = _instr(3, sources=(5,))
    renamer.rename(consumer)
    assert consumer.phys_sources == (2,)
    renamer.restore(checkpoint)
    consumer2 = _instr(4, sources=(5,))
    renamer.rename(consumer2)
    assert consumer2.phys_sources == (1,)


def test_renamer_forget_squashed_tag():
    renamer = RegisterRenamer()
    renamer.rename(_instr(1, dest=5))
    assert renamer.is_pending(1)
    renamer.forget(1)
    assert not renamer.is_pending(1)


# --- issue queue -------------------------------------------------------

def _pool():
    return FunctionalUnitPool(table3_config())


def test_iq_ready_at_dispatch_issues():
    iq = IssueQueue(8)
    pool = _pool()
    pool.new_cycle()
    instr = _instr(1)
    iq.dispatch(instr, ())
    selected = iq.select(8, pool, lambda i: False)
    assert selected == [instr]
    assert instr.issued
    assert len(iq) == 0


def test_iq_wakeup_chain():
    iq = IssueQueue(8)
    pool = _pool()
    consumer = _instr(2, sources=(1,))
    iq.dispatch(consumer, (1,))
    pool.new_cycle()
    assert iq.select(8, pool, lambda i: False) == []
    woken = iq.wakeup(1)
    assert woken == 1
    pool.new_cycle()
    assert iq.select(8, pool, lambda i: False) == [consumer]


def test_iq_select_oldest_first_and_width_limit():
    iq = IssueQueue(16)
    pool = _pool()
    instrs = [_instr(seq) for seq in (5, 3, 9, 1)]
    for instr in instrs:
        iq.dispatch(instr, ())
    pool.new_cycle()
    selected = iq.select(2, pool, lambda i: False)
    assert [i.seq for i in selected] == [1, 3]


def test_iq_select_respects_blocker():
    iq = IssueQueue(8)
    pool = _pool()
    a, b = _instr(1), _instr(2)
    iq.dispatch(a, ())
    iq.dispatch(b, ())
    pool.new_cycle()
    selected = iq.select(8, pool, lambda i: i.seq == 1)
    assert selected == [b]
    # blocked instruction remains ready for later cycles
    pool.new_cycle()
    assert iq.select(8, pool, lambda i: False) == [a]


def test_iq_select_respects_fu_limits():
    iq = IssueQueue(16)
    pool = _pool()
    muls = [_instr(seq, Opcode.MUL) for seq in range(1, 5)]
    for instr in muls:
        iq.dispatch(instr, ())
    pool.new_cycle()
    selected = iq.select(8, pool, lambda i: False)
    assert len(selected) == 2  # Table 3: 2 integer multipliers


def test_iq_mem_ports_shared_between_loads_and_stores():
    iq = IssueQueue(16)
    pool = _pool()
    iq.dispatch(_instr(1, Opcode.LOAD, sources=(1,)), ())
    iq.dispatch(_instr(2, Opcode.STORE, dest=None, sources=(1, 2)), ())
    iq.dispatch(_instr(3, Opcode.LOAD, sources=(1,)), ())
    pool.new_cycle()
    selected = iq.select(8, pool, lambda i: False)
    assert len(selected) == 2  # Table 3: 2 memory ports


def test_iq_squash_removes_from_ready():
    iq = IssueQueue(8)
    pool = _pool()
    old, young = _instr(1), _instr(9)
    iq.dispatch(old, ())
    iq.dispatch(young, ())
    young.squashed = True
    iq.squash_younger(5)
    iq.note_squashed(young)
    pool.new_cycle()
    assert iq.select(8, pool, lambda i: False) == [old]
    assert len(iq) == 0


def test_iq_wakeup_skips_squashed():
    iq = IssueQueue(8)
    waiter = _instr(2, sources=(1,))
    iq.dispatch(waiter, (1,))
    waiter.squashed = True
    assert iq.wakeup(1) == 0


def test_iq_full_raises():
    iq = IssueQueue(1)
    iq.dispatch(_instr(1), ())
    with pytest.raises(SimulationError):
        iq.dispatch(_instr(2), ())


# --- FU pool ---------------------------------------------------------------

def test_fu_pool_branch_shares_int_alu():
    pool = _pool()
    pool.new_cycle()
    claimed = 0
    while pool.try_claim(OpClass.BRANCH):
        claimed += 1
    assert claimed == table3_config().int_alu
    assert not pool.try_claim(OpClass.INT_ALU)


def test_fu_pool_refreshes_each_cycle():
    pool = _pool()
    pool.new_cycle()
    assert pool.try_claim(OpClass.FP_MULT)
    assert not pool.try_claim(OpClass.FP_MULT)
    pool.new_cycle()
    assert pool.try_claim(OpClass.FP_MULT)
