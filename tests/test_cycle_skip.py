"""The next-event cycle-skip engine and its satellites.

The kernel-equivalence property (``test_kernel_equivalence.py``) proves
a skipping array kernel matches the never-skipping object kernel; this
file tests the machinery underneath and around it:

* the controller ``next_active_cycle`` / ``close_gated_window`` contract
  (O(1) wheel probes, side-effect-free probing, batched side effects);
* skip-on vs skip-off bit-identity through ``ProcessorConfig.cycle_skip``
  on the gated and SMT configurations the old quiescence detector had to
  bypass;
* probe-bus reconciliation across skipped windows (stall/throttle
  counters, throttle residency, the skip histogram);
* the result cache's in-memory LRU tier and size-bounded disk eviction.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.gating import PipelineGatingController
from repro.core.levels import (
    ACTIVE_WHEEL_MASKS,
    NEVER_ACTIVE,
    BandwidthLevel,
    next_wheel_active,
)
from repro.core.policy import experiment_policy
from repro.core.throttler import SelectiveThrottler
from repro.errors import ExperimentError
from repro.experiments.engine import ResultCache, make_cell, make_controller
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator, ProgramShape
from repro.smt.core import SmtProcessor
from repro.smt.policies import make_fetch_policy

_INSTRUCTIONS = 1_500
_WARMUP = 300


# ---------------------------------------------------------------------------
# The wheel helper and the controller contract
# ---------------------------------------------------------------------------

def test_next_wheel_active_matches_the_per_cycle_probe():
    for mask in ACTIVE_WHEEL_MASKS:
        for cycle in range(17):
            expected = NEVER_ACTIVE
            if mask:
                probe = cycle
                while not (mask >> (probe & 3)) & 1:
                    probe += 1
                expected = probe
            assert next_wheel_active(mask, cycle) == expected


def test_throttler_next_active_cycle_matches_fetch_allowed():
    throttler = SelectiveThrottler(experiment_policy("C2"))
    level = BandwidthLevel.QUARTER
    throttler._fetch_level = level
    throttler._fetch_mask = ACTIVE_WHEEL_MASKS[level]
    for cycle in range(12):
        at = throttler.next_active_cycle(cycle)
        assert at >= cycle
        assert throttler.fetch_allowed(at)
        for probe in range(cycle, at):
            assert not throttler.fetch_allowed(probe)


def test_gating_controller_probe_is_pure_and_batch_close_counts():
    controller = PipelineGatingController(gating_threshold=2)
    controller._outstanding = 3  # gated
    before = controller.gated_cycles
    assert controller.next_active_cycle(100) == NEVER_ACTIVE
    assert controller.gated_cycles == before, "the probe must be side-effect free"
    assert not controller.fetch_allowed(100)
    assert controller.gated_cycles == before + 1, "the stepped path still counts"
    controller.close_gated_window(7)
    assert controller.gated_cycles == before + 8, "the batch close replays probes"
    controller._outstanding = 1  # open
    assert controller.next_active_cycle(200) == 200


# ---------------------------------------------------------------------------
# Skip-on vs skip-off bit-identity (the cycle_skip switch)
# ---------------------------------------------------------------------------

def _program(seed: int, name: str):
    return ProgramGenerator(ProgramShape(), seed=seed, name=name).generate()


def _solo_observables(spec, cycle_skip: bool, telemetry: bool = False):
    config = replace(table3_config(), cycle_skip=cycle_skip, telemetry=telemetry)
    controller = make_controller(spec) if spec is not None else None
    processor = Processor(
        config, _program(11, "skipab"), controller=controller, seed=5
    )
    stats = processor.run(_INSTRUCTIONS, warmup_instructions=_WARMUP)
    return processor, {
        "stats": stats.as_dict(),
        "cycles": processor.cycle,
        "gated": getattr(controller, "gated_cycles", None),
        "energy": processor.power.total_energy(),
        "breakdown": processor.power.breakdown(),
    }


def _smt_observables(spec, policy: str, cycle_skip: bool, telemetry: bool = False):
    config = replace(table3_config(), cycle_skip=cycle_skip, telemetry=telemetry)
    programs = [_program(21, "skipsmtA"), _program(22, "skipsmtB")]
    controllers = (
        [make_controller(spec) for _ in programs] if spec is not None else None
    )
    processor = SmtProcessor(
        config, programs, seeds=[31, 32], controllers=controllers,
        fetch_policy=make_fetch_policy(policy),
    )
    stats = processor.run(_INSTRUCTIONS, warmup_instructions=_WARMUP)
    return processor, {
        "stats": stats.as_dict(),
        "cycles": processor.cycle,
        "threads": [
            (thread.committed, thread.fetched, thread.squashed,
             thread.policy_gated_cycles)
            for thread in processor.threads
        ],
        "gated": [
            getattr(thread.controller, "gated_cycles", None)
            for thread in processor.threads
        ],
        "energy": processor.power.total_energy(),
        "attribution": processor.power.thread_attribution(),
    }


@pytest.mark.parametrize("spec", (
    None, ("throttle", "C2"), ("throttle", "A2"), ("gating", 2),
    ("oracle", "fetch"),
))
def test_solo_skip_on_equals_skip_off(spec):
    _, on = _solo_observables(spec, cycle_skip=True)
    _, off = _solo_observables(spec, cycle_skip=False)
    assert on == off, f"{spec}: cycle_skip changed observable results"


@pytest.mark.parametrize("spec,policy", (
    (("throttle", "C2"), "confidence-gating"),
    (("gating", 2), "round-robin"),
    (None, "icount"),
))
def test_smt_skip_on_equals_skip_off(spec, policy):
    _, on = _smt_observables(spec, policy, cycle_skip=True)
    _, off = _smt_observables(spec, policy, cycle_skip=False)
    assert on == off, f"{spec}/{policy}: cycle_skip changed observable results"


# ---------------------------------------------------------------------------
# Probe reconciliation across skipped windows
# ---------------------------------------------------------------------------

def _assert_probes_reconcile(processor) -> dict:
    stats = processor.stats
    snapshot = processor.probes.snapshot()
    fetch = snapshot["stages"]["fetch"]
    assert snapshot["cycles"] == stats.cycles
    assert fetch["stall_redirect"] == stats.redirect_stall_cycles
    assert fetch["stall_throttle"] == stats.fetch_throttled_cycles
    assert fetch["instructions"] == stats.fetched
    assert snapshot["stages"]["commit"]["instructions"] == stats.committed
    residency = snapshot["throttle_residency"]
    assert sum(residency.values()) == stats.cycles * len(processor.threads)
    skip = snapshot["skip"]
    assert skip["windows"] == sum(skip["length_hist"].values())
    assert skip["skipped_cycles"] >= skip["windows"]
    return snapshot


def test_probe_totals_reconcile_on_gated_solo_run():
    processor, _ = _solo_observables(
        ("throttle", "C2"), cycle_skip=True, telemetry=True
    )
    snapshot = _assert_probes_reconcile(processor)
    assert snapshot["skip"]["skipped_cycles"] > 0, (
        "a C2 run must produce skippable fetch-gated windows"
    )


def test_probe_totals_reconcile_on_gating_controller_run():
    processor, _ = _solo_observables(("gating", 2), cycle_skip=True, telemetry=True)
    _assert_probes_reconcile(processor)


def test_probe_totals_reconcile_on_smt_run():
    processor, _ = _smt_observables(
        ("throttle", "C2"), "confidence-gating", cycle_skip=True, telemetry=True
    )
    _assert_probes_reconcile(processor)


# ---------------------------------------------------------------------------
# Result cache: in-memory LRU tier and size-bounded eviction
# ---------------------------------------------------------------------------

def _cache_cell(**overrides):
    defaults = dict(
        benchmark="gzip",
        controller_spec=("throttle", "A5"),
        instructions=_INSTRUCTIONS,
        warmup=_WARMUP,
    )
    defaults.update(overrides)
    return make_cell(**defaults)


@pytest.fixture(scope="module")
def cached_result():
    from repro.experiments.engine import simulate

    return simulate(_cache_cell())


def test_cache_hits_split_by_tier(tmp_path, cached_result):
    cache = ResultCache(str(tmp_path))
    cell = _cache_cell()
    cache.put(cell, cached_result)
    assert cache.get(cell) == cached_result
    assert (cache.memory_hits, cache.disk_hits) == (1, 0), (
        "a put must prime the memory tier"
    )
    # A fresh instance has a cold memory tier: first get is a disk hit
    # (and promotes), the second a memory hit.
    cold = ResultCache(str(tmp_path))
    assert cold.get(cell) == cached_result
    assert (cold.memory_hits, cold.disk_hits) == (0, 1)
    assert cold.get(cell) == cached_result
    assert (cold.memory_hits, cold.disk_hits) == (1, 1)
    assert cold.hits == 2
    stats = cold.stats()
    assert stats["memory_hits"] == 1 and stats["disk_hits"] == 1


def test_cache_memory_tier_returns_fresh_objects(tmp_path, cached_result):
    cache = ResultCache(str(tmp_path))
    cell = _cache_cell()
    cache.put(cell, cached_result)
    first = cache.get(cell)
    first.extra["fetch_throttled_cycles"] = -1  # caller mutates its copy
    second = cache.get(cell)
    assert second == cached_result, "memory-tier hits must not share state"


def test_cache_memory_tier_is_bounded(tmp_path, cached_result):
    cache = ResultCache(str(tmp_path), memory_entries=2)
    cells = [
        _cache_cell(instructions=_INSTRUCTIONS + extra) for extra in range(3)
    ]
    for cell in cells:
        cache.put(cell, cached_result)
    assert cache.memory_evictions == 1
    assert cache.get(cells[0]) == cached_result
    assert cache.disk_hits == 1, "the evicted entry must fall back to disk"
    assert cache.get(cells[2]) == cached_result
    assert cache.memory_hits == 1


def test_cache_prune_by_size_keeps_newest(tmp_path, cached_result):
    import os
    import time

    cache = ResultCache(str(tmp_path))
    cells = [
        _cache_cell(instructions=_INSTRUCTIONS + extra) for extra in range(3)
    ]
    for index, cell in enumerate(cells):
        cache.put(cell, cached_result)
        # Distinct mtimes make the LRU eviction order deterministic.
        entry = sorted(
            cache.entries(), key=lambda path: os.stat(path).st_mtime
        )[-1]
        os.utime(entry, (time.time() - 300 + index, time.time() - 300 + index))
    total = cache.info()["bytes"]
    entry_size = total // 3
    dropped = cache.prune(max_bytes=total - entry_size)
    assert dropped == 1
    assert cache.info()["entries"] == 2
    assert cache.evictions == 1
    # The oldest entry went; the newest survives and (memory tier was
    # invalidated by the prune) comes back from disk.
    assert cache.get(cells[0]) is None
    assert cache.get(cells[2]) == cached_result
    assert cache.disk_hits == 1


def test_cache_prune_requires_a_bound(tmp_path):
    cache = ResultCache(str(tmp_path))
    with pytest.raises(ExperimentError):
        cache.prune()
    assert cache.prune(max_bytes=0) == 0
