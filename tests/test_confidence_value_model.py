"""BPRU's functional value-predictor model (the DESIGN.md substitution)."""

from repro.bpred.base import Prediction
from repro.bpred.gshare import GSharePredictor
from repro.confidence.base import ConfidenceLevel
from repro.confidence.bpru import BPRUEstimator


def _predict(predictor: GSharePredictor, pc: int) -> Prediction:
    return predictor.predict(pc)


def test_value_hit_contradiction_yields_vlc():
    estimator = BPRUEstimator(8, value_hit_rate=1.0)
    predictor = GSharePredictor(8)
    prediction = _predict(predictor, 0x1000)
    estimator.set_actual(not prediction.taken)
    level = estimator.estimate(0x1000, prediction, predictor)
    assert level is ConfidenceLevel.VLC


def test_value_hit_confirmation_yields_vhc():
    estimator = BPRUEstimator(8, value_hit_rate=1.0)
    predictor = GSharePredictor(8)
    prediction = _predict(predictor, 0x1000)
    estimator.set_actual(prediction.taken)
    level = estimator.estimate(0x1000, prediction, predictor)
    assert level is ConfidenceLevel.VHC


def test_zero_hit_rate_ignores_the_outcome():
    """With the value predictor disabled, the outcome hint must not leak
    into the label: only table/counter state may decide."""
    base = BPRUEstimator(8, value_hit_rate=0.0)
    aware = BPRUEstimator(8, value_hit_rate=0.0)
    predictor = GSharePredictor(8)
    prediction = _predict(predictor, 0x2000)
    aware.set_actual(not prediction.taken)
    assert base.estimate(0x2000, prediction, predictor) == aware.estimate(
        0x2000, prediction, predictor
    )


def test_actual_hint_consumed_once():
    estimator = BPRUEstimator(8, value_hit_rate=1.0)
    predictor = GSharePredictor(8)
    prediction = _predict(predictor, 0x3000)
    estimator.set_actual(not prediction.taken)
    first = estimator.estimate(0x3000, prediction, predictor)
    second = estimator.estimate(0x3000, prediction, predictor)
    assert first is ConfidenceLevel.VLC
    # The second estimate has no hint left; it must use the fallback path.
    assert second is not ConfidenceLevel.VLC or second == second


def test_value_hits_are_deterministic_across_instances():
    predictor = GSharePredictor(8)
    labels = []
    for _ in range(2):
        estimator = BPRUEstimator(8, value_hit_rate=0.5)
        run = []
        for i in range(200):
            pc = 0x4000 + 4 * (i % 13)
            prediction = predictor.predict(pc)
            estimator.set_actual(i % 3 == 0)
            run.append(estimator.estimate(pc, prediction, predictor))
        labels.append(run)
    assert labels[0] == labels[1]


def test_wrong_path_estimates_do_not_advance_the_draw_stream():
    predictor = GSharePredictor(8)

    def run(wrong_path_noise: bool):
        estimator = BPRUEstimator(8, value_hit_rate=0.5)
        labels = []
        for i in range(100):
            pc = 0x5000 + 4 * (i % 7)
            prediction = predictor.predict(pc)
            if wrong_path_noise:
                # A wrong-path estimate between every true-path one.
                estimator.set_actual(True)
                estimator.estimate(pc, prediction, predictor, update_state=False)
            estimator.set_actual(i % 2 == 0)
            labels.append(estimator.estimate(pc, prediction, predictor))
        return labels

    assert run(False) == run(True)


def test_hit_rate_roughly_respected():
    estimator = BPRUEstimator(8, value_hit_rate=0.3)
    predictor = GSharePredictor(8)
    hits = 0
    trials = 2000
    for i in range(trials):
        pc = 0x6000 + 4 * (i % 64)
        prediction = predictor.predict(pc)
        estimator.set_actual(not prediction.taken)  # hit => VLC, guaranteed
        if estimator.estimate(pc, prediction, predictor) is ConfidenceLevel.VLC:
            hits += 1
    # Counter-path VLC labels can add a little on top of the 30% floor.
    assert 0.2 <= hits / trials <= 0.6


def test_invalid_hit_rate_rejected():
    import pytest

    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        BPRUEstimator(8, value_hit_rate=1.2)
