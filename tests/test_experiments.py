"""Tests for the experiment runner, comparison metrics and drivers."""

import pytest

from repro.core.gating import PipelineGatingController
from repro.core.oracle import OracleController
from repro.core.throttler import NullController, SelectiveThrottler
from repro.errors import ExperimentError
from repro.experiments.results import ComparisonResult, SimulationResult, compare
from repro.experiments.runner import (
    ExperimentRunner,
    default_instructions,
    default_warmup,
    make_controller,
    run_benchmark,
)


def _result(benchmark="go", label="x", instructions=1000, cycles=1000,
            power=50.0, seconds=1e-6):
    return SimulationResult(
        benchmark=benchmark,
        label=label,
        instructions=instructions,
        cycles=cycles,
        ipc=instructions / cycles,
        average_power_watts=power,
        energy_joules=power * seconds,
        execution_seconds=seconds,
        miss_rate=0.1,
        spec_metric=0.6,
        pvn_metric=0.4,
        wrong_path_fetch_fraction=0.5,
        wasted_energy_fraction=0.2,
    )


# --- compare() ---------------------------------------------------------------

def test_compare_identical_runs_is_neutral():
    comparison = compare(_result(), _result(label="same"))
    assert comparison.speedup == pytest.approx(1.0)
    assert comparison.power_savings_pct == pytest.approx(0.0)
    assert comparison.energy_savings_pct == pytest.approx(0.0)
    assert comparison.ed_improvement_pct == pytest.approx(0.0)


def test_compare_savings_signs():
    baseline = _result()
    cheaper_slower = _result(label="t", power=40.0, seconds=1.1e-6)
    comparison = compare(baseline, cheaper_slower)
    assert comparison.speedup < 1.0
    assert comparison.slowdown_pct == pytest.approx((1 - comparison.speedup) * 100)
    assert comparison.power_savings_pct == pytest.approx(20.0)
    # energy = power x time: 40*1.1 vs 50*1.0 -> 12% savings
    assert comparison.energy_savings_pct == pytest.approx(12.0)
    # E-D = energy x time: 44*1.1 vs 50*1.0 -> 3.2% improvement
    assert comparison.ed_improvement_pct == pytest.approx(3.2)


def test_compare_rejects_different_benchmarks():
    with pytest.raises(ExperimentError):
        compare(_result(benchmark="go"), _result(benchmark="gcc"))


def test_compare_tolerates_commit_width_jitter():
    comparison = compare(_result(instructions=1000), _result(instructions=1004))
    assert isinstance(comparison, ComparisonResult)


def test_compare_rejects_big_length_mismatch():
    with pytest.raises(ExperimentError):
        compare(_result(instructions=1000), _result(instructions=1500))


# --- make_controller ---------------------------------------------------------

def test_make_controller_kinds():
    assert isinstance(make_controller(("baseline",)), NullController)
    assert isinstance(make_controller(("throttle", "C2")), SelectiveThrottler)
    gating = make_controller(("gating", 3))
    assert isinstance(gating, PipelineGatingController)
    assert gating.gating_threshold == 3
    assert isinstance(make_controller(("oracle", "fetch")), OracleController)


def test_make_controller_rejects_gating_experiment_as_throttle():
    with pytest.raises(ExperimentError):
        make_controller(("throttle", "A7"))


def test_make_controller_rejects_unknown():
    with pytest.raises(ExperimentError):
        make_controller(("magic",))


# --- runner ------------------------------------------------------------------

def test_defaults_read_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_INSTRUCTIONS", "1234")
    monkeypatch.setenv("REPRO_SIM_WARMUP", "99")
    assert default_instructions() == 1234
    assert default_warmup() == 99


def test_run_benchmark_produces_result():
    result = run_benchmark("gzip", instructions=2000, warmup=500)
    assert result.benchmark == "gzip"
    assert result.instructions >= 2000
    assert result.average_power_watts > 0
    assert result.energy_joules > 0
    assert 0 < result.ipc < 8
    assert result.energy_delay == pytest.approx(
        result.energy_joules * result.execution_seconds
    )


def test_runner_caches_baseline():
    runner = ExperimentRunner(instructions=1500, warmup=300)
    first = runner.baseline("gzip")
    second = runner.baseline("gzip")
    assert first is second


def test_runner_distinguishes_controllers():
    runner = ExperimentRunner(instructions=1500, warmup=300)
    baseline = runner.baseline("gzip")
    throttled = runner.run("gzip", ("throttle", "A6"))
    assert baseline is not throttled
    assert throttled.label == "A6"


def test_runner_selects_estimator_per_mechanism():
    runner = ExperimentRunner(instructions=1200, warmup=200)
    gating = runner.run("gzip", ("gating", 2))
    assert gating.label.startswith("gating")
    oracle = runner.run("gzip", ("oracle", "fetch"))
    assert oracle.label == "oracle-fetch"
    assert oracle.wasted_energy_fraction == pytest.approx(0.0, abs=1e-9)
