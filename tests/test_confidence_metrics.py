"""Tests for SPEC/PVN confidence quality metrics."""

from repro.confidence.base import ConfidenceLevel
from repro.confidence.metrics import ConfidenceMatrix
from repro.confidence.perfect import PerfectEstimator
from repro.bpred.base import Prediction
from repro.bpred.gshare import GSharePredictor


def test_empty_matrix_is_zero():
    matrix = ConfidenceMatrix()
    assert matrix.total == 0
    assert matrix.spec() == 0.0
    assert matrix.pvn() == 0.0


def test_spec_counts_caught_mispredictions():
    matrix = ConfidenceMatrix()
    # 4 mispredictions: 3 labelled low, 1 labelled high.
    for _ in range(3):
        matrix.record(ConfidenceLevel.LC, correct=False)
    matrix.record(ConfidenceLevel.HC, correct=False)
    matrix.record(ConfidenceLevel.HC, correct=True)
    assert matrix.mispredictions == 4
    assert matrix.spec() == 0.75


def test_pvn_counts_justified_low_labels():
    matrix = ConfidenceMatrix()
    # 4 low labels: 1 mispredicts.
    matrix.record(ConfidenceLevel.LC, correct=False)
    for _ in range(3):
        matrix.record(ConfidenceLevel.VLC, correct=True)
    assert matrix.low_confidence_total() == 4
    assert matrix.pvn() == 0.25


def test_vlc_counts_as_low_confidence():
    matrix = ConfidenceMatrix()
    matrix.record(ConfidenceLevel.VLC, correct=False)
    assert matrix.spec() == 1.0
    assert matrix.pvn() == 1.0


def test_level_fractions_sum_to_one():
    matrix = ConfidenceMatrix()
    for level in ConfidenceLevel:
        matrix.record(level, correct=True)
    total = sum(matrix.level_fraction(level) for level in ConfidenceLevel)
    assert abs(total - 1.0) < 1e-12


def test_as_dict_keys():
    matrix = ConfidenceMatrix()
    matrix.record(ConfidenceLevel.HC, correct=True)
    summary = matrix.as_dict()
    assert {"total", "mispredictions", "spec", "pvn"} <= set(summary)


def test_perfect_estimator_is_perfect():
    estimator = PerfectEstimator()
    predictor = GSharePredictor(1)
    matrix = ConfidenceMatrix()
    outcomes = [True, False, True, True, False]
    for actual in outcomes:
        prediction = Prediction(True, 0)
        estimator.set_actual(actual)
        level = estimator.estimate(0x100, prediction, predictor)
        matrix.record(level, correct=(prediction.taken == actual))
    assert matrix.spec() == 1.0
    assert matrix.pvn() == 1.0


def test_perfect_estimator_without_hint_is_neutral():
    estimator = PerfectEstimator()
    predictor = GSharePredictor(1)
    level = estimator.estimate(0x100, Prediction(True, 0), predictor)
    assert level is ConfidenceLevel.HC


def test_confidence_level_ordering_and_is_low():
    assert ConfidenceLevel.VHC < ConfidenceLevel.HC < ConfidenceLevel.LC < ConfidenceLevel.VLC
    assert not ConfidenceLevel.VHC.is_low
    assert not ConfidenceLevel.HC.is_low
    assert ConfidenceLevel.LC.is_low
    assert ConfidenceLevel.VLC.is_low
