"""Perceptron predictor (Jiménez & Lin 2001)."""

import pytest

from repro.bpred.perceptron import PerceptronPredictor
from repro.errors import ConfigurationError


def _train_pattern(predictor, pc, outcomes, rounds=50):
    for _ in range(rounds):
        for taken in outcomes:
            prediction = predictor.predict(pc)
            if prediction.taken != taken:
                predictor.restore(prediction.snapshot, taken)
            predictor.train(pc, taken, prediction.snapshot)


def test_learns_an_always_taken_branch():
    predictor = PerceptronPredictor(8)
    _train_pattern(predictor, 0x1000, [True])
    assert predictor.predict(0x1000).taken


def test_learns_an_always_not_taken_branch():
    predictor = PerceptronPredictor(8)
    _train_pattern(predictor, 0x1000, [False])
    assert not predictor.predict(0x1000).taken


def test_learns_an_alternating_pattern():
    """T/NT alternation is linearly separable on one history bit."""
    predictor = PerceptronPredictor(8, history_bits=8)
    pc = 0x2000
    _train_pattern(predictor, pc, [True, False], rounds=200)
    hits = 0
    expected = True
    for _ in range(40):
        prediction = predictor.predict(pc)
        hits += prediction.taken == expected
        predictor.train(pc, expected, prediction.snapshot)
        expected = not expected
    assert hits >= 36


def test_weights_stay_clipped():
    predictor = PerceptronPredictor(1, history_bits=4)
    _train_pattern(predictor, 0x3000, [True], rounds=2000)
    for row in predictor.table:
        for weight in row:
            assert -predictor.weight_max - 1 <= weight <= predictor.weight_max


def test_history_restore_after_misprediction():
    predictor = PerceptronPredictor(8, history_bits=8)
    predictor.history = 0b1010
    prediction = predictor.predict(0x4000)
    # Speculative shift happened; repair with the opposite outcome.
    predictor.restore(prediction.snapshot, not prediction.taken)
    assert predictor.history & 1 == int(not prediction.taken)
    assert predictor.history >> 1 == 0b1010


def test_snapshot_carries_output_for_confidence():
    predictor = PerceptronPredictor(8)
    prediction = predictor.predict(0x5000)
    history, output = prediction.snapshot
    assert isinstance(output, int)
    assert predictor.output_magnitude(prediction.snapshot) == abs(output)


def test_counter_strength_weak_near_zero_output():
    predictor = PerceptronPredictor(8)
    # Untrained: output 0 -> weak taken.
    prediction = predictor.predict(0x6000)
    assert predictor.counter_strength(0x6000, prediction.snapshot) in (1, 2)
    _train_pattern(predictor, 0x6000, [True], rounds=200)
    prediction = predictor.predict(0x6000)
    assert predictor.counter_strength(0x6000, prediction.snapshot) == 3


def test_theta_follows_published_heuristic():
    predictor = PerceptronPredictor(8, history_bits=24)
    assert predictor.theta == int(1.93 * 24 + 14)


def test_storage_accounting():
    predictor = PerceptronPredictor(8, history_bits=24)
    assert predictor.storage_bits() == predictor.rows * 25 * 8
    assert predictor.storage_bits() <= 8 * 1024 * 8


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        PerceptronPredictor(0)
    with pytest.raises(ConfigurationError):
        PerceptronPredictor(8, history_bits=0)


def test_distinct_branches_learn_opposite_biases():
    """Two interleaved branches with opposite behaviours are separable
    because they hash to distinct weight rows."""
    predictor = PerceptronPredictor(8)
    for _ in range(300):
        for pc, taken in ((0x7000, True), (0x7004, False)):
            prediction = predictor.predict(pc)
            if prediction.taken != taken:
                predictor.restore(prediction.snapshot, taken)
            predictor.train(pc, taken, prediction.snapshot)
    hits = 0
    for _ in range(20):
        for pc, taken in ((0x7000, True), (0x7004, False)):
            prediction = predictor.predict(pc)
            hits += prediction.taken == taken
            predictor.train(pc, taken, prediction.snapshot)
    assert hits >= 36  # >= 90% on a trivially separable pair
