"""The batched sweep scheduler: affinity, streaming, determinism, dedup.

The scaling contracts the study layer rests on:

* batches preserve (benchmark, seed) affinity so the per-process program
  memo hits;
* results stream back in submission order and a parallel/batched run is
  byte-identical to a serial one, whatever the jobs count or batch size;
* identical cells in one call simulate once; cache hits simulate zero.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.engine import ResultCache, make_cell
from repro.experiments.scheduler import (
    SweepScheduler,
    affinity_key,
    plan_batches,
    shared_pool,
    shutdown_shared_pool,
)

_INSTRUCTIONS = 900
_WARMUP = 200


def _cell(benchmark="gzip", spec=("baseline",), seed=None, label=None):
    return make_cell(
        benchmark, spec, instructions=_INSTRUCTIONS, warmup=_WARMUP,
        seed=seed, label=label,
    )


def _grid():
    """A small mixed grid: 2 programs x 3 mechanisms, interleaved."""
    cells = []
    for spec in (("baseline",), ("throttle", "A5"), ("gating", 2)):
        for benchmark in ("gzip", "go"):
            cells.append(_cell(benchmark, spec))
    return cells


# --- batch planning ----------------------------------------------------------

def test_affinity_key_groups_same_program():
    assert affinity_key(_cell()) == affinity_key(_cell(spec=("throttle", "A5")))
    assert affinity_key(_cell()) != affinity_key(_cell(benchmark="go"))
    assert affinity_key(_cell()) != affinity_key(_cell(seed=7))


def test_plan_batches_keeps_affinity_groups_together():
    pending = list(enumerate(_grid()))
    batches = plan_batches(pending, jobs=2)
    for batch in batches:
        # Within a batch, same-program cells are adjacent (a worker
        # builds each program at most once per batch): run-length
        # compressing the key sequence leaves no repeated keys.
        keys = [affinity_key(cell) for _, cell in batch]
        compressed = [
            key for at, key in enumerate(keys)
            if at == 0 or keys[at - 1] != key
        ]
        assert len(compressed) == len(set(compressed))
    # Every cell is planned exactly once.
    planned = sorted(index for batch in batches for index, _ in batch)
    assert planned == list(range(len(pending)))


def test_plan_batches_honours_explicit_batch_size():
    pending = list(enumerate(_grid()))
    batches = plan_batches(pending, jobs=2, batch_cells=2)
    assert all(len(batch) <= 2 for batch in batches)
    planned = sorted(index for batch in batches for index, _ in batch)
    assert planned == list(range(len(pending)))


def test_plan_batches_splits_oversized_groups():
    pending = list(enumerate([_cell() for _ in range(5)]))
    batches = plan_batches(pending, jobs=2, batch_cells=2)
    assert [len(batch) for batch in batches] == [2, 2, 1]


def test_plan_batches_empty():
    assert plan_batches([], jobs=4) == []


# --- determinism across jobs and batch sizes ---------------------------------

@pytest.fixture(scope="module")
def serial_results():
    return SweepScheduler().run(_grid())


@pytest.mark.parametrize("jobs,batch_cells", [
    (1, 1), (1, 2), (2, None), (2, 1), (3, 2),
])
def test_batched_equals_serial(serial_results, jobs, batch_cells):
    scheduler = SweepScheduler(jobs=jobs, batch_cells=batch_cells)
    assert scheduler.run(_grid()) == serial_results


def test_stream_yields_submission_order(serial_results):
    scheduler = SweepScheduler(jobs=2, batch_cells=1)
    seen = list(scheduler.stream(_grid()))
    assert [index for index, _ in seen] == list(range(len(serial_results)))
    assert [result for _, result in seen] == serial_results


# --- dedup and cache ---------------------------------------------------------

def test_duplicate_cells_simulate_once_with_labels_preserved():
    scheduler = SweepScheduler()
    cells = [_cell(), _cell(label="copy"), _cell()]
    results = scheduler.run(cells)
    assert scheduler.executed == 1
    assert results[0] == results[2]
    assert results[1].label == "copy"
    from dataclasses import replace

    assert replace(results[1], label=results[0].label) == results[0]


def test_cache_hits_simulate_nothing(tmp_path, serial_results):
    cold = SweepScheduler(cache=ResultCache(str(tmp_path)))
    first = cold.run(_grid())
    assert first == serial_results
    assert cold.executed == len(serial_results)

    warm = SweepScheduler(jobs=2, cache=ResultCache(str(tmp_path)))
    second = warm.run(_grid())
    assert second == serial_results
    assert warm.executed == 0
    assert warm.batches_dispatched == 0


def test_cache_stats_report_per_tier_hit_rates(tmp_path):
    cache = ResultCache(str(tmp_path))
    stats = cache.stats()
    # Cold cache: every rate must be a well-defined zero, not a division
    # by a zero denominator.
    assert stats["hit_rate"] == 0.0
    assert stats["memory_hit_rate"] == 0.0
    assert stats["disk_hit_rate"] == 0.0

    cold = SweepScheduler(cache=cache)
    cold.run(_grid())
    # Same process: the second sweep hits the in-memory tier for every
    # cell, so the memory rate climbs while disk stays untouched.
    warm = SweepScheduler(cache=cache)
    warm.run(_grid())
    stats = cache.stats()
    assert stats["memory_hits"] > 0
    assert stats["memory_hit_rate"] == stats["memory_hits"] / (
        stats["hits"] + stats["misses"]
    )
    assert stats["disk_hits"] == 0 and stats["disk_hit_rate"] == 0.0

    # A fresh ResultCache over the same directory has an empty memory
    # tier, so the same grid now hits disk: the disk rate is conditional
    # on the memory tier missing and must come out at 100%.
    disk_cache = ResultCache(str(tmp_path))
    disk = SweepScheduler(cache=disk_cache)
    disk.run(_grid())
    stats = disk_cache.stats()
    assert stats["disk_hits"] >= len(_grid())
    accesses = stats["hits"] + stats["misses"]
    disk_accesses = accesses - stats["memory_hits"]
    assert stats["disk_hit_rate"] == stats["disk_hits"] / disk_accesses


def test_cache_info_formats_tier_hit_rates(tmp_path, capsys):
    from repro import cli

    cache = ResultCache(str(tmp_path))
    warm = SweepScheduler(cache=cache)
    warm.run(_grid())
    warm.run(_grid())
    cache.flush_stats()
    assert cli.main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    line = next(l for l in out.splitlines() if l.strip().startswith("hit rate"))
    assert "memory" in line and "disk" in line and line.count("%") == 3


def test_scheduler_rejects_zero_jobs():
    with pytest.raises(ExperimentError):
        SweepScheduler(jobs=0)


# --- the shared pool ---------------------------------------------------------

def test_shared_pool_is_reused_for_same_worker_count():
    try:
        first = shared_pool(2)
        assert shared_pool(2) is first
        assert shared_pool(3) is not first  # resized => replaced
    finally:
        shutdown_shared_pool()


def test_scheduler_counts_batches():
    scheduler = SweepScheduler(batch_cells=2)
    scheduler.run(_grid())
    # 2 affinity groups of 3 cells at batch size 2: [2]+[1] per group.
    assert scheduler.batches_dispatched == 4
