"""Integration tests for the full processor pipeline."""

import pytest

from repro.core.gating import PipelineGatingController
from repro.core.oracle import OracleController, OracleMode
from repro.core.policy import experiment_policy
from repro.core.throttler import SelectiveThrottler
from repro.errors import SimulationError
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor, build_estimator, build_predictor
from repro.program.generator import ProgramGenerator

from dataclasses import replace

from tests.conftest import run_small, small_shape


def _program():
    return ProgramGenerator(small_shape(), seed=42, name="testprog").generate()


def test_baseline_run_commits_requested_instructions(fresh_program):
    processor = run_small(fresh_program, instructions=3000)
    assert processor.stats.committed >= 3000
    assert processor.stats.cycles > 0
    assert 0.1 < processor.stats.ipc <= 8.0


def test_run_rejects_nonpositive_instructions(fresh_program):
    processor = Processor(table3_config(), fresh_program, seed=42)
    with pytest.raises(SimulationError):
        processor.run(0)


def test_determinism_across_runs():
    a = run_small(_program(), instructions=3000)
    b = run_small(_program(), instructions=3000)
    assert a.stats.cycles == b.stats.cycles
    assert a.stats.committed == b.stats.committed
    assert a.stats.mispredictions_committed == b.stats.mispredictions_committed
    assert a.power.total_energy() == pytest.approx(b.power.total_energy())


def test_wrong_path_instructions_are_fetched_and_squashed(fresh_program):
    processor = run_small(fresh_program, instructions=4000)
    stats = processor.stats
    assert stats.mispredictions_committed > 0
    assert stats.fetched_wrong_path > 0
    assert stats.squashed > 0
    # wrong-path work never commits
    assert stats.committed + stats.squashed <= stats.fetched + 1


def test_wrong_path_energy_is_attributed(fresh_program):
    processor = run_small(fresh_program, instructions=4000)
    wasted = processor.power.total_wasted_energy()
    total = processor.power.total_energy()
    assert 0.0 < wasted < total * 0.8


def test_branch_stats_consistency(fresh_program):
    processor = run_small(fresh_program, instructions=4000)
    stats = processor.stats
    assert stats.cond_branches_committed > 0
    assert 0 <= stats.mispredictions_committed <= stats.cond_branches_committed
    assert 0.0 <= stats.branch_miss_rate < 1.0


def test_commit_order_is_program_order(fresh_program):
    """Committed true-path indices must be strictly increasing."""
    processor = Processor(table3_config(), fresh_program, seed=42)
    seen = []
    commit_stage = processor.scheduler.commit
    original_tick = commit_stage.tick

    def spying_tick(cycle, activity):
        head = processor.rob.head()
        if head is not None and head.completed and head.true_index >= 0:
            seen.append(head.true_index)
        original_tick(cycle, activity)

    commit_stage.tick = spying_tick
    processor.run(2000)
    # The spy must actually have run: replacing a stage's tick on the
    # scheduler is a documented extension point.
    assert seen
    assert seen == sorted(seen)


def test_reset_measurement_keeps_state(fresh_program):
    processor = Processor(table3_config(), fresh_program, seed=42)
    processor.run(2000)
    misses_before = processor.memory.icache.stats.misses
    processor.reset_measurement()
    assert processor.stats.committed == 0
    assert processor.power.total_energy() == 0.0
    processor.run(1000)
    # warm icache: far fewer cold misses in the second window
    assert processor.memory.icache.stats.misses < misses_before


def test_warmup_window_discards_statistics(fresh_program):
    processor = Processor(table3_config(), fresh_program, seed=42)
    stats = processor.run(2000, warmup_instructions=1000)
    assert 2000 <= stats.committed < 2000 + 8


def test_selective_throttler_reduces_energy(fresh_program):
    baseline = run_small(_program(), instructions=5000)
    throttled = run_small(
        _program(),
        controller=SelectiveThrottler(experiment_policy("A6")),
        instructions=5000,
    )
    assert throttled.stats.fetch_throttled_cycles > 0
    base_epi = baseline.power.total_energy() / baseline.stats.committed
    thr_epi = throttled.power.total_energy() / throttled.stats.committed
    assert thr_epi < base_epi


def test_pipeline_gating_runs_and_gates(fresh_program):
    controller = PipelineGatingController(1)
    config = replace(table3_config(), confidence_kind="jrs")
    processor = Processor(config, fresh_program, controller=controller, seed=42)
    processor.run(5000)
    assert controller.gated_cycles > 0
    assert processor.stats.committed >= 5000


def test_oracle_fetch_eliminates_wrong_path(fresh_program):
    config = replace(table3_config(), confidence_kind="perfect")
    processor = Processor(
        config, fresh_program,
        controller=OracleController(OracleMode.FETCH), seed=42,
    )
    processor.run(4000)
    assert processor.stats.mispredictions_committed > 0
    assert processor.stats.fetched_wrong_path == 0
    assert processor.power.total_wasted_energy() == pytest.approx(0.0)


def test_oracle_decode_fetches_but_never_decodes_wrong_path(fresh_program):
    config = replace(table3_config(), confidence_kind="perfect")
    processor = Processor(
        config, fresh_program,
        controller=OracleController(OracleMode.DECODE), seed=42,
    )
    processor.run(4000)
    stats = processor.stats
    assert stats.fetched_wrong_path > 0
    # wrong-path work is cheaper than in the baseline: it dies before rename
    baseline = run_small(_program(), instructions=4000)
    assert stats.issued_wrong_path == 0
    assert baseline.stats.issued_wrong_path > 0


def test_oracle_select_issues_no_wrong_path(fresh_program):
    config = replace(table3_config(), confidence_kind="perfect")
    processor = Processor(
        config, fresh_program,
        controller=OracleController(OracleMode.SELECT), seed=42,
    )
    processor.run(4000)
    assert processor.stats.fetched_wrong_path > 0
    assert processor.stats.issued_wrong_path == 0


def test_oracle_energy_ordering(fresh_program):
    """Fetch oracle saves the most, then decode, then select (paper Fig. 1)."""
    energies = {}
    for mode in OracleMode:
        config = replace(table3_config(), confidence_kind="perfect")
        processor = Processor(
            config, _program(), controller=OracleController(mode), seed=42,
        )
        processor.run(5000)
        energies[mode] = processor.power.total_energy() / processor.stats.committed
    assert energies[OracleMode.FETCH] <= energies[OracleMode.DECODE]
    assert energies[OracleMode.DECODE] <= energies[OracleMode.SELECT]


def test_deeper_pipeline_longer_misprediction_penalty():
    shallow = run_small(_program(), instructions=4000,
                        config=table3_config().with_depth(6))
    deep = run_small(_program(), instructions=4000,
                     config=table3_config().with_depth(28))
    assert deep.stats.ipc < shallow.stats.ipc


def test_build_predictor_kinds():
    for kind in ("gshare", "bimodal", "local2level", "hybrid", "static"):
        config = replace(table3_config(), bpred_kind=kind)
        assert build_predictor(config) is not None


def test_build_estimator_kinds():
    for kind, expected_none in (("bpru", False), ("jrs", False),
                                ("perfect", False), ("none", True)):
        config = replace(table3_config(), confidence_kind=kind)
        estimator = build_estimator(config)
        assert (estimator is None) == expected_none


def test_rob_never_holds_squashed(fresh_program):
    processor = Processor(table3_config(), fresh_program, seed=42)
    for _ in range(3000):
        processor.step()
        assert all(not instr.squashed for instr in processor.rob)


def test_power_activity_is_recorded(fresh_program):
    processor = run_small(fresh_program, instructions=3000)
    breakdown = processor.power.breakdown()
    for unit in ("icache", "window", "clock", "alu"):
        assert breakdown[unit]["share"] > 0.0
