"""Tests for the deterministic RNG streams."""

import pytest

from repro.utils.rng import (
    XorShiftRNG,
    derive_seed,
    derive_thread_seed,
    stateless_hash,
)


def test_derive_thread_seed_deterministic():
    assert derive_thread_seed(2003, 0) == derive_thread_seed(2003, 0)
    assert derive_thread_seed(2003, 3) == derive_thread_seed(2003, 3)


def test_derive_thread_seed_separates_threads_and_bases():
    seeds = {derive_thread_seed(2003, tid) for tid in range(64)}
    assert len(seeds) == 64
    assert derive_thread_seed(2003, 0) != derive_thread_seed(2004, 0)
    # Adjacent bases and thread ids never cross over.
    assert derive_thread_seed(2003, 1) != derive_thread_seed(2004, 0)


def test_derive_thread_seed_is_domain_separated():
    # A thread seed must not collide with a plain integer-label derivation
    # of the same values (splitmix domain separation via the label).
    assert derive_thread_seed(7, 1) != derive_seed(7, 1)


def test_derive_thread_seed_is_a_valid_xorshift_seed():
    for tid in range(8):
        seed = derive_thread_seed(0, tid)
        assert seed != 0
        rng = XorShiftRNG(seed)
        assert 0.0 <= rng.random() < 1.0


def test_derive_thread_seed_rejects_negative_ids():
    with pytest.raises(ValueError):
        derive_thread_seed(1, -1)


def test_same_seed_same_stream():
    a = XorShiftRNG(123)
    b = XorShiftRNG(123)
    assert [a.next_u64() for _ in range(100)] == [b.next_u64() for _ in range(100)]


def test_different_seeds_different_streams():
    a = XorShiftRNG(123)
    b = XorShiftRNG(124)
    assert [a.next_u64() for _ in range(10)] != [b.next_u64() for _ in range(10)]


def test_random_in_unit_interval():
    rng = XorShiftRNG(7)
    for _ in range(1000):
        value = rng.random()
        assert 0.0 <= value < 1.0


def test_random_is_roughly_uniform():
    rng = XorShiftRNG(7)
    mean = sum(rng.random() for _ in range(20_000)) / 20_000
    assert abs(mean - 0.5) < 0.02


def test_randint_bounds_inclusive():
    rng = XorShiftRNG(9)
    values = {rng.randint(3, 5) for _ in range(200)}
    assert values == {3, 4, 5}


def test_randint_single_value():
    rng = XorShiftRNG(9)
    assert rng.randint(4, 4) == 4


def test_randint_empty_range_raises():
    rng = XorShiftRNG(9)
    with pytest.raises(ValueError):
        rng.randint(5, 4)


def test_choice_and_empty_choice():
    rng = XorShiftRNG(1)
    assert rng.choice([10]) == 10
    with pytest.raises(ValueError):
        rng.choice([])


def test_chance_extremes():
    rng = XorShiftRNG(1)
    assert not any(rng.chance(0.0) for _ in range(100))
    assert all(rng.chance(1.0) for _ in range(100))


def test_weighted_choice_respects_zero_weight():
    rng = XorShiftRNG(5)
    picks = {rng.weighted_choice(("a", "b"), (1.0, 0.0)) for _ in range(100)}
    assert picks == {"a"}


def test_weighted_choice_distribution():
    rng = XorShiftRNG(5)
    counts = {"a": 0, "b": 0}
    for _ in range(10_000):
        counts[rng.weighted_choice(("a", "b"), (3.0, 1.0))] += 1
    ratio = counts["a"] / counts["b"]
    assert 2.5 < ratio < 3.6


def test_weighted_choice_validation():
    rng = XorShiftRNG(5)
    with pytest.raises(ValueError):
        rng.weighted_choice(("a",), (1.0, 2.0))
    with pytest.raises(ValueError):
        rng.weighted_choice(("a", "b"), (0.0, 0.0))


def test_shuffle_is_permutation():
    rng = XorShiftRNG(11)
    items = list(range(50))
    shuffled = items.copy()
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_state_roundtrip():
    rng = XorShiftRNG(77)
    rng.next_u64()
    state = rng.getstate()
    first = [rng.next_u64() for _ in range(5)]
    rng.setstate(state)
    assert [rng.next_u64() for _ in range(5)] == first


def test_setstate_rejects_invalid():
    rng = XorShiftRNG(77)
    with pytest.raises(ValueError):
        rng.setstate(0)


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")
    assert derive_seed(1) != 0


def test_stateless_hash_pure_and_sensitive():
    assert stateless_hash(1, 2, 3) == stateless_hash(1, 2, 3)
    assert stateless_hash(1, 2, 3) != stateless_hash(1, 2, 4)
    assert stateless_hash(1, 2, 3) != stateless_hash(2, 2, 3)
