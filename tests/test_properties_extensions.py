"""Property-based tests for the newer mechanisms (hypothesis)."""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpred.gshare import GSharePredictor
from repro.confidence.base import ConfidenceLevel
from repro.confidence.bpru import BPRUEstimator
from repro.core.levels import BandwidthLevel
from repro.core.policy import ThrottleAction, ThrottlePolicy
from repro.core.throttler import SelectiveThrottler
from repro.isa.opcodes import Opcode, OpClass
from repro.isa.instruction import DynamicInstruction, StaticInstruction
from repro.pipeline.config import table3_config
from repro.pipeline.resources import FunctionalUnitPool
from repro.program.walker import WrongPathNavigator
from repro.program.generator import ProgramGenerator, ProgramShape
from repro.report.ascii import bar_chart


@given(
    holds=st.lists(st.integers(min_value=1, max_value=200), max_size=30),
    probe=st.integers(min_value=0, max_value=300),
)
def test_mshr_busy_count_never_exceeds_outstanding(holds, probe):
    pool = FunctionalUnitPool(replace(table3_config(), mshr_count=8))
    for release in holds:
        pool.hold_mshr(release)
    pool.new_cycle(probe)
    outstanding = sum(1 for release in holds if release > probe)
    assert pool.mshr_busy_count == outstanding


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.booleans()),
        min_size=1,
        max_size=120,
    )
)
def test_throttler_aggregate_is_max_of_armed(events):
    """Under escalate-only, the effective fetch level always equals the
    maximum over the currently armed actions."""
    policy = ThrottlePolicy(
        "prop",
        lc=ThrottleAction(fetch=BandwidthLevel.QUARTER),
        vlc=ThrottleAction(fetch=BandwidthLevel.STALL),
        hc=ThrottleAction(fetch=BandwidthLevel.HALF),
    )
    throttler = SelectiveThrottler(policy)
    armed = {}
    for seq, (level_index, release) in enumerate(events):
        level = ConfidenceLevel(level_index)
        branch = DynamicInstruction(
            seq, StaticInstruction(seq * 4, Opcode.BR_COND, sources=(1,))
        )
        if release and armed:
            victim_seq, victim = armed.popitem()
            throttler.on_branch_resolved(victim)
        else:
            throttler.on_branch_fetched(branch, level)
            if not policy.action_for(level).is_null:
                armed[seq] = branch
        expected = BandwidthLevel.FULL
        for branch_seq in armed:
            action = policy.action_for(
                ConfidenceLevel(events[branch_seq][0])
            )
            if action.fetch > expected:
                expected = action.fetch
        for cycle in range(4):
            assert throttler.fetch_allowed(cycle) == expected.active(cycle)


@given(st.integers(min_value=0, max_value=2**31), st.integers(0, 10_000))
def test_wrong_path_addresses_word_aligned_and_in_region(seed, step):
    shape = ProgramShape(num_functions=2)
    program = ProgramGenerator(shape, 3).generate()
    navigator = WrongPathNavigator(program, seed)
    static = None
    for block in program.blocks:
        for instr in block.instructions:
            if instr.op_class in (OpClass.MEM_READ, OpClass.MEM_WRITE):
                static = instr
                break
        if static:
            break
    if static is None:
        return
    address = navigator._wrong_data_address(static, step)
    region_base = 0x1000_0000 + static.mem_region * 0x10_0000
    assert address % 4 == 0
    assert region_base <= address < region_base + 0x10_0000


@given(
    st.dictionaries(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=8,
        ),
        st.floats(
            min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
        ),
        min_size=1,
        max_size=12,
    )
)
def test_bar_chart_always_renders_every_row(rows):
    text = bar_chart(rows)
    assert len(text.splitlines()) == len(rows)


@settings(deadline=None, max_examples=25)
@given(
    hit_rate=st.floats(min_value=0.0, max_value=1.0),
    outcomes=st.lists(st.booleans(), min_size=1, max_size=60),
)
def test_bpru_value_hits_never_mislabel(hit_rate, outcomes):
    """A value hit labels VLC only when the prediction is actually wrong
    and VHC only when it is right — hits are oracle-exact by definition."""
    estimator = BPRUEstimator(8, value_hit_rate=hit_rate)
    predictor = GSharePredictor(8)
    for index, actual in enumerate(outcomes):
        pc = 0x8000 + 4 * (index % 17)
        prediction = predictor.predict(pc)
        estimator.set_actual(actual)
        level = estimator.estimate(pc, prediction, predictor)
        if level is ConfidenceLevel.VLC and hit_rate == 1.0:
            assert prediction.taken != actual
        if level is ConfidenceLevel.VHC and hit_rate == 1.0:
            assert prediction.taken == actual
        predictor.train(pc, actual, prediction.snapshot)
        estimator.train(pc, prediction.taken == actual, prediction.snapshot,
                        taken=actual)
