"""Byte-identical parity of every refactored experiment driver.

The study-layer refactor rewired all seven drivers (figures, tables,
ablations, policy search, campaign, runner, SMT report) through
``StudySpec`` + ``SweepScheduler``.  These tests pin each driver's
*formatted output* against goldens captured on the pre-refactor code, so
any behavioural drift — a different cell enumerated, a different seed
convention, a float formatted through a different path — fails loudly.

The goldens live in ``tests/goldens/study_goldens.json``.  Re-pin (only
when an intentional simulator change ships) with::

    PYTHONPATH=src python tests/test_study_parity.py --pin
"""

from __future__ import annotations

import json
import os
import sys

import pytest

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "goldens", "study_goldens.json"
)

# Small but non-trivial run lengths: long enough that throttling fires and
# every formatted digit is exercised, short enough for the tier-1 suite.
_INSTR = 1_500
_WARMUP = 400
_BENCHMARKS = ("go", "gzip")


def _generate() -> dict:
    """Render every driver's formatted output at parity scale.

    Written purely against the public driver APIs, so the same code runs
    on the pre-refactor tree (to pin) and the post-refactor tree (to
    verify).
    """
    from repro.experiments import ablations as abl
    from repro.experiments import figures as fig
    from repro.experiments import tables as tab
    from repro.experiments.campaign import format_campaign, run_campaign
    from repro.experiments.engine import (
        build_engine,
        make_smt_cell,
        result_to_dict,
        smt_baseline_cells,
    )
    from repro.experiments.policy_search import (
        enumerate_policies,
        format_points,
        search_policies,
    )
    from repro.experiments.runner import ExperimentRunner, run_benchmark
    from repro.report.smt import format_smt_report

    out = {}
    runner = ExperimentRunner(instructions=_INSTR, warmup=_WARMUP)

    # --- figures -----------------------------------------------------------
    for name, driver in (
        ("figure1", fig.figure1),
        ("figure3", fig.figure3),
        ("figure4", fig.figure4),
        ("figure5", fig.figure5),
    ):
        out[name] = fig.format_figure(driver(runner, benchmarks=_BENCHMARKS))
    out["figure6"] = fig.format_sweep(
        "figure6 (C2)",
        fig.figure6(depths=(6, 14), instructions=1_200, benchmarks=("gzip",)),
        "depth",
    )
    out["figure7"] = fig.format_sweep(
        "figure7 (C2)",
        fig.figure7(total_sizes_kb=(8, 32), instructions=1_200, benchmarks=("gzip",)),
        "total KB",
    )

    # --- tables ------------------------------------------------------------
    out["table1"] = tab.format_table1(tab.table1(runner))

    # --- ablations ---------------------------------------------------------
    out["estimator-swap"] = fig.format_figure(
        abl.estimator_swap(runner, benchmarks=("go",))
    )
    out["escalation-rule"] = fig.format_figure(
        abl.escalation_rule(runner, benchmarks=("go",))
    )
    out["gating-threshold"] = fig.format_figure(
        abl.gating_threshold_sweep(runner, thresholds=(1, 3), benchmarks=("go",))
    )
    out["clock-gating"] = json.dumps(
        abl.clock_gating_styles(1_200, 300, benchmarks=("gzip",)),
        sort_keys=True, indent=1,
    )
    out["mshr"] = json.dumps(
        abl.mshr_sensitivity((2, 8), 1_200, 300, benchmarks=("gzip",)),
        sort_keys=True, indent=1,
    )

    # --- campaign ----------------------------------------------------------
    out["campaign"] = format_campaign(
        run_campaign(
            {"C2": ("throttle", "C2"), "A5": ("throttle", "A5")},
            benchmarks=("gzip",),
            seeds=2,
            instructions=1_200,
            name="parity",
        )
    )

    # --- policy search -----------------------------------------------------
    policies = enumerate_policies(include_decode=False, include_no_select=False)
    out["policy-search"] = format_points(
        search_policies(
            benchmarks=("gzip",), instructions=1_200, policies=policies[:4]
        )
    )

    # --- runner (one-off run, full result payload) -------------------------
    out["run"] = json.dumps(
        result_to_dict(
            run_benchmark(
                "go", ("throttle", "C2"), instructions=_INSTR, warmup=_WARMUP
            )
        ),
        sort_keys=True, indent=1,
    )

    # --- SMT mix report ----------------------------------------------------
    engine = build_engine()
    cell = make_smt_cell("mix2-branchy", instructions=1_200, warmup=300)
    results = engine.run([cell] + smt_baseline_cells(cell))
    out["smt-mix"] = format_smt_report(results[0], results[1:])

    return out


@pytest.fixture(scope="module")
def generated():
    return _generate()


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


_KEYS = (
    "figure1", "figure3", "figure4", "figure5", "figure6", "figure7",
    "table1", "estimator-swap", "escalation-rule", "gating-threshold",
    "clock-gating", "mshr", "campaign", "policy-search", "run", "smt-mix",
)


def test_golden_file_covers_every_driver(goldens):
    assert sorted(goldens) == sorted(_KEYS)


@pytest.mark.parametrize("key", _KEYS)
def test_driver_output_is_byte_identical_to_pre_refactor(key, generated, goldens):
    assert generated[key] == goldens[key]


if __name__ == "__main__":
    if "--pin" not in sys.argv:
        raise SystemExit("usage: python tests/test_study_parity.py --pin")
    payload = _generate()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"pinned {len(payload)} goldens to {GOLDEN_PATH}")
