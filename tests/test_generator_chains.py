"""Condition-chain and serial-chain structure of generated programs."""

from dataclasses import replace

import pytest

from repro.errors import ProgramError
from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_ARCH_REGS
from repro.program.cfg import TerminatorKind
from repro.program.generator import ProgramGenerator, ProgramShape

SERIAL_REG = NUM_ARCH_REGS - 1


def _generate(seed=7, **overrides):
    shape = ProgramShape(**overrides) if overrides else ProgramShape()
    return ProgramGenerator(shape, seed).generate(), shape


def _cond_reg_range(shape):
    low = NUM_ARCH_REGS - 1 - shape.hard_chain_registers
    return range(low, NUM_ARCH_REGS - 1)


def test_hard_blocks_exist_with_default_shape():
    program, shape = _generate()
    cond_regs = set(_cond_reg_range(shape))
    chained = [
        block
        for block in program.blocks
        if block.kind is TerminatorKind.COND
        and block.instructions[-1].sources
        and block.instructions[-1].sources[0] in cond_regs
    ]
    assert chained, "expected some hard branches with condition chains"


def test_condition_chain_load_feeds_the_branch():
    program, shape = _generate()
    cond_regs = set(_cond_reg_range(shape))
    for block in program.blocks:
        if block.kind is not TerminatorKind.COND:
            continue
        branch = block.instructions[-1]
        if not branch.sources or branch.sources[0] not in cond_regs:
            continue
        reg = branch.sources[0]
        writers = [
            instr
            for instr in block.instructions[:-1]
            if instr.dest == reg
        ]
        assert writers, f"block {block.block_id}: no writer of cond reg {reg}"
        assert all(w.opcode is Opcode.LOAD for w in writers)
        assert all(
            w.mem_footprint == shape.hard_chain_footprint for w in writers
        )


def test_hard_chain_zero_disables_condition_chains():
    program, shape = _generate(hard_branch_chain=0.0)
    cond_regs = set(_cond_reg_range(shape))
    for block in program.blocks:
        for instr in block.instructions:
            assert instr.dest not in cond_regs


def test_ordinary_destinations_avoid_reserved_registers():
    program, shape = _generate()
    reserved = set(_cond_reg_range(shape))
    for block in program.blocks:
        for instr in block.instructions:
            if instr.dest in reserved:
                # Only condition-chain loads may write the reserved regs.
                assert instr.opcode is Opcode.LOAD
                assert instr.mem_footprint == shape.hard_chain_footprint


def test_serial_chain_restart_breaks_self_dependence():
    program, shape = _generate(serial_chain_fraction=0.8, serial_chain_restart=0.5)
    links = restarts = 0
    for block in program.blocks:
        for instr in block.instructions:
            if instr.dest == SERIAL_REG and not instr.is_branch:
                if instr.sources and instr.sources[0] == SERIAL_REG:
                    links += 1
                else:
                    restarts += 1
    assert links > 0
    assert restarts > 0


def test_no_restarts_when_restart_probability_zero():
    program, _ = _generate(serial_chain_fraction=0.8, serial_chain_restart=0.0)
    for block in program.blocks:
        for instr in block.instructions:
            if (
                instr.dest == SERIAL_REG
                and not instr.is_branch
                and instr.opcode is not Opcode.STORE
            ):
                # Every chain op reads the chain register (the induction
                # head keeps its private chain and also satisfies this).
                if instr.sources:
                    sources_ok = instr.sources[0] == SERIAL_REG
                    assert sources_ok or instr.dest != SERIAL_REG


def test_hard_chain_footprint_must_be_power_of_two():
    with pytest.raises(ProgramError):
        ProgramShape(hard_chain_footprint=3000).validate()


def test_hard_branch_chain_must_be_probability():
    with pytest.raises(ProgramError):
        ProgramShape(hard_branch_chain=1.5).validate()


def test_hard_chain_registers_must_be_positive():
    with pytest.raises(ProgramError):
        ProgramShape(hard_chain_registers=0).validate()


def test_generation_is_deterministic_with_chains():
    a, _ = _generate(seed=99)
    b, _ = _generate(seed=99)
    for block_a, block_b in zip(a.blocks, b.blocks):
        assert len(block_a.instructions) == len(block_b.instructions)
        for ia, ib in zip(block_a.instructions, block_b.instructions):
            assert ia.opcode is ib.opcode
            assert ia.dest == ib.dest
            assert ia.sources == ib.sources
            assert ia.mem_footprint == ib.mem_footprint


def test_chain_rewrites_preserve_instruction_counts():
    """Condition chains rewrite in place: block sizes (and hence code
    addresses, and hence the calibrated gshare indexing) never change."""
    with_chains, _ = _generate(seed=5, hard_branch_chain=1.0)
    without, _ = _generate(seed=5, hard_branch_chain=0.0)
    assert len(with_chains.blocks) == len(without.blocks)
    for a, b in zip(with_chains.blocks, without.blocks):
        assert len(a.instructions) == len(b.instructions)
        assert a.address == b.address
