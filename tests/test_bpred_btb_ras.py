"""Tests for the branch target buffer and return address stack."""

import pytest

from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.ras import ReturnAddressStack
from repro.errors import ConfigurationError


# --- BTB --------------------------------------------------------------------

def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(64, 2)
    assert btb.lookup(0x1000) is None
    btb.update(0x1000, 0x2000)
    assert btb.lookup(0x1000) == 0x2000


def test_btb_update_replaces_target():
    btb = BranchTargetBuffer(64, 2)
    btb.update(0x1000, 0x2000)
    btb.update(0x1000, 0x3000)
    assert btb.lookup(0x1000) == 0x3000


def test_btb_lru_eviction_within_set():
    btb = BranchTargetBuffer(4, 2)  # 2 sets x 2 ways
    set_stride = 4 * 2  # pcs 8 bytes apart in the same set
    pc_a, pc_b, pc_c = 0x1000, 0x1000 + set_stride, 0x1000 + 2 * set_stride
    btb.update(pc_a, 1)
    btb.update(pc_b, 2)
    btb.lookup(pc_a)  # refresh A
    btb.update(pc_c, 3)  # evicts LRU (B)
    assert btb.lookup(pc_a) == 1
    assert btb.lookup(pc_b) is None
    assert btb.lookup(pc_c) == 3


def test_btb_hit_rate_counter():
    btb = BranchTargetBuffer(64, 2)
    btb.lookup(0x1000)
    btb.update(0x1000, 0x2000)
    btb.lookup(0x1000)
    assert btb.lookups == 2
    assert btb.hits == 1
    assert btb.hit_rate == 0.5


def test_btb_bad_geometry():
    with pytest.raises(ConfigurationError):
        BranchTargetBuffer(10, 3)
    with pytest.raises(ConfigurationError):
        BranchTargetBuffer(0, 1)


# --- RAS --------------------------------------------------------------------

def test_ras_push_pop_lifo():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100


def test_ras_empty_pop_returns_zero():
    ras = ReturnAddressStack(8)
    assert ras.pop() == 0
    assert ras.peek() == 0


def test_ras_overflow_wraps():
    ras = ReturnAddressStack(2)
    ras.push(1)
    ras.push(2)
    ras.push(3)  # wraps: overwrites the slot that held 1
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() == 3  # the wrapped slot now holds the overwrite, not 1


def test_ras_checkpoint_restore_repairs_speculation():
    ras = ReturnAddressStack(8)
    ras.push(0x100)
    point = ras.checkpoint()
    ras.push(0x200)  # speculative call
    ras.pop()
    ras.pop()  # speculative return popping too far
    ras.restore(point)
    assert ras.peek() == 0x100
    assert ras.pop() == 0x100


def test_ras_len_bounded_by_depth():
    ras = ReturnAddressStack(4)
    for i in range(10):
        ras.push(i)
    assert len(ras) == 4


def test_ras_invalid_depth():
    with pytest.raises(ConfigurationError):
        ReturnAddressStack(0)
