"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.bpred.gshare import GSharePredictor
from repro.bpred.ras import ReturnAddressStack
from repro.confidence.base import ConfidenceLevel
from repro.confidence.bpru import BPRUEstimator
from repro.confidence.jrs import JRSEstimator
from repro.confidence.metrics import ConfidenceMatrix
from repro.core.levels import BandwidthLevel
from repro.core.policy import experiment_policy
from repro.core.throttler import SelectiveThrottler
from repro.memory.cache import Cache
from repro.memory.tlb import TLB
from repro.utils.bitops import bit_mask, fold_xor, is_power_of_two
from repro.utils.rng import XorShiftRNG, derive_seed, stateless_hash
from repro.utils.stats import arithmetic_mean, geometric_mean, harmonic_mean


# --- RNG ----------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_rng_outputs_bounded(seed):
    rng = XorShiftRNG(seed)
    for _ in range(20):
        assert 0 <= rng.next_u64() < 2**64
        assert 0.0 <= rng.random() < 1.0


@given(st.integers(), st.integers(), st.integers())
def test_stateless_hash_is_pure(seed, a, b):
    assert stateless_hash(seed, a, b) == stateless_hash(seed, a, b)


@given(st.integers(min_value=-100, max_value=100),
       st.integers(min_value=0, max_value=100))
def test_randint_always_in_range(low, span):
    rng = XorShiftRNG(derive_seed(low, span))
    high = low + span
    for _ in range(20):
        assert low <= rng.randint(low, high) <= high


# --- bitops -----------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**70), st.integers(min_value=1, max_value=32))
def test_fold_xor_bounded(value, bits):
    assert 0 <= fold_xor(value, bits) <= bit_mask(bits)


@given(st.integers(min_value=1, max_value=2**30))
def test_power_of_two_detection(value):
    assert is_power_of_two(value) == (bin(value).count("1") == 1)


# --- stats --------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50))
def test_mean_inequality(values):
    # harmonic <= geometric <= arithmetic for positive values
    h = harmonic_mean(values)
    g = geometric_mean(values)
    a = arithmetic_mean(values)
    assert h <= g * (1 + 1e-9)
    assert g <= a * (1 + 1e-9)


# --- caches -------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=200))
def test_cache_hits_plus_misses_equals_accesses(addresses):
    cache = Cache("t", 1024, 2, 32)
    for address in addresses:
        cache.access(address)
    assert cache.stats.hits + cache.stats.misses == cache.stats.accesses
    assert cache.stats.accesses == len(addresses)


@given(st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=100))
def test_cache_immediate_rereference_always_hits(addresses):
    cache = Cache("t", 4096, 4, 32)
    for address in addresses:
        cache.access(address)
        assert cache.access(address)


@given(st.lists(st.integers(min_value=0, max_value=2**24), min_size=1, max_size=150))
def test_tlb_latency_is_zero_or_penalty(addresses):
    tlb = TLB(entries=8, miss_penalty=30)
    for address in addresses:
        assert tlb.access(address) in (0, 30)


# --- predictors ---------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**16),
                          st.booleans()), min_size=1, max_size=300))
def test_gshare_history_restore_roundtrip(branches):
    predictor = GSharePredictor(1)
    for pc, taken in branches:
        prediction = predictor.predict(pc * 4)
        if prediction.taken != taken:
            predictor.restore(prediction.snapshot, taken)
        expected = ((prediction.snapshot << 1) | int(taken)) & bit_mask(predictor.index_bits)
        assert predictor.history == expected
        predictor.train(pc * 4, taken, prediction.snapshot)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=255),
                          st.booleans()), min_size=1, max_size=300))
def test_gshare_counters_stay_in_range(branches):
    predictor = GSharePredictor(1)
    for pc, taken in branches:
        prediction = predictor.predict(pc * 4)
        predictor.train(pc * 4, taken, prediction.snapshot)
    assert all(0 <= counter <= 3 for counter in predictor.table)


@given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=0, max_size=100))
def test_ras_never_exceeds_depth(pushes):
    ras = ReturnAddressStack(8)
    for value in pushes:
        ras.push(value)
        assert len(ras) <= 8


@given(st.lists(st.booleans(), min_size=1, max_size=64))
def test_ras_checkpoint_restores_top(operations):
    ras = ReturnAddressStack(16)
    ras.push(0xABC)
    checkpoint = ras.checkpoint()
    for is_push in operations:
        if is_push:
            ras.push(1)
        else:
            ras.pop()
    ras.restore(checkpoint)
    assert ras.peek() == 0xABC


# --- confidence ---------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1023),
                          st.booleans()), min_size=1, max_size=400))
def test_jrs_counters_bounded(history):
    estimator = JRSEstimator(1, threshold=8)
    for pc, correct in history:
        estimator.train(pc * 4, correct, 0)
    assert all(0 <= counter <= 15 for counter in estimator.table)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1023),
                          st.booleans(), st.booleans()), min_size=1, max_size=400))
def test_bpru_counters_bounded(history):
    estimator = BPRUEstimator(1)
    for pc, correct, taken in history:
        estimator.train(pc * 4, correct, 0, taken=taken)
    assert all(0 <= counter <= 7 for counter in estimator.counters)


@given(st.lists(st.tuples(st.sampled_from(list(ConfidenceLevel)), st.booleans()),
                min_size=1, max_size=200))
def test_confidence_matrix_metrics_bounded(records):
    matrix = ConfidenceMatrix()
    for level, correct in records:
        matrix.record(level, correct)
    assert 0.0 <= matrix.spec() <= 1.0
    assert 0.0 <= matrix.pvn() <= 1.0
    assert matrix.total == len(records)


# --- throttling ---------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000))
def test_bandwidth_levels_monotone_aggressiveness(cycle):
    # A more aggressive level is active on a subset of any weaker level's cycles.
    if BandwidthLevel.STALL.active(cycle):
        raise AssertionError("STALL must never be active")
    if BandwidthLevel.QUARTER.active(cycle):
        assert BandwidthLevel.HALF.active(cycle)
    if BandwidthLevel.HALF.active(cycle):
        assert BandwidthLevel.FULL.active(cycle)


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=1000),
                          st.sampled_from([ConfidenceLevel.LC, ConfidenceLevel.VLC]),
                          st.booleans()),
                min_size=1, max_size=60))
@settings(max_examples=50)
def test_throttler_token_count_never_negative(events):
    from repro.isa.instruction import DynamicInstruction, StaticInstruction
    from repro.isa.opcodes import Opcode

    throttler = SelectiveThrottler(experiment_policy("C2"))
    live = {}
    for seq, level, resolve in events:
        if seq in live:
            branch = live.pop(seq)
            if resolve:
                throttler.on_branch_resolved(branch)
            else:
                throttler.on_branch_squashed(branch)
        else:
            branch = DynamicInstruction(
                seq, StaticInstruction(seq * 4, Opcode.BR_COND, sources=(2,))
            )
            live[seq] = branch
            throttler.on_branch_fetched(branch, level)
        assert throttler.active_token_count >= 0
        assert throttler.active_token_count <= len(live)
