"""Tests for the modified BPRU confidence estimator."""

import pytest

from repro.bpred.base import Prediction
from repro.bpred.gshare import GSharePredictor
from repro.confidence.base import ConfidenceLevel
from repro.confidence.bpru import BPRUEstimator
from repro.errors import ConfigurationError


def _prediction(taken=True, history=0):
    return Prediction(taken, history)


def test_table_miss_uses_predictor_fallback_weak():
    estimator = BPRUEstimator(8)
    predictor = GSharePredictor(1)  # fresh counters are weakly taken (2)
    level = estimator.estimate(0x1000, _prediction(), predictor)
    assert level is ConfidenceLevel.LC
    assert estimator.table_misses == 1


def test_table_miss_uses_predictor_fallback_strong():
    estimator = BPRUEstimator(8)
    predictor = GSharePredictor(1)
    snapshot = predictor.history
    for _ in range(4):
        predictor.train(0x1000, True, snapshot)  # saturate to strong taken
    level = estimator.estimate(0x1000, _prediction(history=snapshot), predictor)
    assert level is ConfidenceLevel.HC


def test_counter_levels_map_paper_ranges():
    estimator = BPRUEstimator(8, miss_increment=1, correct_decrement=1, initial_counter=0)
    predictor = GSharePredictor(1)
    pc = 0x2000
    # allocate and drive the counter up one misprediction at a time
    expectations = {
        1: ConfidenceLevel.VHC,
        2: ConfidenceLevel.HC,
        3: ConfidenceLevel.HC,
        4: ConfidenceLevel.LC,
        5: ConfidenceLevel.LC,
        6: ConfidenceLevel.VLC,
        7: ConfidenceLevel.VLC,
    }
    for mispredicts, expected in expectations.items():
        estimator.train(pc, False, 0)  # increment by 1
        level = estimator.estimate(pc, _prediction(taken=False), predictor)
        assert level is expected, f"after {mispredicts} misses"


def test_correct_predictions_decay_counter():
    estimator = BPRUEstimator(8, miss_increment=2, correct_decrement=1, initial_counter=6)
    predictor = GSharePredictor(1)
    pc = 0x2000
    estimator.train(pc, True, 0)  # allocate at 6, decay to 5
    assert estimator.estimate(pc, _prediction(), predictor) is ConfidenceLevel.LC
    for _ in range(4):
        estimator.train(pc, True, 0)
    assert estimator.estimate(pc, _prediction(), predictor) is ConfidenceLevel.VHC


def test_loop_exit_anticipation_flags_vlc():
    estimator = BPRUEstimator(8)
    predictor = GSharePredictor(1)
    pc = 0x3000
    trip = 5
    # Teach the trip length via two full committed loop executions.
    for _ in range(2):
        for _ in range(trip - 1):
            estimator.train(pc, True, 0, taken=True)
        estimator.train(pc, True, 0, taken=False)
    # Now walk the speculative streak up to the exit point.
    levels = []
    for _ in range(trip):
        levels.append(estimator.estimate(pc, _prediction(taken=True), predictor))
    assert levels[-1] is ConfidenceLevel.VLC  # exit anticipated
    assert all(lvl is not ConfidenceLevel.VLC for lvl in levels[:-2])


def test_wrong_path_estimates_do_not_advance_streak():
    estimator = BPRUEstimator(8)
    predictor = GSharePredictor(1)
    pc = 0x3000
    for _ in range(3):
        estimator.estimate(pc, _prediction(taken=True), predictor, update_state=False)
    assert estimator._spec_streaks.get(pc, 0) == 0
    estimator.estimate(pc, _prediction(taken=True), predictor, update_state=True)
    assert estimator._spec_streaks[pc] == 1


def test_storage_bits():
    estimator = BPRUEstimator(8)
    assert estimator.storage_bits() == 8 * 1024 * 8
    assert estimator.entries == 8 * 1024 * 8 // 16


def test_validation():
    with pytest.raises(ConfigurationError):
        BPRUEstimator(0)
    with pytest.raises(ConfigurationError):
        BPRUEstimator(8, miss_increment=0)
    with pytest.raises(ConfigurationError):
        BPRUEstimator(8, initial_counter=9)
