"""Tests for the true-path oracle and wrong-path navigator."""

import pytest

from repro.errors import SimulationError
from repro.program.cfg import TerminatorKind
from repro.program.walker import TruePathOracle, WrongPathNavigator


def test_oracle_deterministic():
    # Behaviour state lives in the Program, so determinism is checked with
    # two independently generated (identical) program instances.
    from tests.conftest import small_shape
    from repro.program.generator import ProgramGenerator

    prog_a = ProgramGenerator(small_shape(), seed=42, name="testprog").generate()
    prog_b = ProgramGenerator(small_shape(), seed=42, name="testprog").generate()
    a = TruePathOracle(prog_a, seed=1)
    b = TruePathOracle(prog_b, seed=1)
    for index in range(2000):
        ra, rb = a.get(index), b.get(index)
        assert ra.static.address == rb.static.address
        assert ra.taken == rb.taken
        assert ra.mem_address == rb.mem_address


def test_oracle_random_access_matches_sequential(small_program):
    a = TruePathOracle(small_program, seed=1)
    sequential = [a.get(i).static.address for i in range(500)]
    b = TruePathOracle(small_program, seed=1)
    assert b.get(499).static.address == sequential[499]
    assert [b.get(i).static.address for i in range(500)] == sequential


def test_oracle_follows_cfg_edges(small_program):
    oracle = TruePathOracle(small_program, seed=1)
    program = small_program
    for index in range(3000):
        record = oracle.get(index)
        static = record.static
        if not static.is_branch:
            continue
        block = program.block(static.block_id)
        if block.kind is TerminatorKind.COND:
            expected = block.taken_target if record.taken else block.fall_target
            assert record.target_block == expected
        elif block.kind is TerminatorKind.JUMP:
            assert record.target_block == block.taken_target


def test_oracle_branch_record_consistency(small_program):
    oracle = TruePathOracle(small_program, seed=1)
    for index in range(2000):
        record = oracle.get(index)
        if record.static.is_branch:
            assert record.target_block >= 0 or not record.taken
        else:
            assert record.target_block == -1


def test_oracle_memory_addresses_stay_in_region(small_program):
    oracle = TruePathOracle(small_program, seed=1)
    for index in range(3000):
        record = oracle.get(index)
        static = record.static
        if static.op_class.value in ("mem_read", "mem_write"):
            base = 0x1000_0000 + static.mem_region * 0x10_0000
            assert base <= record.mem_address < base + 0x10_0000
            assert record.mem_address % 4 == 0


def test_oracle_prune_and_reject_old(small_program):
    oracle = TruePathOracle(small_program, seed=1)
    oracle.get(1000)
    oracle.prune_before(900)
    assert oracle.get(900) is not None
    with pytest.raises(SimulationError):
        oracle.get(100)


def test_wrongpath_deterministic(small_program):
    nav_a = WrongPathNavigator(small_program, seed=1)
    nav_b = WrongPathNavigator(small_program, seed=1)
    cursor_a = nav_a.start_cursor(2, salt=5)
    cursor_b = nav_b.start_cursor(2, salt=5)
    for _ in range(200):
        sa, ta, ga, cursor_a, ma = nav_a.fetch_one(cursor_a)
        sb, tb, gb, cursor_b, mb = nav_b.fetch_one(cursor_b)
        assert sa is sb and ta == tb and ga == gb and ma == mb


def test_wrongpath_differs_by_salt(small_program):
    nav = WrongPathNavigator(small_program, seed=1)
    def walk(salt, steps=300):
        cursor = nav.start_cursor(2, salt=salt)
        trail = []
        for _ in range(steps):
            static, taken, _, cursor, _ = nav.fetch_one(cursor)
            trail.append((static.address, taken))
        return trail
    assert walk(1) != walk(2)


def test_wrongpath_never_touches_true_state(small_program):
    oracle = TruePathOracle(small_program, seed=1)
    baseline = [oracle.get(i).taken for i in range(300) if oracle.get(i).static.is_cond_branch]

    fresh = TruePathOracle(small_program, seed=1)
    nav = WrongPathNavigator(small_program, seed=1)
    cursor = nav.start_cursor(1, salt=3)
    interleaved = []
    walked = 0
    for i in range(300):
        record = fresh.get(i)
        if record.static.is_cond_branch:
            interleaved.append(record.taken)
        # wander the wrong path between true-path reads
        for _ in range(3):
            _, _, _, cursor, _ = nav.fetch_one(cursor)
            walked += 1
    assert walked > 0
    assert interleaved == baseline


def test_wrongpath_call_stack_bounded(small_program):
    nav = WrongPathNavigator(small_program, seed=1)
    cursor = nav.start_cursor(0, salt=1)
    for _ in range(5000):
        _, _, _, cursor, _ = nav.fetch_one(cursor)
        assert len(cursor[2]) <= 64
