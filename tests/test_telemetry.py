"""The telemetry layer: probe bus, event stream, exports, runtime stats.

Four contracts under test:

* **Zero cost off, bit-identical on** — the telemetry flag selects the
  instrumented stepper at construction (never a per-cycle branch), is
  excluded from cache fingerprints, and an instrumented run commits the
  same instructions in the same cycles as a plain one.
* **Counter correctness** — probe totals over the measured window
  reconcile exactly with the kernel's own ``SimStats``, and the
  throttle-residency histogram covers every cycle of every thread.
* **Export round-trips** — JSONL written through the sink reads back
  equal and validates; the Prometheus exposition parses back to the
  aggregated counters; corrupt streams are named, not swallowed.
* **Runtime metrics** — the sweep scheduler publishes plan/batch/cache
  events, cache hit/miss/store/eviction counters survive process
  boundaries via the sidecar, and the stage timers attribute wall time.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import replace

import pytest

from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator
from repro.telemetry import events as tevents
from repro.telemetry.export import (
    counter_totals,
    parse_prometheus,
    read_events,
    to_prometheus,
    top_counters,
    validate_events,
    write_events,
)
from repro.telemetry.probes import ProbeBus

from tests.conftest import small_shape


@pytest.fixture(autouse=True)
def _clean_sink():
    """Detach every sink consumer around each test (module-level state)."""
    tevents.reset()
    yield
    tevents.reset()


def _processor(seed=42, **overrides) -> Processor:
    program = ProgramGenerator(
        small_shape(), seed=seed, name="teleprog"
    ).generate()
    config = replace(table3_config(), **overrides)
    return Processor(config, program, seed=seed)


# ----------------------------------------------------------------------
# Dispatch: construction-time stepper selection
# ----------------------------------------------------------------------

def test_telemetry_flag_selects_instrumented_stepper():
    instrumented = _processor(telemetry=True)
    assert instrumented._step == instrumented.scheduler.step_instrumented
    assert isinstance(instrumented.probes, ProbeBus)
    plain = _processor()
    assert plain._step == plain.scheduler.step
    assert plain.probes is None


def test_telemetry_and_sanitize_combine():
    both = _processor(telemetry=True, sanitize=True)
    assert both._step == both.scheduler.step_instrumented_sanitized
    assert isinstance(both.probes, ProbeBus)


def test_env_variable_enables_telemetry(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    assert table3_config().telemetry is True
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    assert table3_config().telemetry is False
    monkeypatch.delenv("REPRO_TELEMETRY")
    assert table3_config().telemetry is False


def test_telemetry_field_not_in_fingerprints():
    from repro.experiments.engine import config_fingerprint

    on = config_fingerprint(replace(table3_config(), telemetry=True))
    off = config_fingerprint(table3_config())
    assert on == off
    assert all(name != "telemetry" for name, _ in on)


# ----------------------------------------------------------------------
# Counter correctness on a pinned run
# ----------------------------------------------------------------------

def test_instrumented_run_bit_identical_to_plain():
    instrumented = _processor(telemetry=True)
    instrumented.run(2000, warmup_instructions=400)
    plain = _processor()
    plain.run(2000, warmup_instructions=400)
    assert instrumented.stats.committed == plain.stats.committed
    assert instrumented.cycle == plain.cycle
    assert instrumented.stats.squashed == plain.stats.squashed
    assert instrumented.stats.fetched == plain.stats.fetched


def test_probe_counters_reconcile_with_stats():
    processor = _processor(telemetry=True)
    processor.run(2000, warmup_instructions=400)
    probes, stats = processor.probes, processor.stats
    assert probes.cycles == stats.cycles
    assert probes.fetched == stats.fetched
    assert probes.fetched_wrong_path == stats.fetched_wrong_path
    assert probes.decoded == stats.decoded
    assert probes.renamed == stats.renamed
    assert probes.issued == stats.issued
    assert probes.committed == stats.committed
    assert probes.squashed_instructions == stats.squashed
    assert probes.squash_recoveries == stats.squashes
    assert probes.selection_blocked == stats.selection_blocked
    snapshot = probes.snapshot()
    assert snapshot["cycles"] == stats.cycles
    assert snapshot["stages"]["commit"]["instructions"] == stats.committed
    # Active cycles can never exceed the window.
    for group in snapshot["stages"].values():
        assert 0 <= group["active_cycles"] <= stats.cycles


def test_throttle_residency_covers_every_cycle(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    from repro.experiments.engine import build_processor, make_cell

    cell = make_cell(
        "go", ("throttle", "C2"), instructions=1500, warmup=300
    )
    processor = build_processor(cell)
    processor.run(cell.instructions, warmup_instructions=cell.warmup)
    probes = processor.probes
    assert sum(probes.throttle_residency) == probes.cycles * probes.nthreads
    # C2 on 'go' throttles hard: sub-FULL residency must appear.
    assert sum(probes.throttle_residency[1:]) > 0


def test_smt_probes_split_per_thread(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    from repro.experiments.engine import build_smt_processor, make_smt_cell

    cell = make_smt_cell("mix2-branchy", instructions=800, warmup=200)
    processor = build_smt_processor(cell)
    processor.run(cell.instructions, warmup_instructions=cell.warmup)
    snapshot = processor.probes.snapshot()
    threads = snapshot["threads"]
    assert len(threads) == len(processor.threads) == 2
    assert all(thread["committed"] > 0 for thread in threads)
    assert sum(t["rob_occupancy_sum"] for t in threads) == (
        snapshot["occupancy"]["rob_sum"]
    )


# ----------------------------------------------------------------------
# The event sink and the export layer
# ----------------------------------------------------------------------

def test_publish_is_noop_when_unconfigured():
    assert tevents.publish("cache", hits=1, misses=0) is None
    assert tevents.drain() == []


def test_jsonl_round_trip(tmp_path):
    stream = io.StringIO()
    tevents.configure(writer=stream, buffering=True)
    tevents.publish("manifest", version="0")
    tevents.publish(
        "stage-counters", kind="sim", workload="go",
        counters={"cycles": 7, "stages": {"fetch": {"instructions": 3}}},
    )
    tevents.publish("cache", hits=2, misses=1)
    events = tevents.drain()
    path = tmp_path / "events.jsonl"
    path.write_text(stream.getvalue())
    loaded = read_events(str(path))
    assert loaded == events
    assert validate_events(loaded) == []
    assert [event["seq"] for event in loaded] == [0, 1, 2]
    # write_events produces the same canonical lines as the sink writer.
    rewritten = io.StringIO()
    assert write_events(loaded, rewritten) == 3
    assert rewritten.getvalue() == stream.getvalue()


def test_read_events_names_the_corrupt_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"schema": "repro-telemetry/1"}\n{truncated')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
        read_events(str(path))


def test_validate_events_flags_schema_violations():
    errors = validate_events([
        {"schema": "repro-telemetry/0", "event": "cache", "seq": 0,
         "hits": 1, "misses": 0},
        {"schema": "repro-telemetry/1", "event": "no-such-kind", "seq": 1},
        {"schema": "repro-telemetry/1", "event": "cache", "seq": 2},
        "not an object",
    ])
    assert any("repro-telemetry/0" in error for error in errors)
    assert any("no-such-kind" in error for error in errors)
    assert any("missing payload field 'hits'" in error for error in errors)
    assert any("not a JSON object" in error for error in errors)


def test_prometheus_round_trip():
    events = [
        {"schema": tevents.SCHEMA, "event": "stage-counters", "seq": 0,
         "kind": "sim", "workload": "go",
         "counters": {"cycles": 11, "stages": {"fetch": {"instructions": 5}}}},
        {"schema": tevents.SCHEMA, "event": "cache", "seq": 1,
         "hits": 3, "misses": 1},
    ]
    totals = counter_totals(events)
    assert totals["stage_counters.cycles"] == 11
    assert totals["cache.hits"] == 3
    metrics = parse_prometheus(to_prometheus(events))
    assert metrics["repro_stage_counters_cycles_total"] == 11
    assert metrics["repro_cache_hits_total"] == 3
    assert len(metrics) == len(totals)
    ranked = top_counters(events, 2)
    assert ranked[0][1] >= ranked[1][1]


def test_worker_mode_drops_inherited_consumers():
    stream = io.StringIO()
    tevents.configure(writer=stream, listener=lambda event: None,
                      buffering=True)
    tevents.publish("manifest", version="0")  # parent-buffered pre-fork
    tevents.worker_mode()
    tevents.publish("cache", hits=0, misses=1)
    drained = tevents.drain()
    # Only the worker's own event: no writer output, no inherited buffer.
    assert [event["event"] for event in drained] == ["cache"]
    assert stream.getvalue().count("\n") == 1  # the pre-fork manifest only


# ----------------------------------------------------------------------
# Runtime metrics: scheduler events and persistent cache stats
# ----------------------------------------------------------------------

def test_scheduler_publishes_plan_batch_and_cache_events(tmp_path):
    from repro.experiments.engine import ResultCache, make_cell
    from repro.experiments.scheduler import SweepScheduler

    tevents.configure(buffering=True)
    cells = [
        make_cell("go", instructions=600, warmup=150),
        make_cell("go", ("throttle", "C2"), instructions=600, warmup=150),
    ]
    cache = ResultCache(str(tmp_path))
    SweepScheduler(cache=cache).run(cells)
    kinds = [event["event"] for event in tevents.drain()]
    assert kinds.count("batch-plan") == 1
    assert kinds.count("cache") == 1
    assert "batch-complete" in kinds

    # Warm rerun: everything from cache, nothing simulated, cumulative
    # cache counters in the event.
    warm = SweepScheduler(cache=ResultCache(str(tmp_path)))
    warm.run(cells)
    events = tevents.drain()
    assert warm.executed == 0
    cache_event = [e for e in events if e["event"] == "cache"][0]
    assert cache_event["hits"] == 2
    assert cache_event["misses"] == 2
    assert cache_event["hit_rate"] == 0.5


def test_instrumented_cells_emit_stage_counters(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    from repro.experiments.engine import ResultCache, make_cell
    from repro.experiments.scheduler import SweepScheduler

    tevents.configure(buffering=True)
    cells = [make_cell("go", instructions=600, warmup=150)]
    SweepScheduler(cache=ResultCache(str(tmp_path))).run(cells)
    events = tevents.drain()
    counters = [e for e in events if e["event"] == "stage-counters"]
    assert len(counters) == 1
    assert counters[0]["kind"] == "sim"
    assert counters[0]["workload"] == "go"
    assert counters[0]["counters"]["stages"]["commit"]["instructions"] > 0
    assert validate_events(events) == []

    # A warm-cache cell is never simulated, so it emits no counters.
    SweepScheduler(cache=ResultCache(str(tmp_path))).run(cells)
    warm_kinds = [event["event"] for event in tevents.drain()]
    assert "stage-counters" not in warm_kinds


def test_cache_stats_persist_across_instances(tmp_path):
    from repro.experiments.engine import ResultCache, make_cell, simulate

    cell = make_cell("go", instructions=600, warmup=150)
    first = ResultCache(str(tmp_path))
    assert first.get(cell) is None  # miss
    first.put(cell, simulate(cell))
    assert first.get(cell) is not None  # hit
    assert (first.hits, first.misses, first.stores) == (1, 1, 1)
    first.flush_stats()

    second = ResultCache(str(tmp_path))
    stats = second.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["stores"] == 1 and stats["hit_rate"] == 0.5
    # Session counters start at zero: the sidecar carries the history.
    assert (second.hits, second.misses, second.stores) == (0, 0, 0)

    dropped = second.prune(0.0)
    assert dropped == 1 and second.evictions == 1
    second.flush_stats()
    assert ResultCache(str(tmp_path)).stats()["evictions"] == 1


def test_manifest_names_run_and_config():
    from repro import __version__
    from repro.telemetry.runtime import build_manifest, config_digest

    manifest = build_manifest(
        "study", studies=["clock-gating"], jobs=2, instructions=900
    )
    assert manifest["version"] == __version__
    assert manifest["command"] == "study"
    assert manifest["studies"] == ["clock-gating"]
    assert manifest["jobs"] == 2
    assert manifest["instructions"] == 900
    assert manifest["config_digest"] == config_digest()
    assert len(manifest["config_digest"]) == 64


def test_stage_timers_attribute_wall_time():
    from repro.telemetry.timers import StageTimers

    processor = _processor(telemetry=True)
    timers = StageTimers(processor).attach()
    processor.run(1000, warmup_instructions=200)
    rows = timers.report()
    assert {name for name, _, _ in rows} == {
        stage.name for stage in processor.scheduler.stages
    }
    calls = {count for _, _, count in rows}
    assert len(calls) == 1  # every stage ticks every cycle
    assert timers.total_seconds > 0.0
    assert rows == sorted(rows, key=lambda row: (-row[1], row[0]))


# ----------------------------------------------------------------------
# CLI: the telemetry consumer commands
# ----------------------------------------------------------------------

def test_cli_telemetry_summary_gates_on_schema(tmp_path, capsys):
    from repro.cli import main

    good = tmp_path / "good.jsonl"
    events = [
        {"schema": tevents.SCHEMA, "event": "cache", "seq": 0,
         "hits": 4, "misses": 4},
    ]
    good.write_text(
        "\n".join(json.dumps(event) for event in events) + "\n"
    )
    assert main(["telemetry", "summary", str(good)]) == 0
    out = capsys.readouterr().out
    assert "1 events" in out
    assert "4 hits / 4 misses (50.0% hit rate)" in out

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"schema": "repro-telemetry/1", "event": "cache"}\n')
    assert main(["telemetry", "summary", str(bad)]) == 1
    assert "schema violation" in capsys.readouterr().err
