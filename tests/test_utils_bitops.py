"""Tests for bit-manipulation helpers."""

import pytest

from repro.utils.bitops import bit_mask, fold_xor, hash64, is_power_of_two, log2_exact


def test_is_power_of_two():
    powers = {1, 2, 4, 8, 1024, 1 << 30}
    for value in range(-4, 1100):
        assert is_power_of_two(value) == (value in powers or (value > 0 and (value & (value - 1)) == 0))


def test_is_power_of_two_rejects_zero_and_negative():
    assert not is_power_of_two(0)
    assert not is_power_of_two(-8)


def test_log2_exact():
    assert log2_exact(1) == 0
    assert log2_exact(2) == 1
    assert log2_exact(32768) == 15


def test_log2_exact_rejects_non_powers():
    with pytest.raises(ValueError):
        log2_exact(24)
    with pytest.raises(ValueError):
        log2_exact(0)


def test_bit_mask():
    assert bit_mask(0) == 0
    assert bit_mask(4) == 0xF
    assert bit_mask(15) == 0x7FFF


def test_bit_mask_negative_raises():
    with pytest.raises(ValueError):
        bit_mask(-1)


def test_fold_xor_within_range():
    for value in (0, 1, 0xDEADBEEF, (1 << 60) + 12345):
        assert 0 <= fold_xor(value, 10) <= bit_mask(10)


def test_fold_xor_preserves_small_values():
    assert fold_xor(0x2A, 8) == 0x2A


def test_fold_xor_rejects_zero_bits():
    with pytest.raises(ValueError):
        fold_xor(5, 0)


def test_hash64_deterministic_and_mixing():
    assert hash64(12345) == hash64(12345)
    assert hash64(12345) != hash64(12346)
    assert 0 <= hash64(1 << 63) < (1 << 64)
