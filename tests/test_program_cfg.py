"""Tests for the CFG representation and its invariants."""

import pytest

from repro.errors import ProgramError
from repro.isa.instruction import StaticInstruction
from repro.isa.opcodes import Opcode
from repro.program.behavior import BiasedBehavior
from repro.program.cfg import INSTRUCTION_BYTES, BasicBlock, Program, TerminatorKind


def _block_with(block_id, kind, n_body=2, **kwargs):
    block = BasicBlock(block_id, 0, kind, **kwargs)
    for _ in range(n_body):
        block.instructions.append(StaticInstruction(0, Opcode.ADD, dest=3, sources=(2,)))
    terminator = {
        TerminatorKind.COND: Opcode.BR_COND,
        TerminatorKind.JUMP: Opcode.BR_UNCOND,
        TerminatorKind.CALL: Opcode.CALL,
        TerminatorKind.RET: Opcode.RET,
    }.get(kind)
    if terminator:
        block.instructions.append(StaticInstruction(0, terminator, sources=(2,) if kind is TerminatorKind.COND else ()))
    return block


def _two_block_program():
    b0 = _block_with(0, TerminatorKind.JUMP, taken_target=1)
    b1 = _block_with(1, TerminatorKind.JUMP, taken_target=0)
    program = Program([b0, b1], entry_block=0, name="p")
    program.finalize()
    return program


def test_finalize_assigns_contiguous_addresses():
    program = _two_block_program()
    b0, b1 = program.blocks
    assert b0.address == 0x1000
    assert b1.address == b0.address + len(b0.instructions) * INSTRUCTION_BYTES
    for offset, instr in enumerate(b0.instructions):
        assert instr.address == b0.address + offset * INSTRUCTION_BYTES
        assert instr.block_id == 0


def test_block_at_address_lookup():
    program = _two_block_program()
    assert program.block_at_address(0x1000).block_id == 0
    assert program.block_at_address(0xDEAD) is None


def test_counts():
    program = _two_block_program()
    assert program.static_instruction_count() == sum(
        len(b.instructions) for b in program.blocks
    )
    assert program.conditional_branch_count() == 0


def test_cond_block_requires_behavior():
    bad = _block_with(0, TerminatorKind.COND, taken_target=0, fall_target=0)
    with pytest.raises(ProgramError):
        Program([bad], entry_block=0).finalize()


def test_cond_block_with_behavior_validates():
    block = _block_with(
        0, TerminatorKind.COND, taken_target=0, fall_target=0,
        behavior=BiasedBehavior(0.5, seed=1),
    )
    program = Program([block], entry_block=0)
    program.finalize()
    assert program.finalized


def test_bad_targets_rejected():
    block = _block_with(0, TerminatorKind.JUMP, taken_target=7)
    with pytest.raises(ProgramError):
        Program([block], entry_block=0).finalize()


def test_call_requires_continuation():
    block = _block_with(0, TerminatorKind.CALL, taken_target=0, fall_target=-1)
    with pytest.raises(ProgramError):
        Program([block], entry_block=0).finalize()


def test_empty_program_rejected():
    with pytest.raises(ProgramError):
        Program([], entry_block=0)


def test_bad_entry_rejected():
    block = _block_with(0, TerminatorKind.JUMP, taken_target=0)
    with pytest.raises(ProgramError):
        Program([block], entry_block=3)


def test_terminator_accessor():
    block = _block_with(0, TerminatorKind.JUMP, taken_target=0)
    assert block.terminator.opcode is Opcode.BR_UNCOND
    fall = _block_with(0, TerminatorKind.FALL, fall_target=0)
    assert fall.terminator is None


def test_reset_behaviors_resets_loop_state(fresh_program):
    # Drain some outcomes, reset, and confirm the stream replays.
    cond_blocks = [b for b in fresh_program.blocks if b.behavior is not None]
    assert cond_blocks
    block = cond_blocks[0]
    first = [block.behavior.next_outcome(0) for _ in range(20)]
    fresh_program.reset_behaviors()
    assert [block.behavior.next_outcome(0) for _ in range(20)] == first
