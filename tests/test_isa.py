"""Tests for the synthetic ISA layer."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.instruction import DynamicInstruction, StaticInstruction
from repro.isa.opcodes import (
    BRANCH_OPCODES,
    MEMORY_OPCODES,
    Opcode,
    OpClass,
    opcode_class,
    opcode_latency,
)
from repro.isa.registers import NUM_ARCH_REGS, REG_SP, REG_ZERO, valid_register


def test_every_opcode_has_class_and_latency():
    for opcode in Opcode:
        assert isinstance(opcode_class(opcode), OpClass)
        assert opcode_latency(opcode) >= 1


def test_branch_opcode_set():
    assert Opcode.BR_COND in BRANCH_OPCODES
    assert Opcode.CALL in BRANCH_OPCODES
    assert Opcode.LOAD not in BRANCH_OPCODES


def test_memory_opcode_set():
    assert MEMORY_OPCODES == {Opcode.LOAD, Opcode.STORE}


def test_mult_slower_than_alu():
    assert opcode_latency(Opcode.MUL) > opcode_latency(Opcode.ADD)
    assert opcode_latency(Opcode.DIV) > opcode_latency(Opcode.MUL)


def test_static_instruction_branch_flags():
    branch = StaticInstruction(0x1000, Opcode.BR_COND, sources=(3,))
    assert branch.is_branch and branch.is_cond_branch
    jump = StaticInstruction(0x1004, Opcode.BR_UNCOND)
    assert jump.is_branch and not jump.is_cond_branch
    add = StaticInstruction(0x1008, Opcode.ADD, dest=5, sources=(1, 2))
    assert not add.is_branch


def test_dynamic_instruction_defaults():
    static = StaticInstruction(0x2000, Opcode.LOAD, dest=7, sources=(2,))
    dyn = DynamicInstruction(42, static)
    assert dyn.seq == 42
    assert dyn.static.address == 0x2000
    assert dyn.is_load and not dyn.is_store
    assert not dyn.issued and not dyn.completed and not dyn.squashed
    assert dyn.fetch_cycle == -1
    assert dyn.phys_dest == -1


def test_dynamic_instruction_branch_only_slots():
    # ``pc`` (and the other control-flow slots) exist only on branches —
    # the packet-friendly lazily-populated slot contract.
    branch = DynamicInstruction(1, StaticInstruction(0x3000, Opcode.BR_COND))
    assert branch.pc == 0x3000
    assert branch.predicted_taken is False
    load = DynamicInstruction(2, StaticInstruction(0x2000, Opcode.LOAD, dest=7))
    assert not hasattr(load, "pc")
    assert not hasattr(load, "decode_cycle")


def test_dynamic_instruction_properties_delegate():
    static = StaticInstruction(0x2000, Opcode.STORE, sources=(2, 3))
    dyn = DynamicInstruction(1, static)
    assert dyn.opcode is Opcode.STORE
    assert dyn.op_class is OpClass.MEM_WRITE
    assert dyn.is_store


def test_dynamic_repr_mentions_squash_state():
    static = StaticInstruction(0x2000, Opcode.ADD, dest=4)
    dyn = DynamicInstruction(1, static)
    dyn.on_wrong_path = True
    dyn.squashed = True
    text = repr(dyn)
    assert "wrong-path" in text and "squashed" in text


def test_register_conventions():
    assert valid_register(REG_ZERO)
    assert valid_register(REG_SP)
    assert valid_register(NUM_ARCH_REGS - 1)
    assert not valid_register(NUM_ARCH_REGS)
    assert not valid_register(-1)
