"""Property test: the array and object stage kernels are interchangeable.

The golden parity sweep (``test_stage_kernel_parity.py``) pins both
kernels to 38 known fingerprints on the shipped benchmark generators.
This test goes beyond the goldens: randomized micro-programs (drawn
program shapes and seeds) on randomized core geometries are run through
*both* kernel representations, and every observable — the committed
instruction sequence, the squash sequence, the full statistics
dictionary, the power ledgers — must match bit for bit.  A fingerprint
over the canonical JSON of the whole payload guards anything the
itemised asserts miss.

Each trial is deterministic (the trial seed fixes the program, the
geometry and the mechanism), so a failure reproduces by running its
trial id alone.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import replace

import pytest

from repro.experiments.engine import make_controller
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator, ProgramShape
from repro.smt.core import SmtProcessor
from repro.smt.policies import make_fetch_policy

_TRIALS = tuple(range(8))
_INSTRUCTIONS = 1200
_WARMUP = 300

# Mechanisms drawn per trial: the empty baseline, a fetch-gating
# throttle (exercises throttled-cycle accounting), the strongest
# selection throttle, pipeline gating, and the fetch oracle (exercises
# the cycle-skip fast-forward's oracle mode).
_MECHANISMS = (
    None,
    ("throttle", "A2"),
    ("throttle", "C2"),
    ("gating", 2),
    ("oracle", "fetch"),
)


def _draw_shape(rng: random.Random) -> ProgramShape:
    """A compact randomized program shape (micro-program generator)."""
    return ProgramShape(
        num_functions=rng.randint(2, 5),
        blocks_per_function=(4, rng.randint(6, 12)),
        block_size=(2, rng.randint(4, 9)),
        p_cond=rng.uniform(0.4, 0.75),
        p_call=rng.uniform(0.02, 0.10),
        p_jump=rng.uniform(0.02, 0.12),
        loop_fraction=rng.uniform(0.15, 0.45),
        w_bad=rng.uniform(0.02, 0.20),
        w_random=rng.uniform(0.0, 0.06),
        serial_chain_fraction=rng.uniform(0.2, 0.6),
        load_chain_fraction=rng.uniform(0.2, 0.6),
        branch_load_dependence=rng.uniform(0.3, 0.8),
    )


def _draw_config(rng: random.Random):
    """A randomized core geometry on top of the Table-3 baseline."""
    base = table3_config().with_depth(rng.choice((6, 14, 28)))
    rob = rng.choice((32, 64, 128))
    return replace(
        base,
        rob_size=rob,
        iq_size=max(16, rob // 2),
        lsq_size=max(16, rob // 2),
        fetch_width=rng.choice((4, 8)),
        issue_width=rng.choice((4, 8)),
        max_taken_branches_per_cycle=rng.choice((1, 2)),
        # One trial in four runs both kernels under the sanitized and/or
        # instrumented steppers, so all four step variants (and their
        # fast-forward entry gates) get property coverage.
        sanitize=rng.random() < 0.25,
        telemetry=rng.random() < 0.25,
    )


class _CommitRecorder:
    """Observer collecting the committed and squashed event sequences."""

    def __init__(self) -> None:
        self.commits = []
        self.squashes = []

    def on_commit(self, instr, cycle: int) -> None:
        self.commits.append((instr.seq, instr.static.address, cycle))

    def on_squash(self, instr, cycle: int) -> None:
        self.squashes.append(
            (instr.seq, instr.static.address, bool(instr.on_wrong_path), cycle)
        )


def _probe_groups(processor):
    """The kernel-independent probe groups of an instrumented run.

    The snapshot's ``skip`` block is deliberately excluded: the object
    kernel never fast-forwards, so skip telemetry differs between the
    kernels by construction while every other group must match.
    """
    if processor.probes is None:
        return None
    snapshot = processor.probes.snapshot()
    return {
        "stages": snapshot["stages"],
        "occupancy": snapshot["occupancy"],
        "throttle_residency": snapshot["throttle_residency"],
        "threads": snapshot["threads"],
    }


def _run_kernel(trial: int, kernel: str):
    """One deterministic trial on the given kernel representation."""
    rng = random.Random(0x5EED0 + trial)
    shape = _draw_shape(rng)
    config = replace(_draw_config(rng), kernel=kernel)
    spec = rng.choice(_MECHANISMS)
    program = ProgramGenerator(shape, seed=1000 + trial, name=f"prop{trial}").generate()
    controller = make_controller(spec) if spec is not None else None
    processor = Processor(config, program, controller=controller, seed=77 + trial)
    recorder = _CommitRecorder()
    processor.observer = recorder
    stats = processor.run(_INSTRUCTIONS, warmup_instructions=_WARMUP)
    power = processor.power
    payload = {
        "commits": recorder.commits,
        "squashes": recorder.squashes,
        "stats": stats.as_dict(),
        "cycles": processor.cycle,
        "probes": _probe_groups(processor),
        "total_energy": power.total_energy(),
        "wasted_energy": power.total_wasted_energy(),
        "average_power": power.average_power(),
        "breakdown": power.breakdown(),
        "thread_attribution": power.thread_attribution(),
    }
    return payload, spec


def _fingerprint(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("trial", _TRIALS)
def test_random_micro_programs_commit_identically(trial):
    object_payload, spec = _run_kernel(trial, "object")
    array_payload, _ = _run_kernel(trial, "array")
    label = f"trial {trial} ({spec or 'baseline'})"
    # Itemised asserts first: a divergence names the first differing
    # observable instead of just a hash mismatch.
    assert object_payload["commits"] == array_payload["commits"], (
        f"{label}: committed instruction sequences diverge between kernels"
    )
    assert object_payload["squashes"] == array_payload["squashes"], (
        f"{label}: squash sequences diverge between kernels"
    )
    assert object_payload["stats"] == array_payload["stats"], (
        f"{label}: statistics diverge between kernels"
    )
    assert _fingerprint(object_payload) == _fingerprint(array_payload), (
        f"{label}: full result payloads diverge between kernels"
    )


def test_trials_cover_every_mechanism_and_a_checked_stepper():
    """The drawn trials must actually exercise the interesting modes."""
    specs = set()
    checked = False
    for trial in _TRIALS:
        rng = random.Random(0x5EED0 + trial)
        _draw_shape(rng)
        config = _draw_config(rng)
        specs.add(rng.choice(_MECHANISMS))
        checked = checked or config.sanitize or config.telemetry
    assert len(specs) >= 3, "trial draws collapse onto too few mechanisms"
    assert checked, "no trial draws a sanitized or instrumented stepper"


def test_commits_are_observed_and_nonempty():
    payload, _ = _run_kernel(0, "array")
    assert len(payload["commits"]) >= _INSTRUCTIONS
    seqs = [seq for seq, _, _ in payload["commits"]]
    assert seqs == sorted(seqs), "commit sequence must be program-ordered"


# ---------------------------------------------------------------------------
# SMT equivalence: the fast-forward's machine-wide quiescence rules.
#
# A 2-thread core on the array kernel (which may skip) must match the
# object kernel (which never skips) bit for bit — including per-thread
# attribution, controller counters, the policy's gated-cycle counters
# and the probe bus's throttle-level residency.  Mechanism, fetch policy
# and stepper variant are assigned round-robin over the trials so every
# interesting combination is guaranteed coverage (no draw collapse).
# ---------------------------------------------------------------------------

_SMT_TRIALS = tuple(range(6))
_SMT_MECHANISMS = (None, ("throttle", "C2"), ("throttle", "A2"), ("gating", 2))
_SMT_POLICIES = ("round-robin", "icount", "confidence-gating")


def _run_smt_kernel(trial: int, kernel: str):
    """One deterministic 2-thread trial on the given kernel."""
    rng = random.Random(0x5A1D0 + trial)
    shapes = (_draw_shape(rng), _draw_shape(rng))
    config = replace(
        _draw_config(rng),
        kernel=kernel,
        # Deterministic stepper coverage: half the trials instrumented,
        # a third sanitized (trial 5 runs both).
        telemetry=trial % 2 == 1,
        sanitize=trial % 3 == 2,
    )
    spec = _SMT_MECHANISMS[trial % len(_SMT_MECHANISMS)]
    policy = _SMT_POLICIES[trial % len(_SMT_POLICIES)]
    programs = [
        ProgramGenerator(
            shape, seed=2000 + 10 * trial + index, name=f"smt{trial}t{index}"
        ).generate()
        for index, shape in enumerate(shapes)
    ]
    controllers = (
        [make_controller(spec) for _ in programs] if spec is not None else None
    )
    processor = SmtProcessor(
        config,
        programs,
        seeds=[88 + trial, 880 + trial],
        controllers=controllers,
        fetch_policy=make_fetch_policy(policy),
    )
    recorder = _CommitRecorder()
    processor.observer = recorder
    stats = processor.run(_INSTRUCTIONS, warmup_instructions=_WARMUP)
    power = processor.power
    payload = {
        "commits": recorder.commits,
        "squashes": recorder.squashes,
        "stats": stats.as_dict(),
        "cycles": processor.cycle,
        "threads": [
            {
                "committed": thread.committed,
                "fetched": thread.fetched,
                "fetched_wrong_path": thread.fetched_wrong_path,
                "squashed": thread.squashed,
                "policy_gated_cycles": thread.policy_gated_cycles,
            }
            for thread in processor.threads
        ],
        "controllers": [
            getattr(thread.controller, "gated_cycles", None)
            for thread in processor.threads
        ],
        "probes": _probe_groups(processor),
        "total_energy": power.total_energy(),
        "wasted_energy": power.total_wasted_energy(),
        "average_power": power.average_power(),
        "breakdown": power.breakdown(),
        "thread_attribution": power.thread_attribution(),
    }
    return payload, (spec, policy)


@pytest.mark.parametrize("trial", _SMT_TRIALS)
def test_random_smt_micro_programs_commit_identically(trial):
    object_payload, combo = _run_smt_kernel(trial, "object")
    array_payload, _ = _run_smt_kernel(trial, "array")
    spec, policy = combo
    label = f"smt trial {trial} ({spec or 'baseline'}, {policy})"
    assert object_payload["commits"] == array_payload["commits"], (
        f"{label}: committed instruction sequences diverge between kernels"
    )
    assert object_payload["squashes"] == array_payload["squashes"], (
        f"{label}: squash sequences diverge between kernels"
    )
    assert object_payload["stats"] == array_payload["stats"], (
        f"{label}: statistics diverge between kernels"
    )
    assert object_payload["threads"] == array_payload["threads"], (
        f"{label}: per-thread attribution diverges between kernels"
    )
    assert object_payload["controllers"] == array_payload["controllers"], (
        f"{label}: controller gated-cycle counters diverge between kernels"
    )
    assert object_payload["probes"] == array_payload["probes"], (
        f"{label}: probe groups (incl. throttle residency) diverge"
    )
    assert _fingerprint(object_payload) == _fingerprint(array_payload), (
        f"{label}: full result payloads diverge between kernels"
    )


def test_smt_trials_cover_mechanisms_policies_and_checked_steppers():
    """The round-robin assignment must hit the modes that matter."""
    combos = set()
    telemetry = sanitize = False
    for trial in _SMT_TRIALS:
        spec = _SMT_MECHANISMS[trial % len(_SMT_MECHANISMS)]
        policy = _SMT_POLICIES[trial % len(_SMT_POLICIES)]
        combos.add((spec, policy))
        telemetry = telemetry or trial % 2 == 1
        sanitize = sanitize or trial % 3 == 2
    mechanisms = {spec for spec, _ in combos}
    policies = {policy for _, policy in combos}
    assert ("gating", 2) in mechanisms, "pipeline gating must be exercised"
    assert ("throttle", "C2") in mechanisms, "C2 throttling must be exercised"
    assert "confidence-gating" in policies, "the gating policy must be exercised"
    assert telemetry and sanitize, "both checked steppers must be exercised"
