"""Property test: the array and object stage kernels are interchangeable.

The golden parity sweep (``test_stage_kernel_parity.py``) pins both
kernels to 38 known fingerprints on the shipped benchmark generators.
This test goes beyond the goldens: randomized micro-programs (drawn
program shapes and seeds) on randomized core geometries are run through
*both* kernel representations, and every observable — the committed
instruction sequence, the squash sequence, the full statistics
dictionary, the power ledgers — must match bit for bit.  A fingerprint
over the canonical JSON of the whole payload guards anything the
itemised asserts miss.

Each trial is deterministic (the trial seed fixes the program, the
geometry and the mechanism), so a failure reproduces by running its
trial id alone.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import replace

import pytest

from repro.experiments.engine import make_controller
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator, ProgramShape

_TRIALS = tuple(range(8))
_INSTRUCTIONS = 1200
_WARMUP = 300

# Mechanisms drawn per trial: the empty baseline, a fetch-gating
# throttle (exercises throttled-cycle accounting), the strongest
# selection throttle, pipeline gating, and the fetch oracle (exercises
# the cycle-skip fast-forward's oracle mode).
_MECHANISMS = (
    None,
    ("throttle", "A2"),
    ("throttle", "C2"),
    ("gating", 2),
    ("oracle", "fetch"),
)


def _draw_shape(rng: random.Random) -> ProgramShape:
    """A compact randomized program shape (micro-program generator)."""
    return ProgramShape(
        num_functions=rng.randint(2, 5),
        blocks_per_function=(4, rng.randint(6, 12)),
        block_size=(2, rng.randint(4, 9)),
        p_cond=rng.uniform(0.4, 0.75),
        p_call=rng.uniform(0.02, 0.10),
        p_jump=rng.uniform(0.02, 0.12),
        loop_fraction=rng.uniform(0.15, 0.45),
        w_bad=rng.uniform(0.02, 0.20),
        w_random=rng.uniform(0.0, 0.06),
        serial_chain_fraction=rng.uniform(0.2, 0.6),
        load_chain_fraction=rng.uniform(0.2, 0.6),
        branch_load_dependence=rng.uniform(0.3, 0.8),
    )


def _draw_config(rng: random.Random):
    """A randomized core geometry on top of the Table-3 baseline."""
    base = table3_config().with_depth(rng.choice((6, 14, 28)))
    rob = rng.choice((32, 64, 128))
    return replace(
        base,
        rob_size=rob,
        iq_size=max(16, rob // 2),
        lsq_size=max(16, rob // 2),
        fetch_width=rng.choice((4, 8)),
        issue_width=rng.choice((4, 8)),
        max_taken_branches_per_cycle=rng.choice((1, 2)),
        # One trial in four runs both kernels under the sanitized and/or
        # instrumented steppers, so all four step variants (and their
        # fast-forward entry gates) get property coverage.
        sanitize=rng.random() < 0.25,
        telemetry=rng.random() < 0.25,
    )


class _CommitRecorder:
    """Observer collecting the committed and squashed event sequences."""

    def __init__(self) -> None:
        self.commits = []
        self.squashes = []

    def on_commit(self, instr, cycle: int) -> None:
        self.commits.append((instr.seq, instr.static.address, cycle))

    def on_squash(self, instr, cycle: int) -> None:
        self.squashes.append(
            (instr.seq, instr.static.address, bool(instr.on_wrong_path), cycle)
        )


def _run_kernel(trial: int, kernel: str):
    """One deterministic trial on the given kernel representation."""
    rng = random.Random(0x5EED0 + trial)
    shape = _draw_shape(rng)
    config = replace(_draw_config(rng), kernel=kernel)
    spec = rng.choice(_MECHANISMS)
    program = ProgramGenerator(shape, seed=1000 + trial, name=f"prop{trial}").generate()
    controller = make_controller(spec) if spec is not None else None
    processor = Processor(config, program, controller=controller, seed=77 + trial)
    recorder = _CommitRecorder()
    processor.observer = recorder
    stats = processor.run(_INSTRUCTIONS, warmup_instructions=_WARMUP)
    power = processor.power
    payload = {
        "commits": recorder.commits,
        "squashes": recorder.squashes,
        "stats": stats.as_dict(),
        "cycles": processor.cycle,
        "total_energy": power.total_energy(),
        "wasted_energy": power.total_wasted_energy(),
        "average_power": power.average_power(),
        "breakdown": power.breakdown(),
        "thread_attribution": power.thread_attribution(),
    }
    return payload, spec


def _fingerprint(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("trial", _TRIALS)
def test_random_micro_programs_commit_identically(trial):
    object_payload, spec = _run_kernel(trial, "object")
    array_payload, _ = _run_kernel(trial, "array")
    label = f"trial {trial} ({spec or 'baseline'})"
    # Itemised asserts first: a divergence names the first differing
    # observable instead of just a hash mismatch.
    assert object_payload["commits"] == array_payload["commits"], (
        f"{label}: committed instruction sequences diverge between kernels"
    )
    assert object_payload["squashes"] == array_payload["squashes"], (
        f"{label}: squash sequences diverge between kernels"
    )
    assert object_payload["stats"] == array_payload["stats"], (
        f"{label}: statistics diverge between kernels"
    )
    assert _fingerprint(object_payload) == _fingerprint(array_payload), (
        f"{label}: full result payloads diverge between kernels"
    )


def test_trials_cover_every_mechanism_and_a_checked_stepper():
    """The drawn trials must actually exercise the interesting modes."""
    specs = set()
    checked = False
    for trial in _TRIALS:
        rng = random.Random(0x5EED0 + trial)
        _draw_shape(rng)
        config = _draw_config(rng)
        specs.add(rng.choice(_MECHANISMS))
        checked = checked or config.sanitize or config.telemetry
    assert len(specs) >= 3, "trial draws collapse onto too few mechanisms"
    assert checked, "no trial draws a sanitized or instrumented stepper"


def test_commits_are_observed_and_nonempty():
    payload, _ = _run_kernel(0, "array")
    assert len(payload["commits"]) >= _INSTRUCTIONS
    seqs = [seq for seq, _, _ in payload["commits"]]
    assert seqs == sorted(seqs), "commit sequence must be program-ordered"
