"""Property test: the array and object stage kernels are interchangeable.

The golden parity sweep (``test_stage_kernel_parity.py``) pins both
kernels to 38 known fingerprints on the shipped benchmark generators.
This test goes beyond the goldens: randomized micro-programs (drawn
program shapes and seeds) on randomized core geometries are run through
*both* kernel representations, and every observable — the committed
instruction sequence, the squash sequence, the full statistics
dictionary, the power ledgers — must match bit for bit.  A fingerprint
over the canonical JSON of the whole payload guards anything the
itemised asserts miss.

Each trial is deterministic (the trial seed fixes the program, the
geometry and the mechanism), so a failure reproduces by running its
trial id alone.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import replace

import pytest

from repro.experiments.engine import make_controller
from repro.pipeline.config import table3_config
from repro.pipeline.processor import Processor
from repro.program.generator import ProgramGenerator, ProgramShape
from repro.smt.core import SmtProcessor
from repro.smt.policies import make_fetch_policy

_TRIALS = tuple(range(8))
_INSTRUCTIONS = 1200
_WARMUP = 300

# Mechanisms drawn per trial: the empty baseline, a fetch-gating
# throttle (exercises throttled-cycle accounting), the strongest
# selection throttle, pipeline gating, and the fetch oracle (exercises
# the cycle-skip fast-forward's oracle mode).
_MECHANISMS = (
    None,
    ("throttle", "A2"),
    ("throttle", "C2"),
    ("gating", 2),
    ("oracle", "fetch"),
)


def _draw_shape(rng: random.Random) -> ProgramShape:
    """A compact randomized program shape (micro-program generator)."""
    return ProgramShape(
        num_functions=rng.randint(2, 5),
        blocks_per_function=(4, rng.randint(6, 12)),
        block_size=(2, rng.randint(4, 9)),
        p_cond=rng.uniform(0.4, 0.75),
        p_call=rng.uniform(0.02, 0.10),
        p_jump=rng.uniform(0.02, 0.12),
        loop_fraction=rng.uniform(0.15, 0.45),
        w_bad=rng.uniform(0.02, 0.20),
        w_random=rng.uniform(0.0, 0.06),
        serial_chain_fraction=rng.uniform(0.2, 0.6),
        load_chain_fraction=rng.uniform(0.2, 0.6),
        branch_load_dependence=rng.uniform(0.3, 0.8),
    )


def _draw_config(rng: random.Random):
    """A randomized core geometry on top of the Table-3 baseline."""
    base = table3_config().with_depth(rng.choice((6, 14, 28)))
    rob = rng.choice((32, 64, 128))
    return replace(
        base,
        rob_size=rob,
        iq_size=max(16, rob // 2),
        lsq_size=max(16, rob // 2),
        fetch_width=rng.choice((4, 8)),
        issue_width=rng.choice((4, 8)),
        max_taken_branches_per_cycle=rng.choice((1, 2)),
        # One trial in four runs both kernels under the sanitized and/or
        # instrumented steppers, so all four step variants (and their
        # fast-forward entry gates) get property coverage.
        sanitize=rng.random() < 0.25,
        telemetry=rng.random() < 0.25,
    )


class _CommitRecorder:
    """Observer collecting the committed and squashed event sequences."""

    def __init__(self) -> None:
        self.commits = []
        self.squashes = []

    def on_commit(self, instr, cycle: int) -> None:
        self.commits.append((instr.seq, instr.static.address, cycle))

    def on_squash(self, instr, cycle: int) -> None:
        self.squashes.append(
            (instr.seq, instr.static.address, bool(instr.on_wrong_path), cycle)
        )


def _probe_groups(processor):
    """The kernel-independent probe groups of an instrumented run.

    The snapshot's ``skip`` block is deliberately excluded: the object
    kernel never fast-forwards, so skip telemetry differs between the
    kernels by construction while every other group must match.
    """
    if processor.probes is None:
        return None
    snapshot = processor.probes.snapshot()
    return {
        "stages": snapshot["stages"],
        "occupancy": snapshot["occupancy"],
        "throttle_residency": snapshot["throttle_residency"],
        "threads": snapshot["threads"],
    }


def _run_kernel(trial: int, kernel: str):
    """One deterministic trial on the given kernel representation."""
    rng = random.Random(0x5EED0 + trial)
    shape = _draw_shape(rng)
    config = replace(_draw_config(rng), kernel=kernel)
    spec = rng.choice(_MECHANISMS)
    program = ProgramGenerator(shape, seed=1000 + trial, name=f"prop{trial}").generate()
    controller = make_controller(spec) if spec is not None else None
    processor = Processor(config, program, controller=controller, seed=77 + trial)
    recorder = _CommitRecorder()
    processor.observer = recorder
    stats = processor.run(_INSTRUCTIONS, warmup_instructions=_WARMUP)
    power = processor.power
    payload = {
        "commits": recorder.commits,
        "squashes": recorder.squashes,
        "stats": stats.as_dict(),
        "cycles": processor.cycle,
        "probes": _probe_groups(processor),
        "total_energy": power.total_energy(),
        "wasted_energy": power.total_wasted_energy(),
        "average_power": power.average_power(),
        "breakdown": power.breakdown(),
        "thread_attribution": power.thread_attribution(),
    }
    return payload, spec


def _fingerprint(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("trial", _TRIALS)
def test_random_micro_programs_commit_identically(trial):
    object_payload, spec = _run_kernel(trial, "object")
    array_payload, _ = _run_kernel(trial, "array")
    label = f"trial {trial} ({spec or 'baseline'})"
    # Itemised asserts first: a divergence names the first differing
    # observable instead of just a hash mismatch.
    assert object_payload["commits"] == array_payload["commits"], (
        f"{label}: committed instruction sequences diverge between kernels"
    )
    assert object_payload["squashes"] == array_payload["squashes"], (
        f"{label}: squash sequences diverge between kernels"
    )
    assert object_payload["stats"] == array_payload["stats"], (
        f"{label}: statistics diverge between kernels"
    )
    assert _fingerprint(object_payload) == _fingerprint(array_payload), (
        f"{label}: full result payloads diverge between kernels"
    )


def test_trials_cover_every_mechanism_and_a_checked_stepper():
    """The drawn trials must actually exercise the interesting modes."""
    specs = set()
    checked = False
    for trial in _TRIALS:
        rng = random.Random(0x5EED0 + trial)
        _draw_shape(rng)
        config = _draw_config(rng)
        specs.add(rng.choice(_MECHANISMS))
        checked = checked or config.sanitize or config.telemetry
    assert len(specs) >= 3, "trial draws collapse onto too few mechanisms"
    assert checked, "no trial draws a sanitized or instrumented stepper"


def test_commits_are_observed_and_nonempty():
    payload, _ = _run_kernel(0, "array")
    assert len(payload["commits"]) >= _INSTRUCTIONS
    seqs = [seq for seq, _, _ in payload["commits"]]
    assert seqs == sorted(seqs), "commit sequence must be program-ordered"


# ---------------------------------------------------------------------------
# Run-batch equivalence: block-granular fetch admission is invisible.
#
# The run-batched front end (REPRO_RUN_BATCH / config.run_batch) admits
# whole precompiled straight-line runs en bloc; these trials target the
# program shapes where that path's edge cases live.  Wrong-path-heavy
# shapes (dense mispredictions) stress the wrong-path packet batch and
# its interaction with recovery; short-block-heavy shapes (1-2
# instruction blocks) keep every run below the admission threshold so
# the per-instruction fallback and partial-admission splits dominate.
# Each trial runs the array kernel with batching on and off plus the
# pinned object-kernel reference, and all three must agree bit for bit.
# ---------------------------------------------------------------------------

_RUN_BATCH_TRIALS = tuple(range(6))
_RUN_BATCH_STYLES = ("wrong-path-heavy", "short-block-heavy")


def _draw_run_batch_shape(rng: random.Random, style: str) -> ProgramShape:
    """A program shape aimed at the run-batch path's edge cases."""
    if style == "wrong-path-heavy":
        # Dense, badly-predicted control flow: fetch spends much of its
        # time on wrong-path packets and recovery truncates runs often.
        return ProgramShape(
            num_functions=rng.randint(2, 4),
            blocks_per_function=(4, rng.randint(6, 10)),
            block_size=(2, rng.randint(5, 10)),
            p_cond=rng.uniform(0.55, 0.72),
            p_call=rng.uniform(0.04, 0.10),
            p_jump=rng.uniform(0.02, 0.08),
            loop_fraction=rng.uniform(0.15, 0.40),
            w_bad=rng.uniform(0.30, 0.55),
            w_random=rng.uniform(0.08, 0.15),
            serial_chain_fraction=rng.uniform(0.2, 0.6),
            load_chain_fraction=rng.uniform(0.2, 0.6),
            branch_load_dependence=rng.uniform(0.4, 0.8),
        )
    # Short-block-heavy: every straight-line run is 1-2 instructions, so
    # nothing clears the batch admission threshold and the fallback path
    # (plus its per-record template peeks) carries the whole program.
    return ProgramShape(
        num_functions=rng.randint(2, 5),
        blocks_per_function=(5, rng.randint(8, 14)),
        block_size=(1, 2),
        p_cond=rng.uniform(0.50, 0.70),
        p_call=rng.uniform(0.03, 0.08),
        p_jump=rng.uniform(0.05, 0.12),
        loop_fraction=rng.uniform(0.2, 0.5),
        w_bad=rng.uniform(0.05, 0.25),
        w_random=rng.uniform(0.0, 0.08),
        serial_chain_fraction=rng.uniform(0.2, 0.6),
        load_chain_fraction=rng.uniform(0.2, 0.6),
        branch_load_dependence=rng.uniform(0.3, 0.8),
    )


def _run_batch_trial(trial: int, kernel: str, run_batch: bool):
    """One deterministic run-batch trial on the given kernel/batch mode."""
    rng = random.Random(0xBA7C4 + trial)
    style = _RUN_BATCH_STYLES[trial % len(_RUN_BATCH_STYLES)]
    shape = _draw_run_batch_shape(rng, style)
    config = replace(_draw_config(rng), kernel=kernel, run_batch=run_batch)
    spec = rng.choice(_MECHANISMS)
    program = ProgramGenerator(
        shape, seed=3000 + trial, name=f"batch{trial}"
    ).generate()
    controller = make_controller(spec) if spec is not None else None
    processor = Processor(config, program, controller=controller, seed=55 + trial)
    recorder = _CommitRecorder()
    processor.observer = recorder
    stats = processor.run(_INSTRUCTIONS, warmup_instructions=_WARMUP)
    payload = {
        "commits": recorder.commits,
        "squashes": recorder.squashes,
        "stats": stats.as_dict(),
        "cycles": processor.cycle,
        "probes": _probe_groups(processor),
        "total_energy": processor.power.total_energy(),
        "breakdown": processor.power.breakdown(),
    }
    return payload, (style, spec)


@pytest.mark.parametrize("trial", _RUN_BATCH_TRIALS)
def test_run_batching_is_invisible_on_adversarial_shapes(trial):
    batched, combo = _run_batch_trial(trial, "array", True)
    unbatched, _ = _run_batch_trial(trial, "array", False)
    reference, _ = _run_batch_trial(trial, "object", True)
    style, spec = combo
    label = f"run-batch trial {trial} ({style}, {spec or 'baseline'})"
    assert batched["commits"] == unbatched["commits"], (
        f"{label}: committed sequences diverge with batching on vs off"
    )
    assert batched["squashes"] == unbatched["squashes"], (
        f"{label}: squash sequences diverge with batching on vs off"
    )
    assert batched["stats"] == unbatched["stats"], (
        f"{label}: statistics diverge with batching on vs off"
    )
    assert _fingerprint(batched) == _fingerprint(unbatched), (
        f"{label}: full payloads diverge with batching on vs off"
    )
    assert _fingerprint(batched) == _fingerprint(reference), (
        f"{label}: batched array kernel diverges from the object reference"
    )


def test_run_batch_trials_cover_both_styles_and_wrong_path_density():
    """The adversarial draws must hit both styles and real mispredicts."""
    styles = {
        _RUN_BATCH_STYLES[trial % len(_RUN_BATCH_STYLES)]
        for trial in _RUN_BATCH_TRIALS
    }
    assert styles == set(_RUN_BATCH_STYLES)
    payload, _ = _run_batch_trial(0, "array", True)
    assert payload["stats"]["fetched_wrong_path"] > 0, (
        "the wrong-path-heavy shape must actually fetch wrong-path work"
    )


# ---------------------------------------------------------------------------
# SMT equivalence: the fast-forward's machine-wide quiescence rules.
#
# A 2-thread core on the array kernel (which may skip) must match the
# object kernel (which never skips) bit for bit — including per-thread
# attribution, controller counters, the policy's gated-cycle counters
# and the probe bus's throttle-level residency.  Mechanism, fetch policy
# and stepper variant are assigned round-robin over the trials so every
# interesting combination is guaranteed coverage (no draw collapse).
# ---------------------------------------------------------------------------

_SMT_TRIALS = tuple(range(6))
_SMT_MECHANISMS = (None, ("throttle", "C2"), ("throttle", "A2"), ("gating", 2))
_SMT_POLICIES = ("round-robin", "icount", "confidence-gating")


def _run_smt_kernel(trial: int, kernel: str):
    """One deterministic 2-thread trial on the given kernel."""
    rng = random.Random(0x5A1D0 + trial)
    shapes = (_draw_shape(rng), _draw_shape(rng))
    config = replace(
        _draw_config(rng),
        kernel=kernel,
        # Deterministic stepper coverage: half the trials instrumented,
        # a third sanitized (trial 5 runs both).
        telemetry=trial % 2 == 1,
        sanitize=trial % 3 == 2,
    )
    spec = _SMT_MECHANISMS[trial % len(_SMT_MECHANISMS)]
    policy = _SMT_POLICIES[trial % len(_SMT_POLICIES)]
    programs = [
        ProgramGenerator(
            shape, seed=2000 + 10 * trial + index, name=f"smt{trial}t{index}"
        ).generate()
        for index, shape in enumerate(shapes)
    ]
    controllers = (
        [make_controller(spec) for _ in programs] if spec is not None else None
    )
    processor = SmtProcessor(
        config,
        programs,
        seeds=[88 + trial, 880 + trial],
        controllers=controllers,
        fetch_policy=make_fetch_policy(policy),
    )
    recorder = _CommitRecorder()
    processor.observer = recorder
    stats = processor.run(_INSTRUCTIONS, warmup_instructions=_WARMUP)
    power = processor.power
    payload = {
        "commits": recorder.commits,
        "squashes": recorder.squashes,
        "stats": stats.as_dict(),
        "cycles": processor.cycle,
        "threads": [
            {
                "committed": thread.committed,
                "fetched": thread.fetched,
                "fetched_wrong_path": thread.fetched_wrong_path,
                "squashed": thread.squashed,
                "policy_gated_cycles": thread.policy_gated_cycles,
            }
            for thread in processor.threads
        ],
        "controllers": [
            getattr(thread.controller, "gated_cycles", None)
            for thread in processor.threads
        ],
        "probes": _probe_groups(processor),
        "total_energy": power.total_energy(),
        "wasted_energy": power.total_wasted_energy(),
        "average_power": power.average_power(),
        "breakdown": power.breakdown(),
        "thread_attribution": power.thread_attribution(),
    }
    return payload, (spec, policy)


@pytest.mark.parametrize("trial", _SMT_TRIALS)
def test_random_smt_micro_programs_commit_identically(trial):
    object_payload, combo = _run_smt_kernel(trial, "object")
    array_payload, _ = _run_smt_kernel(trial, "array")
    spec, policy = combo
    label = f"smt trial {trial} ({spec or 'baseline'}, {policy})"
    assert object_payload["commits"] == array_payload["commits"], (
        f"{label}: committed instruction sequences diverge between kernels"
    )
    assert object_payload["squashes"] == array_payload["squashes"], (
        f"{label}: squash sequences diverge between kernels"
    )
    assert object_payload["stats"] == array_payload["stats"], (
        f"{label}: statistics diverge between kernels"
    )
    assert object_payload["threads"] == array_payload["threads"], (
        f"{label}: per-thread attribution diverges between kernels"
    )
    assert object_payload["controllers"] == array_payload["controllers"], (
        f"{label}: controller gated-cycle counters diverge between kernels"
    )
    assert object_payload["probes"] == array_payload["probes"], (
        f"{label}: probe groups (incl. throttle residency) diverge"
    )
    assert _fingerprint(object_payload) == _fingerprint(array_payload), (
        f"{label}: full result payloads diverge between kernels"
    )


def test_smt_trials_cover_mechanisms_policies_and_checked_steppers():
    """The round-robin assignment must hit the modes that matter."""
    combos = set()
    telemetry = sanitize = False
    for trial in _SMT_TRIALS:
        spec = _SMT_MECHANISMS[trial % len(_SMT_MECHANISMS)]
        policy = _SMT_POLICIES[trial % len(_SMT_POLICIES)]
        combos.add((spec, policy))
        telemetry = telemetry or trial % 2 == 1
        sanitize = sanitize or trial % 3 == 2
    mechanisms = {spec for spec, _ in combos}
    policies = {policy for _, policy in combos}
    assert ("gating", 2) in mechanisms, "pipeline gating must be exercised"
    assert ("throttle", "C2") in mechanisms, "C2 throttling must be exercised"
    assert "confidence-gating" in policies, "the gating policy must be exercised"
    assert telemetry and sanitize, "both checked steppers must be exercised"
