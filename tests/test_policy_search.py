"""Policy-space enumeration and Pareto analysis."""

import pytest

from repro.core.levels import BandwidthLevel
from repro.errors import ExperimentError
from repro.experiments.policy_search import (
    PolicyPoint,
    enumerate_policies,
    format_points,
    pareto_frontier,
    search_policies,
)


def test_enumeration_excludes_null_policy():
    for policy in enumerate_policies():
        lc = policy.action_for.__self__._actions  # noqa: SLF001 - test peeks
        assert not (
            policy.action_for(list(lc)[2]).is_null
            and policy.action_for(list(lc)[3]).is_null
        )


def test_enumeration_vlc_never_gentler_than_lc():
    from repro.confidence.base import ConfidenceLevel

    for policy in enumerate_policies():
        lc = policy.action_for(ConfidenceLevel.LC)
        vlc = policy.action_for(ConfidenceLevel.VLC)
        assert vlc.fetch >= lc.fetch
        assert vlc.decode >= lc.decode
        assert vlc.no_select or not lc.no_select


def test_enumeration_fetch_only_subspace():
    policies = enumerate_policies(include_decode=False, include_no_select=False)
    from repro.confidence.base import ConfidenceLevel

    for policy in policies:
        for level in (ConfidenceLevel.LC, ConfidenceLevel.VLC):
            action = policy.action_for(level)
            assert action.decode is BandwidthLevel.FULL
            assert not action.no_select
    # 4 fetch levels for LC x >= levels for VLC, minus the null pair: 9.
    assert len(policies) == 9


def test_enumeration_contains_the_paper_best():
    """C2 (LC fetch/4 + noselect, VLC stall + noselect-compatible) must be
    in the enumerated space."""
    names = {policy.name for policy in enumerate_policies()}
    assert "lc[fetch/4+noselect]-vlc[fetch=0+noselect]" in names


def _point(name, speedup, energy):
    return PolicyPoint(
        policy_name=name,
        speedup=speedup,
        power_savings_pct=0.0,
        energy_savings_pct=energy,
        ed_improvement_pct=0.0,
        ed2_improvement_pct=0.0,
    )


def test_dominance_requires_strict_improvement():
    a = _point("a", 0.95, 10.0)
    b = _point("b", 0.95, 10.0)
    assert not a.dominates(b)
    assert not b.dominates(a)


def test_pareto_frontier_filters_dominated():
    good = _point("good", 0.98, 12.0)
    dominated = _point("dominated", 0.95, 10.0)
    tradeoff = _point("tradeoff", 0.99, 8.0)
    frontier = pareto_frontier([good, dominated, tradeoff])
    names = {p.policy_name for p in frontier}
    assert names == {"good", "tradeoff"}


def test_pareto_frontier_sorted_by_speedup():
    points = [_point(str(i), 0.9 + i / 100, 12.0 - i) for i in range(4)]
    frontier = pareto_frontier(points)
    speeds = [p.speedup for p in frontier]
    assert speeds == sorted(speeds, reverse=True)


def test_pareto_frontier_rejects_empty():
    with pytest.raises(ExperimentError):
        pareto_frontier([])


def test_format_points_orders_by_ed():
    a = _point("worse", 0.9, 5.0)
    b = _point("better", 0.95, 8.0)
    object.__setattr__(a, "ed_improvement_pct", 1.0)
    object.__setattr__(b, "ed_improvement_pct", 5.0)
    text = format_points([a, b])
    assert text.index("better") < text.index("worse")


def test_search_evaluates_small_space():
    policies = enumerate_policies(include_decode=False, include_no_select=False)
    points = search_policies(
        benchmarks=("gzip",),
        instructions=1_500,
        policies=policies[:3],
    )
    assert len(points) == 3
    for point in points:
        assert 0.2 < point.speedup <= 1.2
    frontier = pareto_frontier(points)
    assert frontier
