"""Tests for the workload suite and trace utilities."""

import pytest

from repro.errors import WorkloadError
from repro.program.walker import TruePathOracle
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    benchmark_program,
    benchmark_spec,
    load_suite,
)
from repro.workloads.trace import TraceReader, TraceRecorder
from repro.program.generator import ProgramShape


def test_suite_has_the_papers_eight_benchmarks():
    assert set(BENCHMARK_NAMES) == {
        "compress", "gcc", "go", "bzip2", "crafty", "gzip", "parser", "twolf"
    }


def test_suite_reference_data_matches_table2():
    assert benchmark_spec("go").target_miss_rate == pytest.approx(0.197)
    assert benchmark_spec("parser").target_miss_rate == pytest.approx(0.068)
    assert benchmark_spec("compress").suite == "spec95"
    assert benchmark_spec("bzip2").suite == "spec2000"


def test_unknown_benchmark_raises():
    with pytest.raises(WorkloadError):
        benchmark_spec("doom")


def test_programs_are_deterministic():
    a = benchmark_program("gzip")
    b = benchmark_program("gzip")
    assert len(a.blocks) == len(b.blocks)
    assert a.static_instruction_count() == b.static_instruction_count()


def test_load_suite_returns_all():
    suite = load_suite()
    assert list(suite) == BENCHMARK_NAMES


def test_workload_spec_validation():
    shape = ProgramShape()
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="", shape=shape, target_miss_rate=0.1, branch_density=0.1)
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="x", shape=shape, target_miss_rate=0.0, branch_density=0.1)
    with pytest.raises(WorkloadError):
        WorkloadSpec(name="x", shape=shape, target_miss_rate=0.1, branch_density=1.5)


def test_trace_record_and_replay_roundtrip(tmp_path, fresh_program):
    oracle = TruePathOracle(fresh_program, seed=1)
    recorder = TraceRecorder(oracle)
    records = recorder.record(500)
    assert len(records) == 500
    branches = [r for r in records if r.is_cond_branch]
    assert branches

    fresh_program.reset_behaviors()
    path = tmp_path / "trace.txt"
    oracle2 = TruePathOracle(fresh_program, seed=1)
    TraceRecorder(oracle2).record_to_file(str(path), 500)

    replayed = list(TraceReader(str(path)))
    assert len(replayed) == 500
    for memory_record, file_record in zip(records, replayed):
        assert memory_record.address == file_record.address
        assert memory_record.opcode == file_record.opcode
        assert memory_record.taken == file_record.taken
        assert memory_record.mem_address == file_record.mem_address


def test_trace_reader_rejects_malformed(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("only three fields here\n")
    with pytest.raises(WorkloadError):
        list(TraceReader(str(path)))
