"""The declarative study layer: registry, compilation, execution, CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.scheduler import SweepScheduler
from repro.studies import (
    StudyContext,
    StudySpec,
    all_studies,
    get_study,
    register,
    run_study,
    study_names,
)
from repro.studies.library import (
    campaign_study,
    grid_study,
    mix4_grid_study,
    smt_mix_study,
)

_CTX = StudyContext(benchmarks=("gzip",), instructions=900, warmup=200)


# --- registry ----------------------------------------------------------------

def test_registry_contains_the_expected_studies():
    names = study_names()
    for expected in (
        "figure1", "figure3", "figure4", "figure5", "figure6", "figure7",
        "table1", "estimator-swap", "escalation-rule", "gating-threshold",
        "clock-gating", "mshr", "campaign", "confidence-throttle-cross",
        "smt-mix2-branchy", "smt-mix4-diverse", "mix4-grid", "smt-sharing",
        "policy-frontier",
    ):
        assert expected in names, expected


def test_get_study_rejects_unknown_names_with_choices():
    with pytest.raises(ExperimentError) as excinfo:
        get_study("nonexistent")
    assert "figure3" in str(excinfo.value)


def test_register_rejects_duplicate_names():
    spec = get_study("figure1")
    with pytest.raises(ExperimentError):
        register(spec)


def test_grid_shape_is_declared():
    assert get_study("figure3").grid() == "mechanism[7] x benchmark[8]"


# --- compilation -------------------------------------------------------------

def test_grid_study_compiles_baseline_plus_experiments():
    plan = get_study("figure1").plan(_CTX)
    # 1 benchmark x (baseline + 3 oracle mechanisms).
    assert len(plan.cells) == 4
    assert plan.keys[0] == ("baseline", "gzip")
    assert {key[0] for key in plan.keys} == {
        "baseline", "oracle-fetch", "oracle-decode", "oracle-select"
    }


def test_context_benchmarks_flow_into_every_cell():
    plan = get_study("confidence-throttle-cross").plan(_CTX)
    assert {cell.benchmark for cell in plan.cells} == {"gzip"}
    assert all(cell.instructions == 900 for cell in plan.cells)
    assert all(cell.warmup == 200 for cell in plan.cells)


def test_campaign_study_respects_context_seeds():
    study = campaign_study({"A5": ("throttle", "A5")})
    plan = study.plan(StudyContext(benchmarks=("gzip",), seeds=2,
                                   instructions=900))
    # 2 variants x (baseline + A5).
    assert len(plan.cells) == 4
    with pytest.raises(ExperimentError):
        study.plan(StudyContext(seeds=0))


def test_smt_mix_study_compiles_mix_plus_references():
    plan = smt_mix_study("mix2-branchy").plan(_CTX)
    assert len(plan.cells) == 3  # the mix + one reference per thread
    assert plan.keys[0] == ("mix",)


def test_mix4_grid_enumerates_references_once_per_mix():
    plan = mix4_grid_study(mixes=("mix4-diverse",)).plan(
        StudyContext(instructions=400, warmup=100)
    )
    alone = [key for key in plan.keys if key[0] == "alone"]
    smt = [key for key in plan.keys if key[0] == "smt"]
    assert len(alone) == 4  # one per thread, shared across policies
    assert len(smt) == 3  # one cell per fetch policy


def test_plan_rejects_mismatched_keys():
    from repro.studies.spec import StudyPlan

    with pytest.raises(ExperimentError):
        StudyPlan(cells=[1, 2], keys=["only-one"])


# --- execution ---------------------------------------------------------------

@pytest.fixture(scope="module")
def figure1_run():
    return run_study(get_study("figure1"), _CTX)


def test_run_study_artifact_and_render(figure1_run):
    assert set(figure1_run.artifact.rows) == {
        "oracle-fetch", "oracle-decode", "oracle-select"
    }
    text = figure1_run.render()
    assert text.startswith("figure1: suite averages")
    # Deterministic: a rerun renders byte-identically.
    assert run_study(get_study("figure1"), _CTX).render() == text


def test_run_study_progress_streams_every_cell(figure1_run):
    ticks = []
    run = run_study(
        get_study("figure1"), _CTX,
        executor=SweepScheduler(jobs=2, batch_cells=1),
        progress=lambda done, total: ticks.append((done, total)),
    )
    assert ticks == [(i + 1, 4) for i in range(4)]
    assert run.render() == figure1_run.render()


def test_custom_study_roundtrip():
    study = grid_study("adhoc-grid", {"A5": ("throttle", "A5")})
    run = run_study(study, _CTX)
    assert list(run.artifact.rows["A5"]) == ["gzip"]
    assert study.to_csv(run.artifact).startswith("figure,experiment,benchmark")
    payload = json.loads(study.to_json(run.artifact))
    assert payload["figure"] == "adhoc-grid"


def test_smt_study_runs_through_an_experiment_runner():
    from repro.experiments.runner import ExperimentRunner

    runner = ExperimentRunner(instructions=600, warmup=150)
    run = run_study(smt_mix_study("mix2-twins"), _CTX, executor=runner)
    assert run.artifact["mix"].nthreads == 2
    assert len(run.artifact["alone"]) == 2
    # A rerun is served from the runner's memo.
    executed = runner.engine.executed
    run_study(smt_mix_study("mix2-twins"), _CTX, executor=runner)
    assert runner.engine.executed == executed


def test_with_options_overrides_without_mutating():
    study = get_study("figure1")
    tweaked = study.with_options(benchmarks=("go",))
    assert tweaked.options["benchmarks"] == ("go",)
    assert study.options["benchmarks"] != ("go",)
    assert isinstance(tweaked, StudySpec)


def test_all_studies_is_a_copy():
    studies = all_studies()
    studies.pop("figure1")
    assert "figure1" in study_names()


# --- CLI ---------------------------------------------------------------------

def test_cli_study_list(capsys):
    from repro.cli import main

    assert main(["study", "list"]) == 0
    out = capsys.readouterr().out
    assert "mix4-grid" in out
    assert "mechanism[7] x benchmark[8]" in out


def test_cli_study_run_with_exports(tmp_path, capsys):
    from repro.cli import main

    csv_path = tmp_path / "study.csv"
    code = main([
        "study", "run", "estimator-swap",
        "--benchmarks", "gzip",
        "--instructions", "900", "--warmup", "200",
        "--jobs", "2",
        "--cache-dir", str(tmp_path / "cache"),
        "--csv", str(csv_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "estimator-swap: suite averages" in out
    assert csv_path.read_text().startswith("figure,experiment,benchmark")


def test_cli_study_run_warm_rerun_is_byte_identical(tmp_path, capsys):
    from repro.cli import main

    argv = [
        "study", "run", "gating-threshold", "clock-gating",
        "--benchmarks", "gzip",
        "--instructions", "900", "--warmup", "200",
        "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == cold


def test_cli_study_rejects_unsupported_export_before_running(tmp_path):
    from repro.cli import main

    # clock-gating has no CSV export; the refusal must come before any
    # simulation (instant even though no tiny run lengths are passed).
    with pytest.raises(SystemExit) as excinfo:
        main(["study", "run", "clock-gating", "--csv", str(tmp_path / "x.csv")])
    assert "no CSV export" in str(excinfo.value)


def test_cli_study_rejects_unknown_name():
    from repro.cli import main

    with pytest.raises(ExperimentError):
        main(["study", "run", "nonexistent"])


def test_cli_study_usage():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["study"])
    with pytest.raises(SystemExit):
        main(["study", "run"])


def test_cli_cache_info_and_prune(tmp_path, capsys):
    from repro.cli import main

    cache_dir = tmp_path / "cache"
    assert main([
        "run", "gzip", "A5", "--instructions", "900", "--warmup", "200",
        "--cache-dir", str(cache_dir),
    ]) == 0
    capsys.readouterr()

    assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries       2" in out

    assert main([
        "cache", "prune", "--cache-dir", str(cache_dir), "--days", "0"
    ]) == 0
    assert "pruned 2 entries" in capsys.readouterr().out
    assert main(["cache", "info", "--cache-dir", str(cache_dir)]) == 0
    assert "entries       0" in capsys.readouterr().out


def test_cache_prune_sweeps_orphaned_tmp_files(tmp_path):
    from repro.experiments.engine import ResultCache

    cache = ResultCache(str(tmp_path))
    orphan = tmp_path / "deadbeef.json.tmp.1234"
    orphan.write_text("torn write")
    assert cache.prune(0) == 0  # no real entries dropped...
    assert not orphan.exists()  # ...but the orphan is swept


def test_cli_cache_requires_a_directory(monkeypatch):
    from repro.cli import main

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    with pytest.raises(SystemExit):
        main(["cache", "info"])
