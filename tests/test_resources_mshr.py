"""Miss-status register behaviour of the functional-unit pool."""

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass
from repro.pipeline.config import ProcessorConfig, table3_config
from repro.pipeline.resources import FunctionalUnitPool


def _pool(**overrides) -> FunctionalUnitPool:
    return FunctionalUnitPool(replace(table3_config(), **overrides))


def test_mshr_starts_free():
    pool = _pool(mshr_count=4)
    assert pool.mshr_free
    assert pool.mshr_busy_count == 0


def test_hold_mshr_occupies_until_release_cycle():
    pool = _pool(mshr_count=1)
    pool.hold_mshr(until_cycle=10)
    pool.new_cycle(5)
    assert not pool.mshr_free
    pool.new_cycle(10)
    assert pool.mshr_free


def test_load_issue_blocked_without_free_mshr():
    pool = _pool(mshr_count=1)
    pool.new_cycle(0)
    pool.hold_mshr(until_cycle=100)
    pool.new_cycle(1)
    assert not pool.try_claim(OpClass.MEM_READ)


def test_store_issue_not_gated_by_mshrs():
    # Stores retire through the write buffer; only loads demand an MSHR.
    pool = _pool(mshr_count=1)
    pool.new_cycle(0)
    pool.hold_mshr(until_cycle=100)
    pool.new_cycle(1)
    assert pool.try_claim(OpClass.MEM_WRITE)


def test_alu_issue_unaffected_by_mshr_pressure():
    pool = _pool(mshr_count=1)
    pool.hold_mshr(until_cycle=100)
    pool.new_cycle(1)
    assert pool.try_claim(OpClass.INT_ALU)


def test_mshrs_release_in_completion_order():
    pool = _pool(mshr_count=2)
    pool.hold_mshr(until_cycle=5)
    pool.hold_mshr(until_cycle=20)
    pool.new_cycle(6)
    assert pool.mshr_busy_count == 1
    assert pool.mshr_free
    pool.new_cycle(21)
    assert pool.mshr_busy_count == 0


def test_mem_ports_still_cap_per_cycle_issue():
    pool = _pool(mshr_count=64)
    pool.new_cycle(0)
    claimed = sum(pool.try_claim(OpClass.MEM_READ) for _ in range(5))
    assert claimed == table3_config().mem_ports


def test_mshr_count_must_be_positive():
    with pytest.raises(ConfigurationError):
        ProcessorConfig(mshr_count=0)


def test_squash_does_not_recall_fills():
    """The pool has no cancellation interface at all: a fill, once started,
    runs to its release cycle.  (This is the §3 resource-waste channel.)"""
    pool = _pool(mshr_count=1)
    pool.hold_mshr(until_cycle=50)
    # There is intentionally no method to remove the entry early.
    assert not hasattr(pool, "cancel_mshr")
    pool.new_cycle(49)
    assert not pool.mshr_free
