"""The escalate-only rule (§4.2) and its ablation in SelectiveThrottler."""

from repro.confidence.base import ConfidenceLevel
from repro.core.levels import BandwidthLevel
from repro.core.policy import ThrottleAction, ThrottlePolicy
from repro.core.throttler import SelectiveThrottler
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import Opcode
from repro.isa.instruction import StaticInstruction


def _policy() -> ThrottlePolicy:
    return ThrottlePolicy(
        "test",
        lc=ThrottleAction(fetch=BandwidthLevel.QUARTER),
        vlc=ThrottleAction(fetch=BandwidthLevel.STALL),
    )


def _branch(seq: int) -> DynamicInstruction:
    return DynamicInstruction(
        seq, StaticInstruction(seq * 4, Opcode.BR_COND, sources=(1,))
    )


def _stalled_everywhere(throttler: SelectiveThrottler) -> bool:
    return all(not throttler.fetch_allowed(cycle) for cycle in range(8))


def test_escalate_only_keeps_most_restrictive():
    throttler = SelectiveThrottler(_policy())
    vlc = _branch(1)
    lc = _branch(2)
    throttler.on_branch_fetched(vlc, ConfidenceLevel.VLC)
    assert _stalled_everywhere(throttler)
    # A later, *less* restrictive LC trigger must not relax the stall.
    throttler.on_branch_fetched(lc, ConfidenceLevel.LC)
    assert _stalled_everywhere(throttler)


def test_ablation_latest_wins_deescalates():
    throttler = SelectiveThrottler(_policy(), escalate_only=False)
    vlc = _branch(1)
    lc = _branch(2)
    throttler.on_branch_fetched(vlc, ConfidenceLevel.VLC)
    assert _stalled_everywhere(throttler)
    throttler.on_branch_fetched(lc, ConfidenceLevel.LC)
    # Latest trigger is fetch/4: one in four cycles is active again.
    assert any(throttler.fetch_allowed(cycle) for cycle in range(8))


def test_latest_wins_release_falls_back_to_remaining_token():
    throttler = SelectiveThrottler(_policy(), escalate_only=False)
    vlc = _branch(1)
    lc = _branch(2)
    throttler.on_branch_fetched(vlc, ConfidenceLevel.VLC)
    throttler.on_branch_fetched(lc, ConfidenceLevel.LC)
    throttler.on_branch_resolved(lc)
    # Only the VLC token remains; it dictates the level again.
    assert _stalled_everywhere(throttler)


def test_escalation_release_restores_weaker_level():
    throttler = SelectiveThrottler(_policy())
    lc = _branch(1)
    vlc = _branch(2)
    throttler.on_branch_fetched(lc, ConfidenceLevel.LC)
    throttler.on_branch_fetched(vlc, ConfidenceLevel.VLC)
    assert _stalled_everywhere(throttler)
    throttler.on_branch_resolved(vlc)
    # The LC token remains armed: quarter bandwidth, not full.
    active = sum(throttler.fetch_allowed(cycle) for cycle in range(8))
    assert 0 < active < 8


def test_all_released_returns_to_full_bandwidth():
    for escalate in (True, False):
        throttler = SelectiveThrottler(_policy(), escalate_only=escalate)
        branch = _branch(3)
        throttler.on_branch_fetched(branch, ConfidenceLevel.VLC)
        throttler.on_branch_squashed(branch)
        assert all(throttler.fetch_allowed(cycle) for cycle in range(8))


def test_latest_wins_no_select_scope():
    policy = ThrottlePolicy(
        "sel",
        lc=ThrottleAction(no_select=True),
        vlc=ThrottleAction(fetch=BandwidthLevel.STALL),
    )
    throttler = SelectiveThrottler(policy, escalate_only=False)
    lc = _branch(5)
    throttler.on_branch_fetched(lc, ConfidenceLevel.LC)
    younger = _branch(9)
    older = _branch(2)
    assert throttler.blocks_selection(younger)
    assert not throttler.blocks_selection(older)
    # A later VLC trigger (no no_select action) supersedes in latest-wins.
    vlc = _branch(7)
    throttler.on_branch_fetched(vlc, ConfidenceLevel.VLC)
    assert not throttler.blocks_selection(younger)
