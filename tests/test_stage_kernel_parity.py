"""Golden-fingerprint parity sweep for the stage-pipeline kernel.

The stage refactor (``pipeline/stages/``) must be *bit-identical* to the
monolithic pre-refactor core: every figure/table configuration and an SMT
mix is simulated at reduced length and its full result payload — stats,
power, breakdown, throttling counters — is hashed and compared against
goldens captured on the pre-refactor core.

Regenerate the goldens (only legitimate when a PR deliberately changes
simulator behaviour, never for a pure refactor)::

    PYTHONPATH=src python tests/test_stage_kernel_parity.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Tuple

import pytest

from repro.experiments.engine import (
    SimCell,
    SmtCell,
    result_to_dict,
    simulate,
    simulate_smt,
)
from repro.pipeline.config import table3_config
from repro.smt.metrics import smt_result_to_dict

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "goldens", "stage_kernel_fingerprints.json"
)

# Short runs: bit-parity does not need statistical weight, it needs every
# code path (all throttle levels, gating, oracle modes, depth/size sweeps,
# wrong-path squashes) to execute.
_INSTRUCTIONS = 2500
_WARMUP = 600

# The two calibration extremes cross every mechanism; the other six
# benchmarks each appear once so all eight program generators are covered.
_CROSS_BENCHMARKS = ("go", "parser")
_SOLO_BENCHMARKS = ("gcc", "compress", "gzip", "twolf", "bzip2", "crafty")

_MECHANISMS: Tuple[Tuple, ...] = (
    ("baseline",),
    # One experiment per figure family (fetch A, decode B, selection C),
    # the strongest and a mid policy of each.
    ("throttle", "A2"),
    ("throttle", "A5"),
    ("throttle", "B4"),
    ("throttle", "B8"),
    ("throttle", "C2"),
    ("throttle", "C6"),
    # The escalation-rule ablation and the estimator swap.
    ("throttle-noescalate", "C2"),
    ("throttle", "C2", "jrs"),
    # Pipeline Gating (figures' A7/B9/C7) and the Figure-1 oracles.
    ("gating", 2),
    ("oracle", "fetch"),
    ("oracle", "decode"),
    ("oracle", "select"),
)

_DEPTHS = (6, 14, 28)  # Figure 6 endpoints + baseline
_TABLE_SIZES_KB = (8, 64)  # Figure 7 endpoints


def sweep_cells() -> List[SimCell]:
    """Every single-thread cell of the parity sweep, in a fixed order."""
    cells: List[SimCell] = []
    base = table3_config()
    for benchmark in _CROSS_BENCHMARKS:
        for spec in _MECHANISMS:
            cells.append(
                SimCell(
                    benchmark=benchmark,
                    controller_spec=spec,
                    config=base,
                    instructions=_INSTRUCTIONS,
                    warmup=_WARMUP,
                )
            )
    for benchmark in _SOLO_BENCHMARKS:
        cells.append(
            SimCell(
                benchmark=benchmark,
                controller_spec=("baseline",),
                config=base,
                instructions=_INSTRUCTIONS,
                warmup=_WARMUP,
            )
        )
    for depth in _DEPTHS:
        cells.append(
            SimCell(
                benchmark="go",
                controller_spec=("throttle", "C2"),
                config=base.with_depth(depth),
                instructions=_INSTRUCTIONS,
                warmup=_WARMUP,
            )
        )
    for total_kb in _TABLE_SIZES_KB:
        cells.append(
            SimCell(
                benchmark="parser",
                controller_spec=("throttle", "C2"),
                config=base.with_table_sizes(total_kb),
                instructions=_INSTRUCTIONS,
                warmup=_WARMUP,
            )
        )
    # The depth-14 sweep point equals the baseline-config C2 cell of the
    # mechanism cross; keep one instance of each distinct cell.
    unique: List[SimCell] = []
    seen = set()
    for cell in cells:
        key = _cell_key(cell)
        if key not in seen:
            seen.add(key)
            unique.append(cell)
    return unique


def sweep_smt_cells() -> List[SmtCell]:
    """The SMT mixes of the parity sweep (both sharing modes)."""
    base = table3_config()
    return [
        SmtCell(
            mix="mix2-branchy",
            config=base,
            instructions=1200,
            warmup=300,
            policy="confidence-gating",
            sharing="partitioned",
        ),
        SmtCell(
            mix="mix2-skewed",
            config=base,
            instructions=1200,
            warmup=300,
            policy="icount",
            sharing="shared",
        ),
    ]


def _cell_key(cell) -> str:
    if isinstance(cell, SmtCell):
        return f"smt:{cell.mix}:{cell.policy}:{cell.sharing}"
    config = cell.config
    tag = f"d{config.pipeline_depth}k{config.bpred_size_kb}"
    spec = "-".join(str(part) for part in cell.controller_spec)
    return f"{cell.benchmark}:{spec}:{tag}"


def _fingerprint(payload: Dict) -> str:
    """SHA-256 over the canonical JSON of a full result payload.

    ``repr``-exact floats via ``json.dumps``: any bit-level change to a
    statistic, an energy accumulator or a breakdown share changes the hash.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def compute_fingerprints() -> Dict[str, str]:
    """Simulate the whole sweep and fingerprint every result."""
    fingerprints: Dict[str, str] = {}
    for cell in sweep_cells():
        fingerprints[_cell_key(cell)] = _fingerprint(result_to_dict(simulate(cell)))
    for cell in sweep_smt_cells():
        fingerprints[_cell_key(cell)] = _fingerprint(
            smt_result_to_dict(simulate_smt(cell))
        )
    return fingerprints


def _load_goldens() -> Dict[str, str]:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)["fingerprints"]


def test_sweep_covers_every_mechanism_and_benchmark():
    keys = [_cell_key(cell) for cell in sweep_cells()]
    assert len(keys) == len(set(keys)), "duplicate cells in the parity sweep"
    joined = " ".join(keys)
    for name in ("A2", "B8", "C2", "gating", "oracle-fetch", "noescalate", "jrs"):
        assert name in joined
    for benchmark in _CROSS_BENCHMARKS + _SOLO_BENCHMARKS:
        assert f"{benchmark}:" in joined


@pytest.mark.parametrize(
    "cell", sweep_cells(), ids=_cell_key
)
def test_figure_config_fingerprints_match_goldens(cell):
    goldens = _load_goldens()
    key = _cell_key(cell)
    assert key in goldens, f"no golden for {key}; regenerate deliberately"
    actual = _fingerprint(result_to_dict(simulate(cell)))
    assert actual == goldens[key], (
        f"stats fingerprint of {key} diverged from the pre-refactor core"
    )


@pytest.mark.parametrize("cell", sweep_smt_cells(), ids=_cell_key)
def test_smt_mix_fingerprints_match_goldens(cell):
    goldens = _load_goldens()
    key = _cell_key(cell)
    actual = _fingerprint(smt_result_to_dict(simulate_smt(cell)))
    assert actual == goldens[key], (
        f"SMT fingerprint of {key} diverged from the pre-refactor core"
    )


def _regenerate() -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    payload = {
        "description": (
            "Bit-exact result fingerprints of the parity sweep, captured on "
            "the pre-refactor monolithic core. Regenerate only when a PR "
            "deliberately changes simulator behaviour."
        ),
        "instructions": _INSTRUCTIONS,
        "warmup": _WARMUP,
        "fingerprints": compute_fingerprints(),
    }
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(payload['fingerprints'])} fingerprints to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
