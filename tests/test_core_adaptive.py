"""Adaptive Selective Throttling (the runtime-adaptation extension)."""

import pytest

from repro.confidence.base import ConfidenceLevel
from repro.core.adaptive import AdaptiveThrottler, default_ladder
from repro.core.policy import experiment_policy
from repro.errors import ConfigurationError
from repro.isa.instruction import DynamicInstruction, StaticInstruction
from repro.isa.opcodes import Opcode


def _branch(seq: int, mispredicted: bool) -> DynamicInstruction:
    instr = DynamicInstruction(
        seq, StaticInstruction(seq * 4, Opcode.BR_COND, sources=(1,))
    )
    instr.mispredicted = mispredicted
    return instr


def _feed(throttler, count, mispredicted, start_seq=0):
    for offset in range(count):
        branch = _branch(start_seq + offset, mispredicted)
        throttler.on_branch_fetched(branch, ConfidenceLevel.VLC)
        throttler.on_branch_resolved(branch)


def test_default_ladder_is_the_paper_progression():
    names = [policy.name for policy in default_ladder()]
    assert names == ["A1", "A5", "C2"]


def test_promotes_when_triggers_pay_off():
    throttler = AdaptiveThrottler(window=16, start_rung=0)
    _feed(throttler, 16, mispredicted=True)
    assert throttler.rung == 1
    assert throttler.promotions == 1


def test_demotes_when_triggers_misfire():
    throttler = AdaptiveThrottler(window=16, start_rung=2)
    _feed(throttler, 16, mispredicted=False)
    assert throttler.rung == 1
    assert throttler.demotions == 1


def test_hysteresis_band_holds_the_rung():
    throttler = AdaptiveThrottler(
        window=16, start_rung=1, promote_threshold=0.6, demote_threshold=0.2
    )
    # Precision lands at 0.5: inside the band, no movement.
    for index in range(16):
        branch = _branch(index, mispredicted=index % 2 == 0)
        throttler.on_branch_fetched(branch, ConfidenceLevel.VLC)
        throttler.on_branch_resolved(branch)
    assert throttler.rung == 1
    assert throttler.promotions == throttler.demotions == 0


def test_never_promotes_past_the_top():
    throttler = AdaptiveThrottler(window=8, start_rung=2)
    _feed(throttler, 64, mispredicted=True)
    assert throttler.rung == 2


def test_never_demotes_below_the_bottom():
    throttler = AdaptiveThrottler(window=8, start_rung=0)
    _feed(throttler, 64, mispredicted=False)
    assert throttler.rung == 0


def test_squashed_triggers_do_not_vote():
    throttler = AdaptiveThrottler(window=8, start_rung=0)
    for seq in range(32):
        branch = _branch(seq, mispredicted=True)
        throttler.on_branch_fetched(branch, ConfidenceLevel.VLC)
        throttler.on_branch_squashed(branch)
    assert throttler.rung == 0
    assert throttler.precision == 0.0


def test_in_flight_tokens_survive_a_rung_switch():
    throttler = AdaptiveThrottler(window=8, start_rung=0)
    lingering = _branch(1_000, mispredicted=True)
    throttler.on_branch_fetched(lingering, ConfidenceLevel.VLC)
    # The A1 policy's VLC action is fetch/2: some cycles must be throttled.
    before = sum(not throttler.fetch_allowed(cycle) for cycle in range(8))
    assert before > 0
    _feed(throttler, 8, mispredicted=True, start_seq=2_000)
    assert throttler.rung == 1
    # The old token still throttles until ITS branch resolves.
    still = sum(not throttler.fetch_allowed(cycle) for cycle in range(8))
    assert still >= before
    throttler.on_branch_resolved(lingering)


def test_custom_ladder_accepted():
    ladder = [experiment_policy("A5"), experiment_policy("C2")]
    throttler = AdaptiveThrottler(ladder=ladder, start_rung=0)
    assert throttler.policy.name == "A5"


def test_parameter_validation():
    with pytest.raises(ConfigurationError):
        AdaptiveThrottler(ladder=[])
    with pytest.raises(ConfigurationError):
        AdaptiveThrottler(window=4)
    with pytest.raises(ConfigurationError):
        AdaptiveThrottler(promote_threshold=0.2, demote_threshold=0.4)
    with pytest.raises(ConfigurationError):
        AdaptiveThrottler(start_rung=7)


def test_full_pipeline_run_with_adaptation():
    from repro.pipeline.config import table3_config
    from repro.pipeline.processor import Processor
    from repro.workloads.suite import benchmark_spec

    spec = benchmark_spec("go")
    throttler = AdaptiveThrottler(window=32)
    processor = Processor(
        table3_config(), spec.build_program(), controller=throttler, seed=spec.seed
    )
    stats = processor.run(4_000, warmup_instructions=1_000)
    assert stats.committed >= 4_000
    assert throttler.triggers > 0
