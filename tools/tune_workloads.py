"""Random-search calibration of workload shapes against Table 2 targets.

Development tool: searches (loop trips, noise, random weight, body size,
seed) per benchmark to minimise the relative error against the paper's
miss-rate and branch-density targets, then prints the best parameters as
JSON for baking into repro/workloads/suite.py.
"""

from __future__ import annotations

import dataclasses
import json
import random
import sys

from repro.bpred.gshare import GSharePredictor
from repro.program.generator import ProgramGenerator
from repro.program.walker import TruePathOracle
from repro.workloads.suite import BENCHMARK_NAMES, benchmark_spec


def measure(shape, seed, instructions=120_000, name="tune"):
    program = ProgramGenerator(shape, seed, name=name).generate()
    oracle = TruePathOracle(program, seed)
    predictor = GSharePredictor(8)
    branches = misses = 0
    for index in range(instructions):
        record = oracle.get(index)
        static = record.static
        if static.is_cond_branch:
            branches += 1
            prediction = predictor.predict(static.address)
            if prediction.taken != record.taken:
                misses += 1
                predictor.restore(prediction.snapshot, record.taken)
            predictor.train(static.address, record.taken, prediction.snapshot)
        if index % 8192 == 0:
            oracle.prune_before(max(0, index - 64))
    return misses / max(1, branches), branches / instructions


def objective(miss, density, spec):
    miss_err = abs(miss - spec.target_miss_rate) / spec.target_miss_rate
    density_err = abs(density - spec.branch_density) / spec.branch_density
    return miss_err + 0.5 * density_err


def tune(name, rounds=40, rng=None):
    rng = rng or random.Random(1234)
    spec = benchmark_spec(name)
    best_shape = spec.shape
    best_seed = spec.seed
    miss, density = measure(best_shape, best_seed, name=name)
    best_score = objective(miss, density, spec)
    best_obs = (miss, density)
    for _ in range(rounds):
        shape = dataclasses.replace(best_shape)
        # Perturb a random subset of knobs around the current best.
        if rng.random() < 0.6:
            lo = max(2, best_shape.loop_trip_range[0] + rng.randint(-3, 3))
            hi = max(lo + 2, best_shape.loop_trip_range[1] + rng.randint(-6, 6))
            shape.loop_trip_range = (lo, hi)
        if rng.random() < 0.5:
            lo = max(0.01, min(0.3, best_shape.correlated_noise[0] * rng.uniform(0.6, 1.6)))
            hi = max(lo + 0.02, min(0.5, best_shape.correlated_noise[1] * rng.uniform(0.6, 1.6)))
            shape.correlated_noise = (lo, hi)
        if rng.random() < 0.5:
            shape.w_random = max(0.0, min(0.12, best_shape.w_random * rng.uniform(0.4, 2.2) + rng.uniform(-0.004, 0.008)))
        if rng.random() < 0.5:
            lo = max(2, best_shape.block_size[0] + rng.randint(-1, 1))
            hi = max(lo + 2, best_shape.block_size[1] + rng.randint(-2, 2))
            shape.block_size = (lo, hi)
        if rng.random() < 0.4:
            shape.loop_fraction = max(0.2, min(0.65, best_shape.loop_fraction + rng.uniform(-0.08, 0.08)))
        if rng.random() < 0.4:
            lo = max(0.6, min(0.95, best_shape.biased_strength[0] + rng.uniform(-0.04, 0.04)))
            hi = max(lo + 0.02, min(0.995, best_shape.biased_strength[1] + rng.uniform(-0.03, 0.03)))
            shape.biased_strength = (lo, hi)
        if rng.random() < 0.5:
            shape.w_bad = max(0.0, min(0.22, best_shape.w_bad * rng.uniform(0.5, 1.8) + rng.uniform(-0.01, 0.02)))
        if rng.random() < 0.3:
            lo = max(0.5, min(0.75, best_shape.bad_strength[0] + rng.uniform(-0.05, 0.05)))
            hi = max(lo + 0.03, min(0.85, best_shape.bad_strength[1] + rng.uniform(-0.05, 0.05)))
            shape.bad_strength = (lo, hi)
        seed = best_seed if rng.random() < 0.5 else rng.randint(1, 10_000)
        try:
            miss, density = measure(shape, seed, name=name)
        except Exception:
            continue
        score = objective(miss, density, spec)
        if score < best_score:
            best_score, best_shape, best_seed = score, shape, seed
            best_obs = (miss, density)
    return {
        "name": name,
        "seed": best_seed,
        "score": round(best_score, 4),
        "miss": round(best_obs[0], 4),
        "target_miss": spec.target_miss_rate,
        "density": round(best_obs[1], 4),
        "target_density": spec.branch_density,
        "shape": {
            "blocks_per_function": best_shape.blocks_per_function,
            "block_size": best_shape.block_size,
            "loop_fraction": round(best_shape.loop_fraction, 3),
            "loop_trip_range": best_shape.loop_trip_range,
            "loop_jitter": best_shape.loop_jitter,
            "w_biased": best_shape.w_biased,
            "w_pattern": best_shape.w_pattern,
            "w_correlated": best_shape.w_correlated,
            "w_random": round(best_shape.w_random, 4),
            "w_bad": round(best_shape.w_bad, 4),
            "bad_strength": tuple(round(x, 3) for x in best_shape.bad_strength),
            "biased_strength": tuple(round(x, 3) for x in best_shape.biased_strength),
            "correlated_noise": tuple(round(x, 3) for x in best_shape.correlated_noise),
            "num_functions": best_shape.num_functions,
        },
    }


def main():
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    rng = random.Random(99)
    results = {}
    for name in BENCHMARK_NAMES:
        result = tune(name, rounds=rounds, rng=rng)
        results[name] = result
        print(f"# {name}: miss {result['miss']:.3f}/{result['target_miss']:.3f} "
              f"density {result['density']:.3f}/{result['target_density']:.3f} "
              f"score {result['score']}", flush=True)
    print(json.dumps(results, indent=2))


if __name__ == "__main__":
    main()
