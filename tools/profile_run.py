#!/usr/bin/env python
"""Profile one simulation and print the hottest functions.

Future performance PRs should start from data, not intuition::

    PYTHONPATH=src python tools/profile_run.py                 # defaults
    PYTHONPATH=src python tools/profile_run.py --benchmark gcc \
        --experiment C2 --instructions 40000 --top 30
    PYTHONPATH=src python tools/profile_run.py --mix mix2-branchy  # SMT core
    PYTHONPATH=src python tools/profile_run.py --save run.pstats

The run goes through :func:`repro.experiments.engine.simulate` (or
``simulate_smt`` with ``--mix``), i.e. exactly the code path every figure,
table and campaign exercises, so the printed hotspots are the ones that
matter.  ``--save`` writes the raw pstats file for snakeviz/gprof2dot.

``--stage-timers`` swaps cProfile for the telemetry layer: each stage's
``tick`` is wrapped with a wall-clock accumulator
(:class:`repro.telemetry.timers.StageTimers`) and the probe bus supplies
active-cycle counts, answering "which stage costs the time, and is it
busy or just ticking?" without tracing overhead::

    PYTHONPATH=src python tools/profile_run.py --stage-timers
    PYTHONPATH=src python tools/profile_run.py --stage-timers --mix mix2-branchy

``--skip-stats`` (combinable with ``--stage-timers``) reports what the
scheduler's next-event cycle skip covered, from the probe bus's skip
counters: the skipped-cycle fraction and a power-of-two window-length
histogram::

    PYTHONPATH=src python tools/profile_run.py --skip-stats --experiment C2
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
from typing import List, Optional

from repro.experiments.engine import (
    default_instructions,
    default_warmup,
    make_cell,
    make_smt_cell,
    make_trace_cell,
    simulate,
    simulate_smt,
)
from repro.smt.mixes import MIX_NAMES
from repro.workloads.suite import BENCHMARK_NAMES

SORT_KEYS = ("cumulative", "cumtime", "tottime", "ncalls")
SUPPLY_CHOICES = ("compiled", "live", "trace")


def _make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="profile_run",
        description="cProfile one simulation and print the top hotspots.",
    )
    parser.add_argument(
        "--benchmark", default="go", choices=BENCHMARK_NAMES,
        help="calibrated benchmark to simulate (default: go)",
    )
    parser.add_argument(
        "--experiment", default="baseline",
        help="controller: 'baseline', a policy name (C2, A5, ...) or "
        "'gating:N' (default: baseline)",
    )
    parser.add_argument(
        "--mix", default=None, choices=MIX_NAMES,
        help="profile an SMT mix instead of a single-thread benchmark",
    )
    parser.add_argument(
        "--supply", default="compiled", choices=SUPPLY_CHOICES,
        help="front-end instruction supply: the pre-lowered packet supply "
        "(default), the seed per-instruction walkers, or a trace replay "
        "(needs --trace)",
    )
    parser.add_argument(
        "--trace", default=None,
        help="recorded v2 trace file for --supply trace",
    )
    parser.add_argument(
        "--instructions", type=int, default=None,
        help=f"measured instructions (default: {default_instructions()})",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help=f"warm-up instructions (default: {default_warmup()})",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="number of functions to print (default: 20)",
    )
    parser.add_argument(
        "--sort", default="cumulative", choices=SORT_KEYS,
        help="pstats sort key; cumtime is an alias of cumulative "
        "(default: cumulative)",
    )
    parser.add_argument(
        "--save", default=None,
        help="also write the raw profile to this pstats file",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write a machine-readable hotspot export: the --top "
        "functions by self time (tottime), with ncalls, cumtime and "
        "each function's share of total self time",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="profile with the pipeline invariant sanitizer enabled "
        "(shows what the per-cycle checks cost)",
    )
    parser.add_argument(
        "--stage-timers", action="store_true",
        help="per-stage wall-time attribution from the telemetry layer "
        "instead of cProfile (stage tick timers + probe-bus active "
        "cycles; no tracing overhead)",
    )
    parser.add_argument(
        "--skip-stats", action="store_true",
        help="cycle-skip fast-forward report from the probe bus instead "
        "of cProfile: skipped-cycle fraction and a window-length "
        "histogram (combines with --stage-timers)",
    )
    return parser


def _run_telemetry_modes(
    cell, label: str, smt: bool, stage_timers: bool, skip_stats: bool
) -> int:
    """The probe-bus modes: one instrumented run feeds every report."""
    from repro.experiments.engine import build_processor, build_smt_processor
    from repro.telemetry.timers import StageTimers

    processor = build_smt_processor(cell) if smt else build_processor(cell)
    timers = StageTimers(processor).attach() if stage_timers else None
    processor.run(cell.instructions, warmup_instructions=cell.warmup)

    snapshot = processor.probes.snapshot()
    if timers is not None:
        _print_stage_timers(snapshot, timers, label)
    if skip_stats:
        _print_skip_stats(snapshot, label)
    return 0


def _print_stage_timers(snapshot: dict, timers, label: str) -> None:
    """The ``--stage-timers`` report: timed ticks + probe active cycles."""
    cycles = snapshot["cycles"]
    total = timers.total_seconds
    print(
        f"stage timers for {label}: {cycles} measured cycles, "
        f"{total:.3f}s in stage ticks"
    )
    print(f"{'stage':<14s} {'wall s':>8s} {'share':>7s} "
          f"{'ticks':>9s} {'active':>9s} {'busy':>6s}")
    for name, seconds, calls in timers.report():
        active = _active_cycles(snapshot, name)
        share = seconds / total if total else 0.0
        busy = active / cycles if cycles else 0.0
        print(
            f"{name:<14s} {seconds:8.3f} {share * 100:6.1f}% "
            f"{calls:9d} {active:9d} {busy * 100:5.1f}%"
        )


def _print_skip_stats(snapshot: dict, label: str) -> None:
    """The ``--skip-stats`` report: what the next-event engine covered."""
    skip = snapshot["skip"]
    cycles = snapshot["cycles"]
    skipped = skip["skipped_cycles"]
    windows = skip["windows"]
    fraction = skipped / cycles if cycles else 0.0
    print(
        f"cycle-skip for {label}: {skipped} of {cycles} measured cycles "
        f"fast-forwarded ({fraction * 100:.1f}%) across {windows} windows"
    )
    hist = skip["length_hist"]
    if not windows or not hist:
        print("  (no windows — the machine never went provably idle)")
        return
    print(f"  mean window {skipped / windows:.1f} cycles; length histogram:")
    peak = max(hist.values())
    for bucket in sorted(hist, key=int):
        low = int(bucket)
        high = 2 * low - 1
        count = hist[bucket]
        bar = "#" * max(1, round(40 * count / peak))
        span = f"{low}" if high == low else f"{low}-{high}"
        print(f"  {span:>12s} {count:8d}  {bar}")


def _active_cycles(snapshot: dict, stage_name: str) -> int:
    """Probe-bus active cycles of a kernel stage.

    The kernel fuses decode and rename into one ``decode-rename`` stage
    while the probe bus keeps them as separate counter groups; a fused
    stage is active whenever any of its parts is, which the max of the
    parts approximates from totals.
    """
    stages = snapshot["stages"]
    if stage_name in stages:
        return stages[stage_name]["active_cycles"]
    parts = [
        stages[part]["active_cycles"]
        for part in stage_name.split("-")
        if part in stages
    ]
    return max(parts) if parts else 0


def _controller_spec(name: str) -> tuple:
    if name == "baseline":
        return ("baseline",)
    if name.startswith("gating:"):
        return ("gating", int(name.split(":", 1)[1]))
    return ("throttle", name)


def main(argv: Optional[List[str]] = None) -> int:
    options = _make_parser().parse_args(argv)

    if options.sanitize:
        # Before the cell is built: ProcessorConfig reads the environment
        # at construction time.
        os.environ["REPRO_SANITIZE"] = "1"
    if options.stage_timers or options.skip_stats:
        # Same pre-construction rule: the probe bus (active-cycle and
        # skip counters) attaches only when the config sees telemetry on.
        os.environ["REPRO_TELEMETRY"] = "1"

    if options.mix:
        if options.supply != "compiled" or options.trace:
            raise SystemExit(
                "--supply/--trace select single-thread supplies; they do "
                "not combine with --mix"
            )
        cell = make_smt_cell(
            options.mix,
            instructions=options.instructions,
            warmup=options.warmup,
        )
        target, label = (lambda: simulate_smt(cell)), f"mix {cell.mix}"
    elif options.supply == "trace":
        if not options.trace:
            raise SystemExit("--supply trace needs --trace PATH")
        cell = make_trace_cell(
            options.trace,
            controller_spec=_controller_spec(options.experiment),
            instructions=options.instructions,
            warmup=options.warmup,
        )
        target = lambda: simulate(cell)  # noqa: E731
        label = f"trace {options.trace} ({cell.benchmark})"
    else:
        cell = make_cell(
            options.benchmark,
            controller_spec=_controller_spec(options.experiment),
            instructions=options.instructions,
            warmup=options.warmup,
            supply=options.supply,
        )
        target = lambda: simulate(cell)  # noqa: E731
        label = f"{cell.benchmark} under {cell.effective_label} ({options.supply} supply)"

    if options.stage_timers or options.skip_stats:
        return _run_telemetry_modes(
            cell, label, smt=bool(options.mix),
            stage_timers=options.stage_timers,
            skip_stats=options.skip_stats,
        )

    print(
        f"profiling {label}: {cell.instructions} instructions "
        f"(+{cell.warmup} warm-up)"
    )
    profile = cProfile.Profile()
    profile.enable()
    result = target()
    profile.disable()

    committed = getattr(result, "instructions", None)
    if committed is None:  # SmtResult carries per-thread dicts instead
        committed = sum(thread["committed"] for thread in result.threads)
    stats = pstats.Stats(profile, stream=sys.stdout)
    wall = stats.total_tt
    print(f"committed {committed} instructions in {wall:.2f}s "
          f"({committed / wall:,.0f} instr/s)\n")
    stats.strip_dirs().sort_stats(options.sort).print_stats(options.top)
    if options.save:
        stats.dump_stats(options.save)
        print(f"wrote {options.save}")
    if options.json:
        payload = hotspot_export(stats, options.top, label, committed, wall)
        with open(options.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {options.json}")
    return 0


def hotspot_export(
    stats: pstats.Stats, top: int, label: str, committed: int, wall: float
) -> dict:
    """The ``--json`` payload: the top leaves of the profile by self time.

    Self time (``tottime``) attributes cost to the function whose frames
    actually burned it, so the export is the machine-readable answer to
    "where does the wall clock go" — the view A/B comparisons of stage
    costs (e.g. fetch with run batching on vs off) diff against.
    """
    total_tt = sum(row[2] for row in stats.stats.values()) or 1.0
    leaves = sorted(
        stats.stats.items(), key=lambda item: item[1][2], reverse=True
    )
    hotspots = [
        {
            "file": file,
            "line": line,
            "function": function,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime": tt,
            "cumtime": ct,
            "tottime_share": tt / total_tt,
        }
        for (file, line, function), (cc, nc, tt, ct, _) in leaves[:top]
    ]
    return {
        "schema": 1,
        "label": label,
        "committed": committed,
        "seconds": wall,
        "total_tottime": total_tt,
        "hotspots": hotspots,
    }


if __name__ == "__main__":
    sys.exit(main())
