#!/usr/bin/env python
"""Profile one simulation and print the hottest functions.

Future performance PRs should start from data, not intuition::

    PYTHONPATH=src python tools/profile_run.py                 # defaults
    PYTHONPATH=src python tools/profile_run.py --benchmark gcc \
        --experiment C2 --instructions 40000 --top 30
    PYTHONPATH=src python tools/profile_run.py --mix mix2-hard  # SMT core
    PYTHONPATH=src python tools/profile_run.py --save run.pstats

The run goes through :func:`repro.experiments.engine.simulate` (or
``simulate_smt`` with ``--mix``), i.e. exactly the code path every figure,
table and campaign exercises, so the printed hotspots are the ones that
matter.  ``--save`` writes the raw pstats file for snakeviz/gprof2dot.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
from typing import List, Optional

from repro.experiments.engine import (
    default_instructions,
    default_warmup,
    make_cell,
    make_smt_cell,
    make_trace_cell,
    simulate,
    simulate_smt,
)
from repro.smt.mixes import MIX_NAMES
from repro.workloads.suite import BENCHMARK_NAMES

SORT_KEYS = ("cumulative", "tottime", "ncalls")
SUPPLY_CHOICES = ("compiled", "live", "trace")


def _make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="profile_run",
        description="cProfile one simulation and print the top hotspots.",
    )
    parser.add_argument(
        "--benchmark", default="go", choices=BENCHMARK_NAMES,
        help="calibrated benchmark to simulate (default: go)",
    )
    parser.add_argument(
        "--experiment", default="baseline",
        help="controller: 'baseline', a policy name (C2, A5, ...) or "
        "'gating:N' (default: baseline)",
    )
    parser.add_argument(
        "--mix", default=None, choices=MIX_NAMES,
        help="profile an SMT mix instead of a single-thread benchmark",
    )
    parser.add_argument(
        "--supply", default="compiled", choices=SUPPLY_CHOICES,
        help="front-end instruction supply: the pre-lowered packet supply "
        "(default), the seed per-instruction walkers, or a trace replay "
        "(needs --trace)",
    )
    parser.add_argument(
        "--trace", default=None,
        help="recorded v2 trace file for --supply trace",
    )
    parser.add_argument(
        "--instructions", type=int, default=None,
        help=f"measured instructions (default: {default_instructions()})",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help=f"warm-up instructions (default: {default_warmup()})",
    )
    parser.add_argument(
        "--top", type=int, default=20,
        help="number of functions to print (default: 20)",
    )
    parser.add_argument(
        "--sort", default="cumulative", choices=SORT_KEYS,
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument(
        "--save", default=None,
        help="also write the raw profile to this pstats file",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="profile with the pipeline invariant sanitizer enabled "
        "(shows what the per-cycle checks cost)",
    )
    return parser


def _controller_spec(name: str) -> tuple:
    if name == "baseline":
        return ("baseline",)
    if name.startswith("gating:"):
        return ("gating", int(name.split(":", 1)[1]))
    return ("throttle", name)


def main(argv: Optional[List[str]] = None) -> int:
    options = _make_parser().parse_args(argv)

    if options.sanitize:
        # Before the cell is built: ProcessorConfig reads the environment
        # at construction time.
        os.environ["REPRO_SANITIZE"] = "1"

    if options.mix:
        if options.supply != "compiled" or options.trace:
            raise SystemExit(
                "--supply/--trace select single-thread supplies; they do "
                "not combine with --mix"
            )
        cell = make_smt_cell(
            options.mix,
            instructions=options.instructions,
            warmup=options.warmup,
        )
        target, label = (lambda: simulate_smt(cell)), f"mix {cell.mix}"
    elif options.supply == "trace":
        if not options.trace:
            raise SystemExit("--supply trace needs --trace PATH")
        cell = make_trace_cell(
            options.trace,
            controller_spec=_controller_spec(options.experiment),
            instructions=options.instructions,
            warmup=options.warmup,
        )
        target = lambda: simulate(cell)  # noqa: E731
        label = f"trace {options.trace} ({cell.benchmark})"
    else:
        cell = make_cell(
            options.benchmark,
            controller_spec=_controller_spec(options.experiment),
            instructions=options.instructions,
            warmup=options.warmup,
            supply=options.supply,
        )
        target = lambda: simulate(cell)  # noqa: E731
        label = f"{cell.benchmark} under {cell.effective_label} ({options.supply} supply)"

    print(
        f"profiling {label}: {cell.instructions} instructions "
        f"(+{cell.warmup} warm-up)"
    )
    profile = cProfile.Profile()
    profile.enable()
    result = target()
    profile.disable()

    committed = getattr(result, "instructions", None)
    if committed is None:  # SmtResult carries per-thread dicts instead
        committed = sum(thread["committed"] for thread in result.threads)
    stats = pstats.Stats(profile, stream=sys.stdout)
    wall = stats.total_tt
    print(f"committed {committed} instructions in {wall:.2f}s "
          f"({committed / wall:,.0f} instr/s)\n")
    stats.strip_dirs().sort_stats(options.sort).print_stats(options.top)
    if options.save:
        stats.dump_stats(options.save)
        print(f"wrote {options.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
