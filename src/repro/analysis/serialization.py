"""Pool/cache serialization safety (``SER001``).

Controller specs cross two boundaries that silently corrupt anything
fancier than nested tuples of constants: they are pickled into
process-pool workers by the sweep scheduler, and they are JSON-encoded
into cache fingerprints by the result cache.  The sanctioned grammar
(what :func:`repro.experiments.engine.make_controller` accepts) is::

    spec := (kind, const...)            # kind one of VALID_SPEC_KINDS
    const := str | int | float | bool | None | (const...)

This rule inspects every *literal* controller spec in the tree — tuple
literals passed as a ``controller_spec=`` keyword or bound to a
``*_spec``/``*_SPEC`` name — and flags unknown spec kinds and elements
that provably fall outside the grammar (lambdas, dicts, sets, lists,
comprehensions, function calls).  Elements that are plain name or
attribute references are assumed to hold conforming values; only
provable violations fire.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.registry import Violation, rule
from repro.analysis.walker import ProjectIndex, enclosing_symbol

# The heads make_controller dispatches on.
VALID_SPEC_KINDS = frozenset({
    "baseline", "throttle", "throttle-noescalate", "policy", "gating",
    "oracle",
})

_UNPICKLABLE = (
    ast.Lambda, ast.Dict, ast.Set, ast.List, ast.ListComp, ast.SetComp,
    ast.DictComp, ast.GeneratorExp,
)


def _element_problem(node: ast.AST) -> Optional[str]:
    """Why ``node`` cannot appear in a spec tuple, or None if it may."""
    if isinstance(node, ast.Constant):
        if node.value is None or isinstance(node.value, (str, int, float, bool)):
            return None
        return f"constant of type {type(node.value).__name__}"
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            problem = _element_problem(element)
            if problem is not None:
                return problem
        return None
    if isinstance(node, ast.Lambda):
        return "a lambda (unpicklable, unfingerprintable)"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "a dict (spec grammar is nested tuples of constants)"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set (unordered; breaks fingerprint stability)"
    if isinstance(node, (ast.List, ast.ListComp, ast.GeneratorExp)):
        return "a list/generator (spec grammar is nested tuples)"
    if isinstance(node, ast.Call):
        return "a call result (specs must be data, not objects)"
    # Names, attributes, unary minus on constants, etc.: not provable.
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
        return None
    return None


def _check_spec_tuple(
    info, node: ast.Tuple, violations: List[Violation]
) -> None:
    if not node.elts:
        return
    head = node.elts[0]
    symbol = enclosing_symbol(info.tree, node)
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        if head.value not in VALID_SPEC_KINDS:
            violations.append(Violation(
                rule="SER001", path=info.path, line=node.lineno,
                symbol=symbol,
                message=(
                    f"unknown controller-spec kind {head.value!r}; "
                    "make_controller accepts: "
                    + ", ".join(sorted(VALID_SPEC_KINDS))
                ),
            ))
            return
    elif isinstance(head, _UNPICKLABLE):
        pass  # fall through to the element scan below
    else:
        return  # dynamic head: not a literal spec we can check
    for element in node.elts:
        problem = _element_problem(element)
        if problem is not None:
            violations.append(Violation(
                rule="SER001", path=info.path, line=element.lineno,
                symbol=symbol,
                message=(
                    f"controller spec element is {problem}; specs are "
                    "pickled to pool workers and JSON-fingerprinted, so "
                    "they must bottom out in tuples of str/int/float/"
                    "bool/None"
                ),
            ))


def _looks_like_spec_name(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith("_spec") or lowered == "spec"


@rule("SER001", "literal controller specs stay inside the picklable grammar")
def check_controller_specs(index: ProjectIndex) -> List[Violation]:
    violations: List[Violation] = []
    for info in index.modules:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if (
                        keyword.arg is not None
                        and _looks_like_spec_name(keyword.arg)
                        and isinstance(keyword.value, ast.Tuple)
                    ):
                        _check_spec_tuple(info, keyword.value, violations)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Tuple):
                for target in node.targets:
                    name = None
                    if isinstance(target, ast.Name):
                        name = target.id
                    elif isinstance(target, ast.Attribute):
                        name = target.attr
                    if name is not None and _looks_like_spec_name(name):
                        _check_spec_tuple(info, node.value, violations)
                        break
    return violations
