"""Determinism rules: the bit-exact-reproducibility contract.

Every golden fingerprint, cache hit and batched==serial scheduling
guarantee in this repository assumes a simulation result is a pure
function of its cell.  These rules flag the three ways Python code
silently breaks that:

* ``DET001`` — wall-clock reads (``time.time``, ``datetime.now``, ...).
  The cache-maintenance paths in ``experiments/engine.py`` legitimately
  timestamp entries for pruning; they are allowlisted by symbol.
* ``DET002`` — process entropy: ``os.urandom``, ``uuid.uuid4``,
  ``secrets``, and draws from the *module-level* ``random`` generator
  (seeded ``random.Random(seed)`` instances are the sanctioned source).
* ``DET003`` — iteration over ``set``/``frozenset`` values in an
  order-sensitive position (``for``, comprehensions, ``list``/``tuple``/
  ``enumerate``/``join``).  Set order depends on ``PYTHONHASHSEED`` for
  string keys; ``dict`` iteration is insertion-ordered and therefore
  deterministic, so dicts are not flagged.  Wrapping in ``sorted()``
  suppresses the finding; order-insensitive reductions (``len``,
  ``sum``, ``min``, ``max``, ``any``, ``all``, membership) are never
  flagged.

Scope: modules reachable from the experiment engine and the stage
kernel (anything that can touch a simulation result), plus the study
and report layers, whose rendered output must be equally reproducible.
When none of the roots exist in the index — a synthetic fixture tree in
the self-tests — every module is in scope.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.registry import Violation, rule
from repro.analysis.walker import (
    ModuleInfo,
    ProjectIndex,
    enclosing_symbol,
    resolve_call_target,
)

DET_ROOTS = ("repro.experiments.engine", "repro.pipeline.stages.scheduler")
EXTRA_SCOPE_PREFIXES = ("repro.studies", "repro.report")

WALL_CLOCK_TARGETS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

# Cache maintenance legitimately timestamps entries (age-based pruning);
# the timestamps never reach a simulation result or a fingerprint.  The
# telemetry clock module is the single funnel for runtime-metric wall
# times (manifests, batch durations, queue latency) — its readings feed
# telemetry events only, never results, and every other module must call
# through it rather than time.* directly.
WALL_CLOCK_ALLOWLIST = frozenset({
    ("repro/experiments/engine.py", "ResultCache.info"),
    ("repro/experiments/engine.py", "ResultCache.prune"),
    ("repro/telemetry/clock.py", "wall_time"),
    ("repro/telemetry/clock.py", "perf_time"),
})

ENTROPY_TARGETS = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

# Draws from the module-level (shared, implicitly-seeded) generator.
GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
})

# Order-sensitive consumers of an iterable.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})


def scoped_modules(index: ProjectIndex) -> List[ModuleInfo]:
    """The modules the determinism contract covers (see module docstring)."""
    if not any(root in index.by_name for root in DET_ROOTS):
        return list(index.modules)
    names = index.reachable_from(DET_ROOTS)
    for info in index.modules:
        if info.name.startswith(EXTRA_SCOPE_PREFIXES):
            names.add(info.name)
    return [info for info in index.modules if info.name in names]


@rule("DET001", "no wall-clock reads in simulation-reachable code")
def check_wall_clock(index: ProjectIndex) -> List[Violation]:
    violations: List[Violation] = []
    for info in scoped_modules(index):
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(info, node)
            if target not in WALL_CLOCK_TARGETS:
                continue
            symbol = enclosing_symbol(info.tree, node)
            if (info.path, symbol) in WALL_CLOCK_ALLOWLIST:
                continue
            violations.append(Violation(
                rule="DET001", path=info.path, line=node.lineno,
                symbol=symbol,
                message=(
                    f"call to {target}() reads the wall clock; simulation"
                    "-reachable code must be a pure function of its inputs"
                ),
            ))
    return violations


@rule("DET002", "no process entropy or module-level random draws")
def check_entropy(index: ProjectIndex) -> List[Violation]:
    violations: List[Violation] = []
    for info in scoped_modules(index):
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(info, node)
            if target is None:
                continue
            message: Optional[str] = None
            if target in ENTROPY_TARGETS or target.startswith("secrets."):
                message = f"call to {target}() draws OS entropy"
            elif (
                target.startswith("random.")
                and target.split(".", 1)[1] in GLOBAL_RANDOM_FUNCS
            ):
                message = (
                    f"{target}() draws from the shared module-level "
                    "generator; use a seeded random.Random instance"
                )
            elif target == "random.Random" and not node.args and not node.keywords:
                message = (
                    "random.Random() without a seed is entropy-seeded; "
                    "pass an explicit seed"
                )
            if message is not None:
                violations.append(Violation(
                    rule="DET002", path=info.path, line=node.lineno,
                    symbol=enclosing_symbol(info.tree, node),
                    message=message,
                ))
    return violations


def _is_set_expr(node: ast.AST, set_names: Set[str], info: ModuleInfo) -> bool:
    """True when ``node`` provably evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Call):
        target = resolve_call_target(info, node)
        if target in ("set", "frozenset"):
            return True
        # set-returning methods of a known set
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("union", "intersection", "difference",
                                   "symmetric_difference", "copy")
            and _is_set_expr(node.func.value, set_names, info)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return (
            _is_set_expr(node.left, set_names, info)
            or _is_set_expr(node.right, set_names, info)
        )
    return False


def _scope_bodies(tree: ast.Module):
    """Yield every lexical scope's list of statements (module + functions)."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body


def _walk_scope(stmts):
    """Walk statements without descending into nested function scopes."""
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            yield from _walk_node(child)


def _walk_node(node):
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _walk_node(child)


@rule("DET003", "no order-sensitive iteration over sets")
def check_set_iteration(index: ProjectIndex) -> List[Violation]:
    violations: List[Violation] = []
    for info in scoped_modules(index):
        for body in _scope_bodies(info.tree):
            set_names: Set[str] = set()
            # First pass: names bound to provable set expressions.
            for node in _walk_scope(body):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        if _is_set_expr(node.value, set_names, info):
                            set_names.add(target.id)
                        elif target.id in set_names:
                            set_names.discard(target.id)
            if not set_names and not any(
                isinstance(n, (ast.Set, ast.SetComp))
                or (isinstance(n, ast.Call)
                    and resolve_call_target(info, n) in ("set", "frozenset"))
                for n in _walk_scope(body)
            ):
                continue
            # Second pass: order-sensitive consumption.
            for node in _walk_scope(body):
                site = None
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if _is_set_expr(node.iter, set_names, info):
                        site = node.iter
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        if _is_set_expr(gen.iter, set_names, info):
                            site = gen.iter
                            break
                elif isinstance(node, ast.Call):
                    target = resolve_call_target(info, node)
                    if (
                        target in _ORDER_SENSITIVE_CALLS
                        and node.args
                        and _is_set_expr(node.args[0], set_names, info)
                    ):
                        site = node.args[0]
                    elif (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                        and node.args
                        and _is_set_expr(node.args[0], set_names, info)
                    ):
                        site = node.args[0]
                if site is not None:
                    violations.append(Violation(
                        rule="DET003", path=info.path, line=node.lineno,
                        symbol=enclosing_symbol(info.tree, node),
                        message=(
                            "iteration over a set is hash-ordered "
                            "(PYTHONHASHSEED-dependent); wrap it in "
                            "sorted() or use an ordered container"
                        ),
                    ))
    return violations
