"""The rule registry and the Violation record.

A rule is a named check over a :class:`~repro.analysis.walker.ProjectIndex`
returning :class:`Violation` records.  Rules register themselves at import
time via the :func:`rule` decorator; the CLI runs them all.

Baseline keys deliberately omit line numbers: a suppression keyed on
``(rule, path, symbol)`` survives unrelated edits to the same file, while
moving the offending code to a different function invalidates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.analysis.walker import ProjectIndex


@dataclass(frozen=True)
class Violation:
    """One finding of one rule."""

    rule: str  # rule id, e.g. "DET001"
    path: str  # path relative to the source root
    line: int  # 1-based line of the offending node
    symbol: str  # enclosing function/method ("Class.method") or "<module>"
    message: str

    @property
    def baseline_key(self) -> str:
        """Line-number-free identity used by suppression files."""
        return f"{self.rule}::{self.path}::{self.symbol}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered rule: id, one-line description, check function."""

    rule_id: str
    description: str
    check: Callable[[ProjectIndex], List[Violation]]


ALL_RULES: List[Rule] = []


def rule(rule_id: str, description: str):
    """Register a check function under a rule id."""

    def register(func: Callable[[ProjectIndex], List[Violation]]):
        ALL_RULES.append(Rule(rule_id, description, func))
        return func

    return register
