"""Baseline (suppression) files for ``repro check``.

A baseline is a JSON file holding the :attr:`Violation.baseline_key`
strings of accepted findings.  Keys omit line numbers (see
:mod:`repro.analysis.registry`), so unrelated edits to a file do not
churn the baseline.  Keys that no longer match any finding are reported
as stale so the file shrinks as debt is paid down.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.registry import Violation

_SCHEMA = "repro-check-baseline/1"


def load_baseline(path: str) -> Set[str]:
    """The suppression keys stored in ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
        raise ValueError(
            f"{path} is not a repro-check baseline (expected schema "
            f"{_SCHEMA!r})"
        )
    suppressions = payload.get("suppressions", [])
    if not isinstance(suppressions, list) or not all(
        isinstance(key, str) for key in suppressions
    ):
        raise ValueError(f"{path}: 'suppressions' must be a list of strings")
    return set(suppressions)


def write_baseline(path: str, violations: Iterable[Violation]) -> int:
    """Write a baseline accepting every given violation; returns the count."""
    keys = sorted({violation.baseline_key for violation in violations})
    payload = {
        "schema": _SCHEMA,
        "comment": (
            "Accepted repro-check findings. Regenerate with "
            "'repro check --write-baseline <path>'."
        ),
        "suppressions": keys,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(keys)


def apply_baseline(
    violations: Sequence[Violation], suppressions: Set[str]
) -> Tuple[List[Violation], int, List[str]]:
    """Split findings against a baseline.

    Returns ``(unsuppressed, suppressed_count, stale_keys)`` where
    ``stale_keys`` are baseline entries matching no current finding.
    """
    current = {violation.baseline_key for violation in violations}
    kept = [v for v in violations if v.baseline_key not in suppressions]
    suppressed = len(violations) - len(kept)
    stale = sorted(suppressions - current)
    return kept, suppressed, stale
