"""Source discovery, parsing and the module import graph.

The :class:`ProjectIndex` is the input every rule works from: one parsed
AST per module, paths relative to the source root, a per-module import
map (local name -> dotted origin, used to resolve call targets like
``time.time`` through aliases), and module-to-module import edges from
which determinism rules compute the set of modules reachable from the
simulation core.

Built over this repository by default, but any directory holding a
package works — the checker's self-tests synthesize miniature packages
and feed them through the very same rules.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  # dotted module name, e.g. "repro.pipeline.processor"
    path: str  # path relative to the source root, posix separators
    tree: ast.Module
    # Local name -> dotted origin for module-level imports:
    #   import time            -> {"time": "time"}
    #   import numpy as np     -> {"np": "numpy"}
    #   from time import time  -> {"time": "time.time"}
    #   from datetime import datetime -> {"datetime": "datetime.datetime"}
    imports: Dict[str, str] = field(default_factory=dict)
    # Dotted names of modules this module imports (package-internal edges
    # only resolve against modules present in the index).
    imported_modules: Set[str] = field(default_factory=set)


def _module_name(rel_path: str) -> str:
    parts = rel_path[:-3].split("/")  # strip ".py"
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _collect_imports(info: ModuleInfo) -> None:
    package = info.name.rsplit(".", 1)[0] if "." in info.name else ""
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
                info.imported_modules.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module is None:
                base = package
            elif node.level:
                parts = package.split(".")
                base_parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(base_parts + [node.module])
            else:
                base = node.module
            info.imported_modules.add(base)
            for alias in node.names:
                local = alias.asname or alias.name
                info.imports[local] = f"{base}.{alias.name}"
                # ``from pkg import submodule`` also edges to the submodule.
                info.imported_modules.add(f"{base}.{alias.name}")


class ProjectIndex:
    """Every parsed module of a source tree plus its import graph."""

    def __init__(self, src_root: str, modules: List[ModuleInfo]) -> None:
        self.src_root = src_root
        self.modules = modules
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in modules}

    @classmethod
    def build(cls, src_root: Optional[str] = None) -> "ProjectIndex":
        if src_root is None:
            # .../src/repro/analysis/walker.py -> .../src
            src_root = os.path.dirname(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
            )
        modules: List[ModuleInfo] = []
        for dirpath, dirnames, filenames in os.walk(src_root):
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__", ".git")
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, src_root).replace(os.sep, "/")
                with open(full, "r", encoding="utf-8") as handle:
                    source = handle.read()
                tree = ast.parse(source, filename=rel)
                info = ModuleInfo(name=_module_name(rel), path=rel, tree=tree)
                _collect_imports(info)
                modules.append(info)
        return cls(src_root, modules)

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable_from(self, roots: Tuple[str, ...]) -> Set[str]:
        """Module names transitively imported from ``roots`` (inclusive).

        Only edges resolving to modules in this index are followed; an
        imported *package* pulls in its ``__init__`` module's own edges
        but not every submodule (the kernel imports what it uses).
        """
        seen: Set[str] = set()
        stack = [name for name in roots if name in self.by_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            info = self.by_name[name]
            for target in info.imported_modules:
                if target in self.by_name and target not in seen:
                    stack.append(target)
                else:
                    # ``from pkg.mod import name``: the edge may point at
                    # an attribute of a module rather than a module.
                    parent = target.rsplit(".", 1)[0] if "." in target else ""
                    if parent in self.by_name and parent not in seen:
                        stack.append(parent)
        return seen


def qualified_symbols(tree: ast.Module):
    """Yield ``(symbol, node)`` for every function/method, plus the module.

    ``symbol`` is the dotted in-module name (``Class.method``, ``func``,
    or ``<module>`` for top-level statements) — the stable baseline key
    component, robust to line-number churn.
    """
    yield "<module>", tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item


def enclosing_symbol(tree: ast.Module, target: ast.AST) -> str:
    """The qualified symbol whose body contains ``target``."""
    best = "<module>"
    for symbol, node in qualified_symbols(tree):
        if node is tree:
            continue
        if (
            node.lineno <= target.lineno
            and target.lineno <= max(node.lineno, node.end_lineno or node.lineno)
        ):
            best = symbol
    return best


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_call_target(info: ModuleInfo, node: ast.Call) -> Optional[str]:
    """The fully-qualified dotted target of a call, via the import map.

    ``time()`` after ``from time import time`` resolves to ``time.time``;
    ``dt.now()`` after ``from datetime import datetime as dt`` resolves
    to ``datetime.datetime.now``.  Returns None for calls on computed
    expressions.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = info.imports.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin
