"""Simulator-aware static analysis (the ``repro check`` command).

A small AST-based framework purpose-built for this codebase's two
unwritten contracts — bit-exact determinism and hot-path discipline —
plus the stage/latch architecture and the process-pool serialization
grammar.  Four rule families ship:

* determinism (``DET*``) — no wall-clock, no process-entropy, no
  set-order iteration in any module reachable from the simulation core;
* hot-path discipline (``HOT*``) — ``__slots__`` on the classes the
  per-cycle loops instantiate or traverse, and no closures/try/``sum()``
  in stage tick code;
* stage contracts (``CON*``) — every pipeline stage declares the latch
  surfaces it reads and writes (``CONTRACT``), checked against the
  surfaces its code actually touches;
* serialization (``SER*``) — literal controller specs must stay inside
  the picklable spec-tuple grammar the cache fingerprints understand.

Entry points: :func:`run_check` (used by the CLI), the
:class:`~repro.analysis.walker.ProjectIndex` (build one over any source
tree, which is how the self-tests feed fixture snippets through real
rules), and :mod:`~repro.analysis.baseline` for suppression files.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.registry import ALL_RULES, Violation
from repro.analysis.walker import ProjectIndex

# Import for side effects: each rule module registers its rules.
from repro.analysis import contracts  # noqa: F401
from repro.analysis import determinism  # noqa: F401
from repro.analysis import hotpath  # noqa: F401
from repro.analysis import serialization  # noqa: F401

__all__ = ["ProjectIndex", "Violation", "run_check"]


def run_check(
    src_root: Optional[str] = None,
    rules: Optional[List[str]] = None,
) -> List[Violation]:
    """Run every registered rule (or the named subset) over a source tree.

    ``src_root`` is the directory containing the ``repro`` package;
    defaults to the tree this module was imported from.  Returns the
    violations sorted by path, line and rule.
    """
    index = ProjectIndex.build(src_root)
    violations: List[Violation] = []
    for rule in ALL_RULES:
        if rules is not None and rule.rule_id not in rules:
            continue
        violations.extend(rule.check(index))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations
