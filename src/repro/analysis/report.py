"""Rendering for ``repro check`` results (text and JSON)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.registry import ALL_RULES, Violation

JSON_SCHEMA = "repro-check/1"


def render_text(
    violations: Sequence[Violation],
    suppressed: int = 0,
    stale: Sequence[str] = (),
) -> str:
    """Human-readable report, one finding per line, grep-friendly."""
    lines: List[str] = [violation.render() for violation in violations]
    if stale:
        lines.append("")
        lines.append(f"stale baseline entries ({len(stale)}):")
        lines.extend(f"  {key}" for key in stale)
    lines.append("")
    summary = f"{len(violations)} violation(s)"
    if suppressed:
        summary += f", {suppressed} suppressed by baseline"
    if stale:
        summary += f", {len(stale)} stale baseline entr(y/ies)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    violations: Sequence[Violation],
    suppressed: int = 0,
    stale: Sequence[str] = (),
) -> Dict:
    """Machine-readable report (stable schema for CI tooling)."""
    return {
        "schema": JSON_SCHEMA,
        "rules": [
            {"id": rule.rule_id, "description": rule.description}
            for rule in ALL_RULES
        ],
        "violations": [
            {
                "rule": violation.rule,
                "path": violation.path,
                "line": violation.line,
                "symbol": violation.symbol,
                "message": violation.message,
                "baseline_key": violation.baseline_key,
            }
            for violation in violations
        ],
        "count": len(violations),
        "suppressed": suppressed,
        "stale_baseline_keys": list(stale),
    }
