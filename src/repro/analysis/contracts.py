"""Stage/latch contract checking (``CON001``).

The stage kernel's correctness argument rests on which architectural
surfaces each stage may touch: reverse pipeline order only composes into
same-cycle latch semantics if, say, fetch never writes the decode latch.
That argument used to live in comments; here each stage class declares it
as data::

    CONTRACT = {
        "reads": ("decode_latch", "fetch_latch"),
        "writes": ("fetch_latch",),
    }

and this rule recomputes the touched-surface sets from the stage's code
and fails on any undeclared touch (or a missing/malformed declaration).

Seven canonical surfaces exist: ``fetch_latch``, ``decode_latch``,
``rob``, ``iq``, ``lsq``, ``renamer``, ``completions``.  Attribute
references resolve to surfaces by name (``rob_entries`` -> ``rob``,
``pending_tags`` -> ``renamer``, ``buckets`` -> ``completions``, ...),
then propagate through local aliases, including bound-method bindings
(``popleft = pipe.popleft`` records the write at the binding) and
call-result aliases (``bucket = buckets.get(cycle)`` keeps tracking the
completion store).  Mutating method calls, attribute/subscript stores and
augmented assignments count as writes; any other touch is a read.
Stores on ``self`` are stage-local state, not surface writes.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.registry import Violation, rule
from repro.analysis.walker import ProjectIndex

SURFACES = (
    "fetch_latch", "decode_latch", "rob", "iq", "lsq", "renamer",
    "completions",
)

# Attribute name -> surface.  These are the canonical access paths the
# kernel exposes (ThreadContext aliases included).
ATTR_TO_SURFACE = {
    "fetch_latch": "fetch_latch",
    "fetch_entries": "fetch_latch",
    "decode_latch": "decode_latch",
    "decode_entries": "decode_latch",
    "rob": "rob",
    "rob_entries": "rob",
    "iq": "iq",
    "ready_list": "iq",
    "waiters": "iq",
    "lsq": "lsq",
    "renamer": "renamer",
    "pending_tags": "renamer",
    "completions": "completions",
    "buckets": "completions",
}

# Method names that mutate their receiver.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "popitem", "remove", "clear", "add", "discard", "sort", "reverse",
    "update", "setdefault",
    # domain mutators on the kernel structures
    "push", "pop_head", "squash_younger", "restore", "release",
    "allocate", "dispatch", "wakeup", "note_squashed", "forget_tag",
    "forget", "mark_completed", "rename",
})


class _SurfaceTracker(ast.NodeVisitor):
    """Recompute the surfaces one stage method reads and writes."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}  # local name -> surface
        self.self_aliases: Dict[str, str] = {}  # self attr -> surface
        self.reads: Dict[str, int] = {}  # surface -> first line
        self.writes: Dict[str, int] = {}

    # -- surface resolution -------------------------------------------

    def _surface_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_aliases
            ):
                return self.self_aliases[node.attr]
            if node.attr in ATTR_TO_SURFACE:
                return ATTR_TO_SURFACE[node.attr]
            return self._surface_of(node.value)
        if isinstance(node, ast.Subscript):
            return self._surface_of(node.value)
        if isinstance(node, ast.Call):
            # bucket = buckets.get(cycle): result stays on the surface
            if isinstance(node.func, ast.Attribute):
                return self._surface_of(node.func.value)
        return None

    def _record(self, table: Dict[str, int], surface: str, line: int) -> None:
        if surface not in table:
            table[surface] = line

    # -- alias creation and write classification ----------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        value_surface = self._surface_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                # Bound-mutator binding: popleft = pipe.popleft mutates
                # the surface at every later call; charge the write here.
                if (
                    isinstance(node.value, ast.Attribute)
                    and node.value.attr in MUTATOR_METHODS
                ):
                    base = self._surface_of(node.value.value)
                    if base is not None:
                        self._record(self.writes, base, node.lineno)
                elif value_surface is not None:
                    self.aliases[target.id] = value_surface
                else:
                    self.aliases.pop(target.id, None)
            elif isinstance(target, ast.Attribute):
                if isinstance(target.value, ast.Name) and target.value.id == "self":
                    # Stage-local state; remember what it points at.
                    if value_surface is not None:
                        self.self_aliases[target.attr] = value_surface
                else:
                    surface = self._surface_of(target)
                    if surface is not None:
                        self._record(self.writes, surface, node.lineno)
            elif isinstance(target, ast.Subscript):
                surface = self._surface_of(target.value)
                if surface is not None:
                    self._record(self.writes, surface, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Attribute):
            if not (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in ATTR_TO_SURFACE
            ):
                surface = self._surface_of(target)
                if surface is not None:
                    self._record(self.writes, surface, node.lineno)
        elif isinstance(target, ast.Subscript):
            surface = self._surface_of(target.value)
            if surface is not None:
                self._record(self.writes, surface, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                surface = self._surface_of(target.value)
                if surface is not None:
                    self._record(self.writes, surface, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATOR_METHODS:
            surface = self._surface_of(node.func.value)
            if surface is not None:
                self._record(self.writes, surface, node.lineno)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            surface = self._surface_of(node)
            if surface is not None:
                self._record(self.reads, surface, node.lineno)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        surface = self._surface_of(node.iter)
        if surface is not None:
            self._record(self.reads, surface, node.lineno)
        self.generic_visit(node)


def _parse_contract(
    cls: ast.ClassDef,
) -> Tuple[Optional[Dict[str, Set[str]]], Optional[str], int]:
    """The declared CONTRACT, or (None, problem, line)."""
    for stmt in cls.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "CONTRACT" for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, ast.Dict):
            return None, "CONTRACT must be a dict literal", stmt.lineno
        declared: Dict[str, Set[str]] = {}
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if not (isinstance(key, ast.Constant) and key.value in ("reads", "writes")):
                return None, "CONTRACT keys must be 'reads' and 'writes'", stmt.lineno
            if not isinstance(value, (ast.Tuple, ast.List)):
                return (
                    None,
                    f"CONTRACT[{key.value!r}] must be a tuple of surface names",
                    stmt.lineno,
                )
            names: Set[str] = set()
            for element in value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return (
                        None,
                        f"CONTRACT[{key.value!r}] must hold string literals",
                        stmt.lineno,
                    )
                if element.value not in SURFACES:
                    return (
                        None,
                        f"unknown surface {element.value!r}; known: "
                        + ", ".join(SURFACES),
                        stmt.lineno,
                    )
                names.add(element.value)
            declared[key.value] = names
        declared.setdefault("reads", set())
        declared.setdefault("writes", set())
        return declared, None, stmt.lineno
    return None, None, cls.lineno


def _is_stage_subclass(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if name == "Stage":
            return True
    return False


@rule("CON001", "stages declare and honour their latch read/write surfaces")
def check_contracts(index: ProjectIndex) -> List[Violation]:
    violations: List[Violation] = []
    for info in index.modules:
        if not info.path.startswith("repro/pipeline/stages/"):
            continue
        for cls in info.tree.body:
            if not isinstance(cls, ast.ClassDef) or not _is_stage_subclass(cls):
                continue
            declared, problem, line = _parse_contract(cls)
            if problem is not None:
                violations.append(Violation(
                    rule="CON001", path=info.path, line=line,
                    symbol=cls.name, message=problem,
                ))
                continue
            if declared is None:
                violations.append(Violation(
                    rule="CON001", path=info.path, line=cls.lineno,
                    symbol=cls.name,
                    message=(
                        "stage class declares no CONTRACT; every stage "
                        "must declare the latch surfaces it reads and "
                        "writes"
                    ),
                ))
                continue
            # Recompute per method; a shared self-alias table lets tick
            # methods use aliases established in __init__.
            shared_self: Dict[str, str] = {}
            computed_reads: Dict[str, int] = {}
            computed_writes: Dict[str, int] = {}
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                tracker = _SurfaceTracker()
                tracker.self_aliases = shared_self
                for stmt in method.body:
                    tracker.visit(stmt)
                if method.name == "__init__":
                    # Construction wiring (e.g. caching a latch handle on
                    # self) is not a per-cycle surface touch.
                    continue
                for surface, first in tracker.reads.items():
                    computed_reads.setdefault(surface, first)
                for surface, first in tracker.writes.items():
                    computed_writes.setdefault(surface, first)
            for surface in sorted(set(computed_writes) - declared["writes"]):
                violations.append(Violation(
                    rule="CON001", path=info.path,
                    line=computed_writes[surface], symbol=cls.name,
                    message=(
                        f"stage writes surface '{surface}' but its "
                        "CONTRACT does not declare it in 'writes'"
                    ),
                ))
            covered = declared["reads"] | declared["writes"]
            for surface in sorted(set(computed_reads) - covered):
                violations.append(Violation(
                    rule="CON001", path=info.path,
                    line=computed_reads[surface], symbol=cls.name,
                    message=(
                        f"stage reads surface '{surface}' but its "
                        "CONTRACT declares it in neither 'reads' nor "
                        "'writes'"
                    ),
                ))
    return violations
