"""Hot-path discipline rules.

The stage kernel touches every in-flight instruction every cycle;
allocation and attribute-dict overhead there is the difference between
the ~1.9x kernel speedup and giving it back.  Two rules:

* ``HOT001`` — classes in the per-cycle packages (``pipeline``,
  ``frontend``, ``confidence``, ``power``) must declare ``__slots__``.
  Dataclasses, enums, exceptions and Protocols are exempt (different
  machinery), as are the run-scoped classes on the explicit allowlist
  below — stages keep ``__dict__`` because replacing ``tick`` on a stage
  *instance* is a documented extension point (see
  ``tests/test_processor.py``), and processors accumulate run-scoped
  SMT/observer state dynamically.
* ``HOT002`` — stage tick code (methods of ``Stage`` subclasses, the
  two cycle schedulers, and the array kernel's column structures in
  ``repro/pipeline/arrays.py``) must not build closures (lambda /
  nested def), open ``try`` blocks, or call ``sum()``: each is an
  allocation or a setup/teardown cost paid per cycle per thread.
  Explicit loops with an accumulator are the house idiom.  Methods that
  are *not* tick code despite living in a scanned class (cold probe or
  debug APIs) may use the flagged constructs through a scoped
  ``HOT002_ALLOWLIST`` entry — one ``(path, Class.method)`` pair with a
  stated reason, never a file- or class-wide suppression.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.registry import Violation, rule
from repro.analysis.walker import ProjectIndex, resolve_call_target

HOT_PACKAGE_PREFIXES = (
    "repro/pipeline/",
    "repro/frontend/",
    "repro/confidence/",
    "repro/power/",
)

# Run-scoped classes (built once per simulation, not per cycle) that
# intentionally keep a ``__dict__``.
SLOTS_ALLOWLIST = frozenset({
    # Subclasses (SmtProcessor) and callers attach run-scoped state
    # (shared_caps, observers) dynamically.
    ("repro/pipeline/processor.py", "Processor"),
    # Rebinding ``tick`` on a stage instance is a documented extension
    # point exercised by tests/test_processor.py.
    ("repro/pipeline/stages/base.py", "Stage"),
    ("repro/pipeline/stages/commit.py", "CommitRecoverStage"),
    ("repro/pipeline/stages/decode_rename.py", "DecodeRenameStage"),
    ("repro/pipeline/stages/execute_writeback.py", "ExecuteWritebackStage"),
    ("repro/pipeline/stages/fetch.py", "FetchStage"),
    ("repro/pipeline/stages/select_issue.py", "SelectIssueStage"),
    # The pinned object-kernel snapshot mirrors the five live stages
    # above verbatim (same tick-rebinding extension point); it must stay
    # byte-for-byte comparable to the code it snapshots, so it inherits
    # their allowlisting rather than growing __slots__ the original
    # never had.
    ("repro/pipeline/stages/objectkernel.py", "ObjectCommitRecoverStage"),
    ("repro/pipeline/stages/objectkernel.py", "ObjectDecodeRenameStage"),
    ("repro/pipeline/stages/objectkernel.py", "ObjectExecuteWritebackStage"),
    ("repro/pipeline/stages/objectkernel.py", "ObjectFetchStage"),
    ("repro/pipeline/stages/objectkernel.py", "ObjectSelectIssueStage"),
})

# Scoped HOT002 exemptions: (path, "Class.method") pairs for methods
# that live in a scanned class but are not tick code.  Every entry
# states its reason; a file- or class-wide suppression is never
# acceptable here — the point of the rule is that tick code stays
# loop-and-accumulator shaped.
HOT002_ALLOWLIST = frozenset({
    # Cold probe/debug API: the wheel's total occupancy is only read by
    # the sanitizer's ground-truth recomputation and tests, never by a
    # stage tick, so the clearer sum()-over-buckets form is fine.
    ("repro/pipeline/arrays.py", "CompletionWheel.__len__"),
})

_EXEMPT_BASES = frozenset({
    "Enum", "IntEnum", "Flag", "IntFlag", "NamedTuple", "Protocol",
    "Exception", "BaseException", "TypedDict",
})


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return True
    return False


def _is_exempt_class(node: ast.ClassDef) -> bool:
    if _is_dataclass_decorated(node):
        return True
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if name is None:
            continue
        if name in _EXEMPT_BASES or name.endswith("Error"):
            return True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
    return False


@rule("HOT001", "__slots__ on classes in per-cycle packages")
def check_slots(index: ProjectIndex) -> List[Violation]:
    violations: List[Violation] = []
    for info in index.modules:
        if not info.path.startswith(HOT_PACKAGE_PREFIXES):
            continue
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if _is_exempt_class(node):
                continue
            if (info.path, node.name) in SLOTS_ALLOWLIST:
                continue
            if not _declares_slots(node):
                violations.append(Violation(
                    rule="HOT001", path=info.path, line=node.lineno,
                    symbol=node.name,
                    message=(
                        f"class {node.name} lives in a per-cycle package "
                        "but declares no __slots__; per-instance dicts "
                        "cost memory and attribute-lookup time in the "
                        "hot loop"
                    ),
                ))
    return violations


def _is_stage_class(node: ast.ClassDef) -> bool:
    # Both cycle schedulers: the live one and the pinned object-kernel
    # snapshot get the same scrutiny.
    if node.name in ("CycleScheduler", "ObjectCycleScheduler"):
        return True
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if name == "Stage":
            return True
    return False


@rule("HOT002", "no closures, try blocks or sum() in stage tick code")
def check_stage_methods(index: ProjectIndex) -> List[Violation]:
    violations: List[Violation] = []
    for info in index.modules:
        # The array kernel's column structures are tick code too: every
        # class in repro/pipeline/arrays.py is driven from stage loops.
        arrays_module = info.path == "repro/pipeline/arrays.py"
        if not arrays_module and not info.path.startswith(
            "repro/pipeline/stages/"
        ):
            continue
        for cls in info.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            if not arrays_module and not _is_stage_class(cls):
                continue
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                symbol = f"{cls.name}.{method.name}"
                if (info.path, symbol) in HOT002_ALLOWLIST:
                    continue
                for node in ast.walk(method):
                    if node is method:
                        continue
                    construct = None
                    if isinstance(node, ast.Lambda):
                        construct = "a lambda (closure allocation)"
                    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        construct = "a nested function (closure allocation)"
                    elif isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                        construct = "a try block (per-entry setup cost)"
                    elif (
                        isinstance(node, ast.Call)
                        and resolve_call_target(info, node) == "sum"
                    ):
                        construct = (
                            "sum() (generator allocation; use an explicit "
                            "accumulator loop)"
                        )
                    if construct is not None:
                        violations.append(Violation(
                            rule="HOT002", path=info.path, line=node.lineno,
                            symbol=symbol,
                            message=f"stage method uses {construct}",
                        ))
    return violations
