"""Command-line interface: regenerate any table or figure from a shell.

Examples::

    python -m repro list                   # what can be regenerated
    python -m repro table1                 # power breakdown (Table 1)
    python -m repro figure3                # fetch throttling (Figure 3)
    python -m repro figure3 --bars energy  # per-benchmark text bars
    python -m repro figure5 --csv out.csv  # machine-readable export
    python -m repro run go C2              # one benchmark x one policy
    python -m repro ablations              # the DESIGN.md §6 studies
    python -m repro trace record go go.trace.gz   # replayable trace
    python -m repro trace replay go.trace.gz --verify
    python -m repro study list             # every registered StudySpec
    python -m repro study run mix4-grid    # run one (or several) studies
    python -m repro cache info             # result-cache entry count/bytes
    python -m repro cache prune --days 30  # drop stale cache entries
    python -m repro check                  # simulator-aware static analysis
    python -m repro check --format json    # machine-readable findings
    python -m repro run go C2 --sanitize   # pipeline invariant sanitizer on
    python -m repro run go C2 --telemetry  # per-stage probe counters on
    python -m repro study run clock-gating-styles --telemetry-out run.jsonl
    python -m repro telemetry summary run.jsonl   # validate + aggregate
    python -m repro telemetry export run.jsonl    # Prometheus text format
    python -m repro telemetry top run.jsonl --top 5

``study run`` accepts several names and executes them all on one warm
scheduler (shared process pool, shared cache), streaming per-cell
progress to stderr while stdout stays byte-deterministic.

Run lengths default to the library's simulation defaults; use
``--instructions``/``--warmup`` for quicker (or higher-fidelity) passes.
``--jobs N`` simulates independent cells in N parallel processes and
``--cache-dir DIR`` persists every simulation on disk (content-addressed),
so repeated figure or campaign runs only simulate what changed::

    python -m repro figure5 --jobs 8 --cache-dir ~/.cache/repro
    python -m repro campaign C2 A5 --seeds 5 --jobs 8 --cache-dir ~/.cache/repro

The cache directory can also come from the ``REPRO_CACHE_DIR`` environment
variable; ``--no-cache`` disables it for one invocation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.policy import experiment_policy
from repro.experiments import figures as fig_mod
from repro.experiments import tables as tab_mod
from repro.experiments.ablations import (
    clock_gating_styles,
    escalation_rule,
    estimator_swap,
    gating_threshold_sweep,
    mshr_sensitivity,
)
from repro.experiments.campaign import format_campaign, run_campaign
from repro.experiments.engine import ResultCache, build_engine
from repro.experiments.runner import ExperimentRunner, run_benchmark
from repro.report.ascii import figure_bars, sweep_lines
from repro.report.export import figure_to_csv, figure_to_json
from repro.smt.mixes import MIX_NAMES, load_mixes
from repro.smt.policies import POLICY_NAMES
from repro.workloads.suite import BENCHMARK_NAMES

_BAR_METRICS = {
    "speedup": "speedup",
    "power": "power_savings_pct",
    "energy": "energy_savings_pct",
    "ed": "ed_improvement_pct",
}

_FIGURES = {
    "figure1": fig_mod.figure1,
    "figure3": fig_mod.figure3,
    "figure4": fig_mod.figure4,
    "figure5": fig_mod.figure5,
}

_COMMANDS = (
    "list", "table1", "table2", "table3",
    "figure1", "figure3", "figure4", "figure5", "figure6", "figure7",
    "run", "ablations", "campaign", "smt", "trace", "study", "cache",
    "check", "telemetry",
)


def _bar_metric(name: str) -> str:
    """Resolve a ``--bars`` metric name, failing with the valid choices."""
    try:
        return _BAR_METRICS[name]
    except KeyError:
        raise SystemExit(
            f"unknown --bars metric {name!r}; "
            f"valid choices: {', '.join(sorted(_BAR_METRICS))}"
        ) from None


def _make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the Selective "
        "Throttling paper (HPCA 2003).",
    )
    parser.add_argument("command", choices=_COMMANDS, help="what to regenerate")
    parser.add_argument(
        "args", nargs="*",
        help="command arguments (run: BENCHMARK EXPERIMENT [estimator])",
    )
    parser.add_argument(
        "--instructions", type=int, default=None,
        help="measured instructions per simulation",
    )
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="warm-up instructions per simulation",
    )
    parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark subset (default: all eight)",
    )
    parser.add_argument(
        "--bars", choices=sorted(_BAR_METRICS), default=None,
        help="render per-benchmark text bars for one metric",
    )
    parser.add_argument("--csv", default=None, help="write figure records to CSV")
    parser.add_argument("--json", default=None, help="write figure payload to JSON")
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel simulation processes (default: the machine's CPU "
        "count; must be >= 1)",
    )
    parser.add_argument(
        "--cache-dir", default=os.environ.get("REPRO_CACHE_DIR"),
        help="persist per-simulation results in this directory "
        "(default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the result cache for this invocation",
    )
    parser.add_argument(
        "--seeds", type=int, default=None,
        help="program-seed variants per campaign-style cell (campaign: "
        "default 3; study run: default from the study spec)",
    )
    parser.add_argument(
        "--save", default=None, help="write campaign results to a JSON file"
    )
    parser.add_argument(
        "--mix", default=None,
        help=f"SMT workload mix (smt only; one of: {', '.join(MIX_NAMES)})",
    )
    parser.add_argument(
        "--policy", choices=POLICY_NAMES, default="confidence-gating",
        help="SMT fetch policy (smt only; default: confidence-gating)",
    )
    parser.add_argument(
        "--sharing", choices=("partitioned", "shared"), default="partitioned",
        help="SMT back-end capacity mode (smt only; default: partitioned)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="base seed of an SMT mix or recorded trace (smt/trace only)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="trace replay only: also run the live walk and require "
        "bit-identical results",
    )
    parser.add_argument(
        "--days", type=float, default=30.0,
        help="cache prune only: drop entries older than this many days "
        "(default: 30)",
    )
    parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="cache prune only: after the age pass, evict oldest entries "
        "until the cache fits N bytes",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run simulations with the pipeline invariant sanitizer "
        "(occupancy, free-list, latch and energy-ledger checks every "
        "cycle; propagated to pool workers)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="instrument simulations with the per-stage probe bus and "
        "publish runtime metrics (propagated to pool workers; results "
        "stay bit-identical to uninstrumented runs)",
    )
    parser.add_argument(
        "--telemetry-out", default=None, metavar="FILE",
        help="write the telemetry event stream (repro-telemetry/1 JSONL) "
        "to FILE; implies --telemetry",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="telemetry top only: number of counters to rank (default: 10)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="check only: report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="check only: suppression file of accepted findings",
    )
    parser.add_argument(
        "--write-baseline", default=None,
        help="check only: accept all current findings into this file "
        "and exit",
    )
    return parser


def _effective_jobs(argument: Optional[int]) -> int:
    """Validate ``--jobs`` and default it to the machine's CPU count."""
    if argument is None:
        return os.cpu_count() or 1
    if argument < 1:
        raise SystemExit(
            f"--jobs must be >= 1, got {argument} "
            "(omit it to use every CPU)"
        )
    return argument


def _benchmark_list(argument: Optional[str]) -> Optional[List[str]]:
    if argument is None:
        return None
    names = [name.strip() for name in argument.split(",") if name.strip()]
    unknown = sorted(set(names) - set(BENCHMARK_NAMES))
    if unknown:
        raise SystemExit(f"unknown benchmarks: {', '.join(unknown)}")
    return names


def _emit_figure(figure, options) -> None:
    print(fig_mod.format_figure(figure))
    if options.bars:
        print()
        print(figure_bars(figure, _bar_metric(options.bars)))
    if options.csv:
        with open(options.csv, "w") as handle:
            handle.write(figure_to_csv(figure))
        print(f"wrote {options.csv}")
    if options.json:
        with open(options.json, "w") as handle:
            handle.write(figure_to_json(figure))
        print(f"wrote {options.json}")


def _cmd_list() -> None:
    print("commands:")
    print("  table1 table2 table3        — the paper's tables")
    print("  figure1 figure3..figure7    — the paper's figures")
    print("  run BENCH EXP [ESTIMATOR]   — one simulation vs its baseline")
    print("  ablations                   — estimator swap, escalation rule,")
    print("                                gating threshold, cc styles, MSHRs")
    print("  campaign EXP [EXP ...]      — multi-seed sweep with 95% intervals")
    print("  smt --mix NAME              — SMT multi-program mix (per-thread IPC,")
    print("                                weighted speedup, fairness, EPI)")
    print("  trace record BENCH P[.gz]   — record a replayable true-path trace")
    print("  trace replay PATH [--verify]— replay it through the full pipeline")
    print("  study list|run NAME [NAME..]— declarative studies on the batched")
    print("                                sweep scheduler (one warm pool)")
    print("  cache info|prune            — inspect / bound the result cache "
          "(--days, --max-bytes)")
    print("  check [--format json]       — static analysis: determinism, hot-path")
    print("                                discipline, stage contracts, spec grammar")
    print("  telemetry summary|export|top FILE — validate/aggregate a JSONL")
    print("                                event stream (--telemetry-out)")
    print(f"benchmarks: {', '.join(BENCHMARK_NAMES)}")
    print(f"mixes: {', '.join(MIX_NAMES)} (policies: {', '.join(POLICY_NAMES)})")
    print("experiments: A1-A7, B1-B9, C1-C7 (gating entries via ('gating', N))")
    print("scaling: --jobs N (parallel processes), --cache-dir DIR (resume)")


def _cmd_run(options, runner: ExperimentRunner) -> None:
    if len(options.args) < 2:
        raise SystemExit("usage: repro run BENCHMARK EXPERIMENT [estimator]")
    benchmark, experiment = options.args[0], options.args[1]
    spec: tuple = ("throttle", experiment)
    if len(options.args) > 2:
        spec = ("throttle", experiment, options.args[2])
    baseline = runner.baseline(benchmark)
    candidate = runner.run(benchmark, spec)
    from repro.experiments.results import compare

    comparison = compare(baseline, candidate)
    print(f"{benchmark} under {candidate.label} (vs baseline):")
    print(f"  baseline IPC        {baseline.ipc:8.3f}")
    print(f"  candidate IPC       {candidate.ipc:8.3f}")
    print(f"  speedup             {comparison.speedup:8.3f}")
    print(f"  power savings       {comparison.power_savings_pct:7.2f}%")
    print(f"  energy savings      {comparison.energy_savings_pct:7.2f}%")
    print(f"  E-D improvement     {comparison.ed_improvement_pct:7.2f}%")


def _cmd_ablations(options, runner: ExperimentRunner, benchmarks) -> None:
    print(fig_mod.format_figure(estimator_swap(runner, benchmarks=benchmarks)))
    print()
    print(fig_mod.format_figure(escalation_rule(runner, benchmarks=benchmarks)))
    print()
    print(fig_mod.format_figure(gating_threshold_sweep(runner, benchmarks=benchmarks)))
    print()
    from repro.studies.library import render_mshr_sweep, render_style_table

    print(render_style_table(clock_gating_styles(
        runner.instructions, runner.warmup, benchmarks=benchmarks
    )))
    print()
    print(render_mshr_sweep(mshr_sensitivity(
        (2, 8, 16), runner.instructions, runner.warmup, benchmarks=benchmarks
    )))


def _cmd_smt(options, cache: Optional[ResultCache]) -> None:
    if not options.mix:
        print("usage: repro smt --mix NAME [--policy P] [--sharing M] [--seed N]")
        print("mixes:")
        for mix in load_mixes().values():
            print(
                f"  {mix.name:<14s} {len(mix.benchmarks)} threads: "
                f"{', '.join(mix.benchmarks)} — {mix.description}"
            )
        raise SystemExit(2)
    from repro.experiments.scheduler import SweepScheduler
    from repro.studies.library import smt_mix_study
    from repro.studies.spec import StudyContext, run_study

    # One study: the mix plus its single-threaded references, batched
    # through the same fan-out and content-addressed cache.
    study = smt_mix_study(
        options.mix, policy=options.policy, sharing=options.sharing,
        seed=options.seed,
    )
    context = StudyContext(
        instructions=options.instructions, warmup=options.warmup
    )
    scheduler = SweepScheduler(jobs=options.jobs, cache=cache)
    print(run_study(study, context, executor=scheduler).render())


def _cmd_trace(options) -> None:
    """``repro trace record BENCH PATH`` / ``repro trace replay PATH``."""
    import json as json_mod

    from repro.experiments.engine import (
        default_instructions,
        default_warmup,
        make_trace_cell,
        result_to_dict,
        simulate,
    )
    from repro.workloads.trace import REPLAY_HEADROOM, record_benchmark_trace

    usage = (
        "usage: repro trace record BENCHMARK PATH[.gz] [--instructions N] "
        "[--seed S]\n       repro trace replay PATH[.gz] [--instructions N] "
        "[--warmup N] [--verify]"
    )
    if not options.args:
        raise SystemExit(usage)
    action = options.args[0]

    if action == "record":
        if len(options.args) != 3:
            raise SystemExit(usage)
        benchmark, path = options.args[1], options.args[2]
        if benchmark not in BENCHMARK_NAMES:
            raise SystemExit(f"unknown benchmark {benchmark!r}")
        count = options.instructions or (
            default_instructions() + default_warmup() + REPLAY_HEADROOM
        )
        header = record_benchmark_trace(
            benchmark, path, count, seed=options.seed
        )
        print(
            f"recorded {header.records} true-path records of "
            f"{header.benchmark!r} (seed {header.seed}) to {path}"
        )
        return

    if action == "replay":
        if len(options.args) != 2:
            raise SystemExit(usage)
        path = options.args[1]
        cell = make_trace_cell(
            path,
            instructions=options.instructions,
            warmup=options.warmup,
        )
        result = simulate(cell)
        print(f"replayed {path} ({cell.benchmark}, seed {cell.seed}):")
        print(f"  committed           {result.instructions:8d}")
        print(f"  cycles              {result.cycles:8d}")
        print(f"  IPC                 {result.ipc:8.3f}")
        print(f"  miss rate           {result.miss_rate * 100:7.2f}%")
        print(f"  average power       {result.average_power_watts:8.2f} W")
        print(f"  wasted energy       {result.wasted_energy_fraction * 100:7.2f}%")
        if options.verify:
            from dataclasses import replace as dc_replace

            live = simulate(dc_replace(cell, trace=None, label=None))
            replayed = result_to_dict(dc_replace(result, label=live.label))
            lived = result_to_dict(live)
            same = json_mod.dumps(replayed, sort_keys=True) == json_mod.dumps(
                lived, sort_keys=True
            )
            if not same:
                raise SystemExit(
                    "FAIL: trace replay diverged from the live walk"
                )
            print("verify: replay is bit-identical to the live walk")
        return

    raise SystemExit(usage)


def _cmd_study(options, cache: Optional[ResultCache], benchmarks) -> None:
    """``repro study list`` / ``repro study run NAME [NAME ...]``."""
    from repro.experiments.scheduler import SweepScheduler
    from repro.studies import StudyContext, all_studies, get_study, run_study

    usage = (
        "usage: repro study list\n"
        "       repro study run NAME [NAME ...] [--benchmarks B,...] "
        "[--instructions N] [--warmup N] [--seeds N] [--jobs N] "
        "[--cache-dir DIR] [--csv F] [--json F]"
    )
    if not options.args:
        raise SystemExit(usage)
    action = options.args[0]

    if action == "list":
        studies = all_studies()
        width = max(len(name) for name in studies)
        print(f"{len(studies)} registered studies (repro study run NAME):")
        for name, spec in studies.items():
            print(f"  {name:<{width}s}  {spec.grid()}")
            print(f"  {'':<{width}s}  {spec.description}")
        return

    if action != "run" or len(options.args) < 2:
        raise SystemExit(usage)
    names = options.args[1:]
    specs = [get_study(name) for name in names]  # validate all up front
    if (options.csv or options.json) and len(specs) > 1:
        raise SystemExit("--csv/--json exports need exactly one study")
    if options.csv and specs[0].to_csv is None:
        raise SystemExit(f"study {specs[0].name!r} has no CSV export")
    if options.json and specs[0].to_json is None:
        raise SystemExit(f"study {specs[0].name!r} has no JSON export")
    context = StudyContext(
        benchmarks=tuple(benchmarks) if benchmarks is not None else None,
        instructions=options.instructions,
        warmup=options.warmup,
        seeds=options.seeds,
    )
    # One scheduler for the whole run: every study shares the warm
    # process pool, the cache and the affinity batcher.  Per-cell
    # progress goes through the telemetry bus: a LiveView listener
    # renders the classic stderr status line, and a --telemetry-out
    # stream captures the same progression as structured events.
    from repro.telemetry.events import configure as telemetry_configure
    from repro.telemetry.events import publish as telemetry_publish
    from repro.telemetry.live import LiveView

    telemetry_configure(listener=LiveView(sys.stderr))
    scheduler = SweepScheduler(jobs=options.jobs, cache=cache)
    for index, spec in enumerate(specs):
        def progress(done, total, _name=spec.name):
            telemetry_publish(
                "study-progress", study=_name, done=done, total=total
            )

        run = run_study(spec, context, executor=scheduler, progress=progress)
        telemetry_publish(
            "study-complete", study=spec.name, cells=len(run.plan.cells)
        )
        if index:
            print()
        print(run.render())
        if options.csv:
            with open(options.csv, "w") as handle:
                handle.write(spec.to_csv(run.artifact))
            print(f"wrote {options.csv}")
        if options.json:
            with open(options.json, "w") as handle:
                handle.write(spec.to_json(run.artifact))
            print(f"wrote {options.json}")


def _cmd_check(options) -> int:
    """``repro check``: the simulator-aware static-analysis pass."""
    import json as json_mod

    from repro.analysis import run_check
    from repro.analysis.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.analysis.report import render_json, render_text

    violations = run_check()
    if options.write_baseline:
        count = write_baseline(options.write_baseline, violations)
        print(f"wrote {count} suppression(s) to {options.write_baseline}")
        return 0
    suppressed, stale = 0, []
    if options.baseline:
        keys = load_baseline(options.baseline)
        violations, suppressed, stale = apply_baseline(violations, keys)
    if options.format == "json":
        print(json_mod.dumps(
            render_json(violations, suppressed, stale), indent=2
        ))
    else:
        print(render_text(violations, suppressed, stale))
    return 1 if violations else 0


def _cmd_cache(options) -> None:
    """``repro cache info`` / ``repro cache prune --days N [--max-bytes N]``."""
    usage = (
        "usage: repro cache info|prune [--cache-dir DIR] [--days N] "
        "[--max-bytes N]"
    )
    if not options.args or options.args[0] not in ("info", "prune"):
        raise SystemExit(usage)
    if not options.cache_dir:
        raise SystemExit(
            "repro cache: no cache directory (pass --cache-dir or set "
            "REPRO_CACHE_DIR)"
        )
    cache = ResultCache(options.cache_dir)
    if options.args[0] == "info":
        info = cache.info()
        print(f"cache {options.cache_dir}")
        print(f"  entries       {info['entries']}")
        print(f"  bytes         {info['bytes']}"
              f" ({info['bytes'] / 1048576:.2f} MiB)")
        print(f"  oldest entry  {info['oldest_age_days']:.1f} days old")
        print(f"  newest entry  {info['newest_age_days']:.1f} days old")
        stats = cache.stats()
        print(f"  hits          {stats['hits']}"
              f" (memory {stats['memory_hits']}, disk {stats['disk_hits']})")
        print(f"  misses        {stats['misses']}")
        print(f"  stores        {stats['stores']}")
        print(f"  evictions     {stats['evictions']}")
        print(f"  hit rate      {stats['hit_rate'] * 100:.1f}%"
              f" (memory {stats['memory_hit_rate'] * 100:.1f}%,"
              f" disk {stats['disk_hit_rate'] * 100:.1f}%)")
        return
    dropped = cache.prune(options.days, max_bytes=options.max_bytes)
    cache.flush_stats()
    bound = (
        f" and over the {options.max_bytes}-byte size bound"
        if options.max_bytes is not None else ""
    )
    print(
        f"pruned {dropped} entries older than {options.days:g} days{bound} "
        f"from {options.cache_dir}"
    )


def _cmd_telemetry(options) -> int:
    """``repro telemetry summary|export|top FILE``: consume a stream."""
    from repro.telemetry.export import (
        read_events,
        summarize,
        to_prometheus,
        top_counters,
        validate_events,
    )

    usage = "usage: repro telemetry summary|export|top FILE [--top N]"
    if len(options.args) != 2 or options.args[0] not in (
        "summary", "export", "top",
    ):
        raise SystemExit(usage)
    action, path = options.args
    try:
        events = read_events(path)
    except OSError as error:
        raise SystemExit(f"repro telemetry: {error}")
    except ValueError as error:
        raise SystemExit(f"repro telemetry: {error}")
    if action == "summary":
        errors = validate_events(events)
        if errors:
            for message in errors:
                print(f"invalid: {message}", file=sys.stderr)
            print(
                f"{path}: {len(errors)} schema violation(s)", file=sys.stderr
            )
            return 1
        print(summarize(events))
        return 0
    if action == "export":
        print(to_prometheus(events), end="")
        return 0
    for name, value in top_counters(events, options.top):
        print(f"{value:>14d}  {name}")
    return 0


def _experiment_spec(name: str) -> tuple:
    """Map a CLI experiment name to a controller spec.

    Policy names (A1-C6) become throttle specs; the per-figure Pipeline
    Gating entries (A7, B9, C7) and ``gating:N`` become gating specs.
    """
    if name.startswith("gating:"):
        return ("gating", int(name.split(":", 1)[1]))
    if experiment_policy(name) is None:
        return ("gating", 2)
    return ("throttle", name)


def _cmd_campaign(options, cache: Optional[ResultCache], benchmarks) -> None:
    if not options.args:
        raise SystemExit("usage: repro campaign EXPERIMENT [EXPERIMENT ...]")
    experiments = {name: _experiment_spec(name) for name in options.args}
    result = run_campaign(
        experiments,
        benchmarks=benchmarks,
        seeds=3 if options.seeds is None else options.seeds,
        instructions=options.instructions or 8_000,
        warmup=options.warmup,
        engine=build_engine(jobs=options.jobs, cache=cache),
    )
    print(format_campaign(result))
    if options.save:
        result.save(options.save)
        print(f"wrote {options.save}")


def main(argv: Optional[List[str]] = None) -> int:
    options = _make_parser().parse_args(argv)
    if options.sanitize:
        # Before any simulation (and before the process pool forks/spawns
        # workers, which read it at config construction).
        os.environ["REPRO_SANITIZE"] = "1"
    if options.telemetry or options.telemetry_out:
        # Likewise pre-fork: workers read REPRO_TELEMETRY at config
        # construction, so instrumented cells stay instrumented when
        # they run in the pool.
        os.environ["REPRO_TELEMETRY"] = "1"
    writer = None
    if options.telemetry_out:
        from repro.telemetry.events import configure as telemetry_configure
        from repro.telemetry.events import publish as telemetry_publish
        from repro.telemetry.runtime import build_manifest

        writer = open(options.telemetry_out, "w", encoding="utf-8")
        telemetry_configure(writer=writer)
        telemetry_publish(
            "manifest",
            **build_manifest(
                options.command,
                studies=(
                    options.args[1:]
                    if options.command == "study"
                    and options.args[:1] == ["run"]
                    else None
                ),
                jobs=options.jobs,
                cache_dir=options.cache_dir,
                instructions=options.instructions,
                warmup=options.warmup,
            ),
        )
    try:
        return _dispatch(options)
    finally:
        # The sink is process-global: detach whatever this invocation
        # configured (writer, the study command's LiveView listener) so
        # repeated in-process main() calls start clean.
        from repro.telemetry.events import reset as telemetry_reset

        telemetry_reset()
        if writer is not None:
            writer.close()
            print(f"wrote {options.telemetry_out}", file=sys.stderr)


def _dispatch(options) -> int:
    command = options.command
    if command == "list":
        _cmd_list()
        return 0
    if command == "check":
        return _cmd_check(options)
    if command == "telemetry":
        return _cmd_telemetry(options)
    if command == "trace":
        _cmd_trace(options)
        return 0
    if command == "cache":
        _cmd_cache(options)
        return 0

    options.jobs = _effective_jobs(options.jobs)
    benchmarks = _benchmark_list(options.benchmarks)
    cache: Optional[ResultCache] = None
    if options.cache_dir and not options.no_cache:
        cache = ResultCache(options.cache_dir)
    runner = ExperimentRunner(
        instructions=options.instructions, warmup=options.warmup,
        jobs=options.jobs, cache=cache,
    )

    if command == "table1":
        print(tab_mod.format_table1(tab_mod.table1(runner)))
    elif command == "table2":
        print(tab_mod.format_table2(tab_mod.table2()))
    elif command == "table3":
        print(tab_mod.format_table3())
    elif command in _FIGURES:
        figure = _FIGURES[command](runner, benchmarks=benchmarks)
        _emit_figure(figure, options)
    elif command == "figure6":
        sweep = fig_mod.figure6(
            instructions=options.instructions, benchmarks=benchmarks,
            jobs=options.jobs, cache=cache,
        )
        print(fig_mod.format_sweep("figure6 (C2)", sweep, "depth"))
        if options.bars:
            print()
            print(sweep_lines(sweep, (_bar_metric(options.bars),), x_label="depth"))
    elif command == "figure7":
        sweep = fig_mod.figure7(
            instructions=options.instructions, benchmarks=benchmarks,
            jobs=options.jobs, cache=cache,
        )
        print(fig_mod.format_sweep("figure7 (C2)", sweep, "total KB"))
        if options.bars:
            print()
            print(sweep_lines(sweep, (_bar_metric(options.bars),), x_label="KB"))
    elif command == "run":
        _cmd_run(options, runner)
    elif command == "ablations":
        _cmd_ablations(options, runner, benchmarks)
    elif command == "campaign":
        _cmd_campaign(options, cache, benchmarks)
    elif command == "smt":
        _cmd_smt(options, cache)
    elif command == "study":
        _cmd_study(options, cache, benchmarks)
    return 0


if __name__ == "__main__":
    sys.exit(main())
