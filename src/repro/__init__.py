"""repro — reproduction of "Power-Aware Control Speculation through
Selective Throttling" (Aragón, González & González, HPCA 2003).

The package provides, from scratch:

* a cycle-level 8-wide out-of-order processor simulator with real
  wrong-path fetch/decode/execute (:mod:`repro.pipeline`),
* a Wattch-style power model with cc3 clock gating and wasted-work
  attribution (:mod:`repro.power`),
* branch predictors and confidence estimators (:mod:`repro.bpred`,
  :mod:`repro.confidence`),
* the paper's Selective Throttling mechanism, Pipeline Gating baseline and
  oracle limit studies (:mod:`repro.core`),
* eight synthetic SPECint-like benchmarks calibrated to the paper's
  Table 2 (:mod:`repro.workloads`),
* drivers regenerating every table and figure (:mod:`repro.experiments`),
* an N-thread SMT core with pluggable fetch policies — round-robin,
  ICOUNT, and confidence-driven thread fetch gating (the paper's
  throttling levels applied to thread selection) — evaluated on named
  multi-program mixes with weighted-speedup and harmonic-fairness
  reporting (:mod:`repro.smt`, CLI command ``smt``).

Quickstart::

    from repro import ExperimentRunner, compare

    runner = ExperimentRunner()
    baseline = runner.baseline("go")
    throttled = runner.run("go", ("throttle", "C2"))
    print(compare(baseline, throttled))

SMT mixes run through the same execution engine::

    from repro import build_engine, make_smt_cell, smt_baseline_cells

    engine = build_engine(jobs=4, cache_dir="~/.cache/repro")
    cell = make_smt_cell("mix2-branchy", policy="confidence-gating")
    mix_result, *alone = engine.run([cell] + smt_baseline_cells(cell))
"""

from repro.bpred import GSharePredictor
from repro.confidence import (
    BPRUEstimator,
    ConfidenceLevel,
    ConfidenceMatrix,
    JRSEstimator,
    PerfectEstimator,
)
from repro.core import (
    BandwidthLevel,
    OracleController,
    OracleMode,
    PipelineGatingController,
    SelectiveThrottler,
    ThrottleAction,
    ThrottlePolicy,
    experiment_policy,
    list_experiments,
)
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    ProgramError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.experiments.campaign import CampaignResult, run_campaign
from repro.experiments.engine import (
    ExecutionEngine,
    ResultCache,
    SimCell,
    SmtCell,
    build_engine,
    make_cell,
    make_smt_cell,
    make_trace_cell,
    simulate,
    simulate_smt,
    smt_baseline_cells,
)
from repro.frontend import (
    CompiledSupply,
    InstructionSupply,
    LiveSupply,
    TraceSupply,
    build_supply,
)
from repro.experiments.results import ComparisonResult, SimulationResult, compare
from repro.experiments.runner import ExperimentRunner, make_controller, run_benchmark
from repro.pipeline import Processor, ProcessorConfig, table3_config
from repro.power import ClockGatingStyle, PowerModel, PowerUnit, default_unit_powers
from repro.smt import (
    MIX_NAMES,
    POLICY_NAMES,
    ConfidenceGatingPolicy,
    ICountPolicy,
    RoundRobinPolicy,
    SmtProcessor,
    SmtResult,
    harmonic_fairness,
    make_fetch_policy,
    mix_spec,
    weighted_speedup,
)
from repro.studies import (
    StudyContext,
    StudySpec,
    get_study,
    run_study,
    study_names,
)
from repro.workloads import BENCHMARK_NAMES, benchmark_program, benchmark_spec, load_suite

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # pipeline
    "Processor",
    "ProcessorConfig",
    "table3_config",
    # core mechanism
    "ConfidenceLevel",
    "BandwidthLevel",
    "ThrottleAction",
    "ThrottlePolicy",
    "SelectiveThrottler",
    "PipelineGatingController",
    "OracleController",
    "OracleMode",
    "experiment_policy",
    "list_experiments",
    # predictors / estimators
    "GSharePredictor",
    "BPRUEstimator",
    "JRSEstimator",
    "PerfectEstimator",
    "ConfidenceMatrix",
    # power
    "PowerModel",
    "PowerUnit",
    "ClockGatingStyle",
    "default_unit_powers",
    # workloads
    "BENCHMARK_NAMES",
    "benchmark_spec",
    "benchmark_program",
    "load_suite",
    # instruction supply
    "InstructionSupply",
    "CompiledSupply",
    "LiveSupply",
    "TraceSupply",
    "build_supply",
    "make_trace_cell",
    # experiments
    "ExperimentRunner",
    "run_benchmark",
    "make_controller",
    "SimulationResult",
    "ComparisonResult",
    "compare",
    "SimCell",
    "make_cell",
    "simulate",
    "ExecutionEngine",
    "ResultCache",
    "build_engine",
    "CampaignResult",
    "run_campaign",
    # studies
    "StudySpec",
    "StudyContext",
    "run_study",
    "get_study",
    "study_names",
    # SMT
    "SmtProcessor",
    "SmtResult",
    "SmtCell",
    "make_smt_cell",
    "simulate_smt",
    "smt_baseline_cells",
    "RoundRobinPolicy",
    "ICountPolicy",
    "ConfidenceGatingPolicy",
    "make_fetch_policy",
    "POLICY_NAMES",
    "MIX_NAMES",
    "mix_spec",
    "weighted_speedup",
    "harmonic_fairness",
    # errors
    "ReproError",
    "ConfigurationError",
    "ProgramError",
    "SimulationError",
    "WorkloadError",
    "ExperimentError",
]
