"""The study registry: every named study the CLI can list, run, export."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ExperimentError
from repro.studies.spec import StudySpec

_REGISTRY: Dict[str, StudySpec] = {}


def register(spec: StudySpec) -> StudySpec:
    """Add a study to the registry (names are unique)."""
    if spec.name in _REGISTRY:
        raise ExperimentError(f"study {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def study_names() -> List[str]:
    """All registered study names, in registration order."""
    return list(_REGISTRY)


def get_study(name: str) -> StudySpec:
    """Look a study up by name, failing with the valid choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown study {name!r}; known: {', '.join(study_names())}"
        ) from None


def all_studies() -> Dict[str, StudySpec]:
    """A copy of the registry, in registration order."""
    return dict(_REGISTRY)
