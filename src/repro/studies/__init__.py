"""The declarative study layer: StudySpec grids over the engine's cells.

See :mod:`repro.studies.spec` for the vocabulary,
:mod:`repro.studies.library` for the registered studies, and
``docs/ARCHITECTURE.md`` ("Study layer") for the batching/affinity
contract and how to register a new study.
"""

from repro.studies import library as _library  # populates the registry
from repro.studies.registry import all_studies, get_study, register, study_names
from repro.studies.spec import (
    Axis,
    StudyContext,
    StudyPlan,
    StudyRun,
    StudySpec,
    run_study,
)

__all__ = [
    "Axis",
    "StudyContext",
    "StudyPlan",
    "StudyRun",
    "StudySpec",
    "run_study",
    "register",
    "get_study",
    "study_names",
    "all_studies",
]
