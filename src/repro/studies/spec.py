"""The declarative study vocabulary: axes × benchmarks × seeds grids.

A :class:`StudySpec` is the one description of an experiment sweep:

* **axes** — the named dimensions of the grid (mechanisms, depths, table
  sizes, estimators, mixes, fetch policies, seed variants …), purely
  declarative so ``repro study list`` can show a study's shape and cost
  without running anything;
* **compile** — lowers the grid (under a :class:`StudyContext` carrying
  the benchmark subset, run lengths, configuration and seed count) to the
  engine's existing :class:`~repro.experiments.engine.SimCell` /
  :class:`~repro.experiments.engine.SmtCell` vocabulary, as a flat
  :class:`StudyPlan` with one semantic key per cell;
* **summarize** — folds the per-cell results back into the study's
  artifact (a ``FigureResult``, a ``CampaignResult``, a sweep dict …),
  deriving the paper's comparison metrics;
* **render** — formats the artifact as the deterministic text the CLI
  prints (formatting hints live with the study, not the driver).

Execution is *not* part of the spec: :func:`run_study` hands the compiled
plan to any executor exposing ``run_cells(cells) -> results`` — a
:class:`~repro.experiments.scheduler.SweepScheduler` (batched, parallel,
cached), an :class:`~repro.experiments.engine.ExecutionEngine`, or an
:class:`~repro.experiments.runner.ExperimentRunner` (adds an in-process
memo, which the figure drivers use to share baselines across studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.pipeline.config import ProcessorConfig


@dataclass(frozen=True)
class StudyContext:
    """Everything a caller may override when running a study.

    ``None`` means "the study's (or the library's) default".  Contexts are
    deliberately tiny and study-agnostic: axes that belong to one study
    (depths, thresholds, mixes) are part of its spec, not the context.
    """

    benchmarks: Optional[Tuple[str, ...]] = None
    instructions: Optional[int] = None
    warmup: Optional[int] = None
    config: Optional[ProcessorConfig] = None
    seeds: Optional[int] = None  # seed variants for campaign-style studies

    def resolved_benchmarks(self, default: Sequence[str]) -> List[str]:
        return list(self.benchmarks if self.benchmarks is not None else default)


@dataclass(frozen=True)
class Axis:
    """One named dimension of a study grid (labels are display-only)."""

    name: str
    values: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class StudyPlan:
    """A compiled study: flat cells plus one semantic key per cell."""

    cells: List[Any]
    keys: List[Any]

    def __post_init__(self) -> None:
        if len(self.cells) != len(self.keys):
            raise ExperimentError(
                f"study plan has {len(self.cells)} cells but "
                f"{len(self.keys)} keys"
            )


@dataclass(frozen=True)
class StudySpec:
    """One declarative experiment study (see the module docstring)."""

    name: str
    title: str
    description: str
    axes: Tuple[Axis, ...]
    compile: Callable[["StudySpec", StudyContext], StudyPlan]
    summarize: Callable[["StudySpec", StudyContext, StudyPlan, List[Any]], Any]
    render: Callable[[Any], str]
    # Optional machine-readable exports of the artifact (CSV / JSON text).
    to_csv: Optional[Callable[[Any], str]] = None
    to_json: Optional[Callable[[Any], str]] = None
    # Extra payload the compile/summarize closures may consult.
    options: Dict[str, Any] = field(default_factory=dict)

    def plan(self, context: Optional[StudyContext] = None) -> StudyPlan:
        """Lower the grid to engine cells under a context."""
        return self.compile(self, context or StudyContext())

    def grid(self) -> str:
        """The declared shape, e.g. ``mechanism[7] x benchmark[8]``."""
        return " x ".join(f"{axis.name}[{len(axis)}]" for axis in self.axes)

    def with_options(self, **overrides) -> "StudySpec":
        """A copy of the spec with updated options (used by CLI flags)."""
        merged = dict(self.options)
        merged.update(overrides)
        return replace(self, options=merged)


@dataclass
class StudyRun:
    """The outcome of one study execution."""

    spec: StudySpec
    context: StudyContext
    plan: StudyPlan
    artifact: Any

    def render(self) -> str:
        return self.spec.render(self.artifact)


def run_study(
    spec: StudySpec,
    context: Optional[StudyContext] = None,
    executor=None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> StudyRun:
    """Compile, execute and summarize one study.

    ``executor`` is anything with ``run_cells``; the default is a fresh
    serial :class:`~repro.experiments.scheduler.SweepScheduler`.  When
    ``progress`` is given and the executor can stream, results are
    consumed through the ordered stream and ``progress(done, total)``
    fires per cell — partial progress with a final artifact that is
    byte-identical to the serial run.
    """
    from repro.experiments.scheduler import SweepScheduler

    context = context or StudyContext()
    executor = executor if executor is not None else SweepScheduler()
    plan = spec.plan(context)
    stream = getattr(executor, "stream", None)
    if progress is not None and stream is not None:
        results: List[Any] = [None] * len(plan.cells)
        done = 0
        for index, result in stream(plan.cells):
            results[index] = result
            done += 1
            progress(done, len(plan.cells))
    else:
        results = executor.run_cells(plan.cells)
    artifact = spec.summarize(spec, context, plan, results)
    return StudyRun(spec=spec, context=context, plan=plan, artifact=artifact)
