"""Study builders and the registered study library.

Every experiment driver in :mod:`repro.experiments` is expressed here as
a :class:`~repro.studies.spec.StudySpec`: the paper's figures and Table 1,
the DESIGN.md ablations, the multi-seed campaign, the throttle-policy
frontier search, and the SMT mix reports — plus the paper-adjacent
studies the scheduler makes affordable (the 4-thread mix grid, the
shared-vs-partitioned back-end sweep, and the figure-level
confidence × throttle cross sweep).

Builders (``grid_study``, ``config_sweep_study``, ``campaign_study`` …)
produce parameterised specs for the driver functions; the module-level
``register`` calls publish the default instances that ``repro study
list/run`` exposes.  Summaries reuse the exact aggregation types of the
original drivers (``FigureResult``, ``CampaignResult``, ``PolicyPoint``),
so formatted output is byte-identical to the pre-study code — pinned by
``tests/test_study_parity.py``.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.campaign import (
    METRICS,
    CampaignResult,
    campaign_cells,
    format_campaign,
)
from repro.experiments.engine import (
    make_cell,
    make_smt_cell,
    policy_spec,
    smt_baseline_cells,
)
from repro.experiments.figures import FigureResult, format_figure, format_sweep
from repro.experiments.results import compare
from repro.pipeline.config import table3_config
from repro.power.model import ClockGatingStyle
from repro.report.export import figure_to_csv, figure_to_json
from repro.report.smt import format_smt_report
from repro.smt.metrics import harmonic_fairness, weighted_speedup
from repro.smt.mixes import MIX_NAMES
from repro.smt.policies import POLICY_NAMES
from repro.studies.registry import register
from repro.studies.spec import Axis, StudyContext, StudyPlan, StudySpec
from repro.utils.stats import arithmetic_mean
from repro.workloads.suite import BENCHMARK_NAMES

# ----------------------------------------------------------------------
# The figure experiment grids (single source for drivers and registry)
# ----------------------------------------------------------------------

FIGURE1_EXPERIMENTS: Dict[str, Tuple] = {
    "oracle-fetch": ("oracle", "fetch"),
    "oracle-decode": ("oracle", "decode"),
    "oracle-select": ("oracle", "select"),
}

FIGURE3_EXPERIMENTS: Dict[str, Tuple] = {
    name: ("throttle", name) for name in ("A1", "A2", "A3", "A4", "A5", "A6")
}
FIGURE3_EXPERIMENTS["A7"] = ("gating", 2)

FIGURE4_EXPERIMENTS: Dict[str, Tuple] = {
    name: ("throttle", name)
    for name in ("B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8")
}
FIGURE4_EXPERIMENTS["B9"] = ("gating", 2)

FIGURE5_EXPERIMENTS: Dict[str, Tuple] = {
    name: ("throttle", name)
    for name in ("C1", "C2", "C3", "C4", "C5", "C6")
}
FIGURE5_EXPERIMENTS["C7"] = ("gating", 2)


# ----------------------------------------------------------------------
# Mechanism-grid studies (figures 1/3/4/5, ablation grids, cross sweeps)
# ----------------------------------------------------------------------

def _compile_grid(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    experiments = spec.options["experiments"]
    benchmarks = ctx.resolved_benchmarks(spec.options["benchmarks"])
    cells, keys = [], []
    for benchmark in benchmarks:
        cells.append(make_cell(
            benchmark, ("baseline",), config=ctx.config,
            instructions=ctx.instructions, warmup=ctx.warmup,
        ))
        keys.append(("baseline", benchmark))
    for label, controller_spec in experiments.items():
        for benchmark in benchmarks:
            cells.append(make_cell(
                benchmark, controller_spec, config=ctx.config,
                instructions=ctx.instructions, warmup=ctx.warmup, label=label,
            ))
            keys.append((label, benchmark))
    return StudyPlan(cells, keys)


def _summarize_grid(spec, ctx, plan, results) -> FigureResult:
    experiments = spec.options["experiments"]
    by_key = dict(zip(plan.keys, results))
    benchmarks = [bm for kind, bm in plan.keys if kind == "baseline"]
    figure = FigureResult(spec.name)
    for label in experiments:
        figure.rows[label] = {
            benchmark: compare(by_key[("baseline", benchmark)],
                               by_key[(label, benchmark)])
            for benchmark in benchmarks
        }
    return figure


def grid_study(
    name: str,
    experiments: Dict[str, Tuple],
    title: Optional[str] = None,
    description: str = "",
    benchmarks: Optional[Sequence[str]] = None,
) -> StudySpec:
    """A mechanisms × benchmarks comparison grid (one curve per label)."""
    defaults = tuple(benchmarks or BENCHMARK_NAMES)
    return StudySpec(
        name=name,
        title=title or name,
        description=description,
        axes=(
            Axis("mechanism", tuple(experiments)),
            Axis("benchmark", defaults),
        ),
        compile=_compile_grid,
        summarize=_summarize_grid,
        render=format_figure,
        to_csv=figure_to_csv,
        to_json=figure_to_json,
        options={"experiments": dict(experiments), "benchmarks": defaults},
    )


# ----------------------------------------------------------------------
# Configuration sweeps (figures 6 and 7)
# ----------------------------------------------------------------------

def _compile_config_sweep(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    points = spec.options["points"]
    transform = spec.options["transform"]
    experiments = spec.options["experiments"]
    benchmarks = ctx.resolved_benchmarks(spec.options["benchmarks"])
    base = ctx.config or table3_config()
    cells, keys = [], []
    for point in points:
        config = transform(base, point)
        for benchmark in benchmarks:
            cells.append(make_cell(
                benchmark, ("baseline",), config=config,
                instructions=ctx.instructions, warmup=ctx.warmup,
            ))
            keys.append((point, "baseline", benchmark))
        for label, controller_spec in experiments.items():
            for benchmark in benchmarks:
                cells.append(make_cell(
                    benchmark, controller_spec, config=config,
                    instructions=ctx.instructions, warmup=ctx.warmup,
                    label=label,
                ))
                keys.append((point, label, benchmark))
    return StudyPlan(cells, keys)


def _summarize_config_sweep(spec, ctx, plan, results) -> Dict[int, Dict[str, float]]:
    experiments = spec.options["experiments"]
    label = next(iter(experiments))
    by_key = dict(zip(plan.keys, results))
    sweep: Dict[int, Dict[str, float]] = {}
    for point in spec.options["points"]:
        benchmarks = [
            bm for pt, kind, bm in plan.keys
            if pt == point and kind == "baseline"
        ]
        figure = FigureResult(f"{spec.name}-{point}")
        figure.rows[label] = {
            benchmark: compare(by_key[(point, "baseline", benchmark)],
                               by_key[(point, label, benchmark)])
            for benchmark in benchmarks
        }
        sweep[point] = figure.average(label)
    return sweep


def config_sweep_study(
    name: str,
    points: Sequence[int],
    transform,
    unit: str,
    sweep_title: str,
    experiments: Optional[Dict[str, Tuple]] = None,
    description: str = "",
) -> StudySpec:
    """A machine-configuration sweep of one mechanism vs its baseline."""
    experiments = experiments or {"C2": ("throttle", "C2")}
    return StudySpec(
        name=name,
        title=sweep_title,
        description=description,
        axes=(
            Axis(unit, tuple(str(point) for point in points)),
            Axis("mechanism", tuple(experiments)),
            Axis("benchmark", tuple(BENCHMARK_NAMES)),
        ),
        compile=_compile_config_sweep,
        summarize=_summarize_config_sweep,
        render=lambda sweep: format_sweep(sweep_title, sweep, unit),
        options={
            "points": tuple(points),
            "transform": transform,
            "experiments": dict(experiments),
            "benchmarks": tuple(BENCHMARK_NAMES),
        },
    )


def depth_sweep_study(depths: Sequence[int] = (6, 10, 14, 20, 24, 28)) -> StudySpec:
    """Figure 6: pipeline-depth sweep of the best experiment C2."""
    return config_sweep_study(
        "figure6", depths,
        lambda config, depth: config.with_depth(depth),
        "depth", "figure6 (C2)",
        description="pipeline-depth sweep of C2 vs same-depth baselines "
        "(paper Figure 6)",
    )


def table_size_sweep_study(total_kb: Sequence[int] = (8, 16, 32, 64)) -> StudySpec:
    """Figure 7: predictor+estimator size sweep of C2."""
    return config_sweep_study(
        "figure7", total_kb,
        lambda config, kb: config.with_table_sizes(kb),
        "total KB", "figure7 (C2)",
        description="gshare+BPRU total-size sweep of C2 at equal budgets "
        "(paper Figure 7)",
    )


# ----------------------------------------------------------------------
# Table 1 (baseline power breakdown)
# ----------------------------------------------------------------------

def _compile_table1(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    benchmarks = ctx.resolved_benchmarks(BENCHMARK_NAMES)
    cells = [
        make_cell(benchmark, ("baseline",), config=ctx.config,
                  instructions=ctx.instructions, warmup=ctx.warmup)
        for benchmark in benchmarks
    ]
    return StudyPlan(cells, list(benchmarks))


def _summarize_table1(spec, ctx, plan, results) -> Dict[str, Dict[str, float]]:
    from repro.experiments.tables import TABLE1_TOTAL_WASTED, TABLE1_WASTED
    from repro.power.units import TABLE1_SHARES, PowerUnit

    rows: Dict[str, Dict[str, float]] = {}
    for unit in PowerUnit:
        key = unit.name.lower()
        rows[key] = {
            "share": arithmetic_mean(r.breakdown[key]["share"] for r in results),
            "wasted": arithmetic_mean(
                r.breakdown[key]["wasted_of_overall"] for r in results
            ),
            "paper_share": TABLE1_SHARES[unit],
            "paper_wasted": TABLE1_WASTED[key],
        }
    rows["total"] = {
        "watts": arithmetic_mean(r.average_power_watts for r in results),
        "paper_watts": 56.4,
        "wasted": arithmetic_mean(r.wasted_energy_fraction for r in results),
        "paper_wasted": TABLE1_TOTAL_WASTED,
    }
    return rows


def _render_table1(rows) -> str:
    from repro.experiments.tables import format_table1

    return format_table1(rows)


def table1_study() -> StudySpec:
    return StudySpec(
        name="table1",
        title="Table 1: power breakdown and wasted fraction",
        description="per-unit power shares and mis-speculation waste of the "
        "baseline suite vs the paper's Table 1",
        axes=(Axis("benchmark", tuple(BENCHMARK_NAMES)),),
        compile=_compile_table1,
        summarize=_summarize_table1,
        render=_render_table1,
    )


# ----------------------------------------------------------------------
# Ablation studies
# ----------------------------------------------------------------------

def estimator_swap_study(policy: str = "C2") -> StudySpec:
    return grid_study(
        "estimator-swap",
        {
            f"{policy}/bpru": ("throttle", policy),
            f"{policy}/jrs": ("throttle", policy, "jrs"),
            f"{policy}/perfect": ("throttle", policy, "perfect"),
        },
        description=f"Selective Throttling {policy} under BPRU vs JRS vs a "
        "perfect estimator",
    )


def escalation_rule_study(policy: str = "C2") -> StudySpec:
    return grid_study(
        "escalation-rule",
        {
            f"{policy}/escalate": ("throttle", policy),
            f"{policy}/latest-wins": ("throttle-noescalate", policy),
        },
        description=f"the paper's escalate-only rule on vs off for {policy}",
    )


def gating_threshold_study(thresholds: Sequence[int] = (1, 2, 3, 4)) -> StudySpec:
    return grid_study(
        "gating-threshold",
        {f"gating-th{n}": ("gating", n) for n in thresholds},
        description="Pipeline Gating at a range of gating thresholds",
    )


def _compile_clock_gating(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    benchmarks = ctx.resolved_benchmarks(BENCHMARK_NAMES)
    cells, keys = [], []
    for style in ClockGatingStyle:
        for benchmark in benchmarks:
            cells.append(make_cell(
                benchmark, ("baseline",), config=ctx.config,
                instructions=ctx.instructions, warmup=ctx.warmup,
                clock_gating=style.value,
            ))
            keys.append((style.value, benchmark))
    return StudyPlan(cells, keys)


def _summarize_clock_gating(spec, ctx, plan, results) -> Dict[str, Dict[str, float]]:
    by_key = dict(zip(plan.keys, results))
    out: Dict[str, Dict[str, float]] = {}
    for style in ClockGatingStyle:
        row = [by_key[key] for key in plan.keys if key[0] == style.value]
        out[style.value] = {
            "average_power_watts": arithmetic_mean(
                r.average_power_watts for r in row
            ),
            "wasted_fraction": arithmetic_mean(
                r.wasted_energy_fraction for r in row
            ),
        }
    return out


def render_style_table(styles) -> str:
    """The clock-gating artifact's one text form (CLI and study render)."""
    lines = ["clock-gating styles: suite averages"]
    for style, row in styles.items():
        lines.append(
            f"  {style}: {row['average_power_watts']:6.1f} W, "
            f"wasted {row['wasted_fraction'] * 100:5.1f}%"
        )
    return "\n".join(lines)


def clock_gating_study() -> StudySpec:
    return StudySpec(
        name="clock-gating",
        title="Wattch conditional-clocking styles",
        description="baseline power under cc0-cc3 clock gating (the paper "
        "uses cc3)",
        axes=(
            Axis("style", tuple(style.value for style in ClockGatingStyle)),
            Axis("benchmark", tuple(BENCHMARK_NAMES)),
        ),
        compile=_compile_clock_gating,
        summarize=_summarize_clock_gating,
        render=render_style_table,
    )


def _compile_mshr(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    counts = spec.options["counts"]
    benchmarks = ctx.resolved_benchmarks(BENCHMARK_NAMES)
    base = ctx.config or table3_config()
    cells, keys = [], []
    for count in counts:
        config = dc_replace(base, mshr_count=count)
        for benchmark in benchmarks:
            cells.append(make_cell(
                benchmark, ("baseline",), config=config,
                instructions=ctx.instructions, warmup=ctx.warmup,
            ))
            keys.append((count, "baseline", benchmark))
            cells.append(make_cell(
                benchmark, ("oracle", "fetch"), config=config,
                instructions=ctx.instructions, warmup=ctx.warmup,
            ))
            keys.append((count, "oracle", benchmark))
    return StudyPlan(cells, keys)


def _summarize_mshr(spec, ctx, plan, results) -> Dict[int, Dict[str, float]]:
    by_key = dict(zip(plan.keys, results))
    out: Dict[int, Dict[str, float]] = {}
    for count in spec.options["counts"]:
        benchmarks = [
            bm for cnt, kind, bm in plan.keys
            if cnt == count and kind == "baseline"
        ]
        bases = [by_key[(count, "baseline", bm)] for bm in benchmarks]
        oracles = [by_key[(count, "oracle", bm)] for bm in benchmarks]
        out[count] = {
            "baseline_ipc": arithmetic_mean(r.ipc for r in bases),
            "oracle_fetch_speedup": arithmetic_mean(
                base.cycles / oracle.cycles
                for base, oracle in zip(bases, oracles)
            ),
        }
    return out


def render_mshr_sweep(sweep) -> str:
    """The MSHR artifact's one text form (CLI and study render)."""
    lines = ["MSHR sensitivity:"]
    for count, row in sweep.items():
        lines.append(
            f"  mshr={count:2d}: baseline IPC {row['baseline_ipc']:.2f}, "
            f"oracle-fetch speedup {row['oracle_fetch_speedup']:.3f}"
        )
    return "\n".join(lines)


def mshr_study(counts: Sequence[int] = (2, 4, 8, 16)) -> StudySpec:
    return StudySpec(
        name="mshr",
        title="MSHR sensitivity",
        description="baseline IPC and oracle-fetch speedup vs MSHR count "
        "(the §3 resource-waste channel)",
        axes=(
            Axis("mshr", tuple(str(count) for count in counts)),
            Axis("benchmark", tuple(BENCHMARK_NAMES)),
        ),
        compile=_compile_mshr,
        summarize=_summarize_mshr,
        render=render_mshr_sweep,
        options={"counts": tuple(counts)},
    )


# ----------------------------------------------------------------------
# Multi-seed campaigns
# ----------------------------------------------------------------------

def _compile_campaign(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    experiments = spec.options["experiments"]
    seeds = ctx.seeds if ctx.seeds is not None else spec.options["seeds"]
    if seeds < 1:
        raise ExperimentError("need at least one seed")
    benchmarks = ctx.resolved_benchmarks(BENCHMARK_NAMES)
    instructions = ctx.instructions or spec.options["instructions"]
    warmup = instructions // 3 if ctx.warmup is None else ctx.warmup
    config = ctx.config or table3_config()
    pairs = campaign_cells(
        experiments, benchmarks, seeds, instructions, warmup, config
    )
    return StudyPlan([cell for _, cell in pairs], [key for key, _ in pairs])


def _summarize_campaign(spec, ctx, plan, results) -> CampaignResult:
    experiments = spec.options["experiments"]
    seeds = ctx.seeds if ctx.seeds is not None else spec.options["seeds"]
    instructions = ctx.instructions or spec.options["instructions"]
    benchmarks = ctx.resolved_benchmarks(BENCHMARK_NAMES)

    campaign = CampaignResult(
        name=spec.options["campaign_name"],
        seeds=list(range(seeds)),
        instructions=instructions,
    )
    for label in experiments:
        campaign.samples[label] = {
            benchmark: {metric: [] for metric in METRICS}
            for benchmark in benchmarks
        }
    baselines: Dict[Tuple[int, str], object] = {}
    for (variant, benchmark, label), outcome in zip(plan.keys, results):
        if label is None:
            baselines[(variant, benchmark)] = outcome
            continue
        comparison = compare(baselines[(variant, benchmark)], outcome)
        samples = campaign.samples[label][benchmark]
        for metric in METRICS:
            samples[metric].append(getattr(comparison, metric))
    return campaign


def campaign_study(
    experiments: Dict[str, Tuple],
    name: str = "campaign",
    seeds: int = 3,
    instructions: int = 8_000,
) -> StudySpec:
    """A (mechanism × benchmark × program-seed) grid with t-intervals."""
    return StudySpec(
        name="campaign",
        title=f"campaign: {', '.join(experiments)}",
        description="multi-seed sweep reporting means with 95% Student-t "
        "intervals over program-sampling variance",
        axes=(
            Axis("mechanism", tuple(experiments)),
            Axis("benchmark", tuple(BENCHMARK_NAMES)),
            Axis("seed-variant", tuple(str(i) for i in range(seeds))),
        ),
        compile=_compile_campaign,
        summarize=_summarize_campaign,
        render=format_campaign,
        options={
            "experiments": dict(experiments),
            "campaign_name": name,
            "seeds": seeds,
            "instructions": instructions,
        },
    )


# ----------------------------------------------------------------------
# Throttle-policy frontier search
# ----------------------------------------------------------------------

def _bpru_config(config):
    config = config or table3_config()
    if config.confidence_kind != "bpru":
        config = dc_replace(config, confidence_kind="bpru")
    return config


def _compile_policies(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    policies = spec.options["policies"]
    benchmarks = ctx.resolved_benchmarks(spec.options["benchmarks"])
    config = _bpru_config(ctx.config)
    cells, keys = [], []
    for benchmark in benchmarks:
        cells.append(make_cell(
            benchmark, ("baseline",), config=config,
            instructions=ctx.instructions, warmup=ctx.warmup,
        ))
        keys.append(("baseline", benchmark))
    for policy in policies:
        for benchmark in benchmarks:
            cells.append(make_cell(
                benchmark, policy_spec(policy), config=config,
                instructions=ctx.instructions, warmup=ctx.warmup,
            ))
            keys.append((policy.name, benchmark))
    return StudyPlan(cells, keys)


def _summarize_policies(spec, ctx, plan, results):
    from repro.experiments.policy_search import PolicyPoint, _ed2_improvement

    by_key = dict(zip(plan.keys, results))
    benchmarks = [bm for kind, bm in plan.keys if kind == "baseline"]
    points = []
    for policy in spec.options["policies"]:
        rows = []
        for benchmark in benchmarks:
            baseline = by_key[("baseline", benchmark)]
            candidate = by_key[(policy.name, benchmark)]
            rows.append((
                compare(baseline, candidate),
                _ed2_improvement(baseline, candidate),
            ))
        points.append(PolicyPoint(
            policy_name=policy.name,
            speedup=arithmetic_mean(c.speedup for c, _ in rows),
            power_savings_pct=arithmetic_mean(
                c.power_savings_pct for c, _ in rows
            ),
            energy_savings_pct=arithmetic_mean(
                c.energy_savings_pct for c, _ in rows
            ),
            ed_improvement_pct=arithmetic_mean(
                c.ed_improvement_pct for c, _ in rows
            ),
            ed2_improvement_pct=arithmetic_mean(ed2 for _, ed2 in rows),
        ))
    return points


def _render_policy_points(points) -> str:
    from repro.experiments.policy_search import format_points, pareto_frontier

    frontier = pareto_frontier(points)
    names = ", ".join(point.policy_name for point in frontier)
    return (
        format_points(points)
        + f"\n\npareto frontier (speedup vs energy): {names}"
    )


def policy_study(
    policies,
    benchmarks: Sequence[str] = ("go", "twolf", "gcc"),
    name: str = "policy-frontier",
) -> StudySpec:
    """Evaluate a throttle-policy set and extract its Pareto frontier."""
    return StudySpec(
        name=name,
        title="throttle-policy frontier",
        description="suite-average metrics of every enumerated policy plus "
        "the (speedup, energy) Pareto frontier",
        axes=(
            Axis("policy", tuple(policy.name for policy in policies)),
            Axis("benchmark", tuple(benchmarks)),
        ),
        compile=_compile_policies,
        summarize=_summarize_policies,
        render=_render_policy_points,
        options={"policies": tuple(policies), "benchmarks": tuple(benchmarks)},
    )


# ----------------------------------------------------------------------
# SMT studies
# ----------------------------------------------------------------------

def _smt_cell_for(spec_options, ctx, mix, policy, sharing, seed=None):
    return make_smt_cell(
        mix, policy=policy, sharing=sharing, config=ctx.config,
        instructions=ctx.instructions, warmup=ctx.warmup, seed=seed,
    )


def _compile_smt_mix(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    options = spec.options
    cell = _smt_cell_for(
        options, ctx, options["mix"], options["policy"], options["sharing"],
        options.get("seed"),
    )
    cells = [cell] + smt_baseline_cells(cell)
    keys = [("mix",)] + [("alone", i) for i in range(len(cells) - 1)]
    return StudyPlan(cells, keys)


def _summarize_smt_mix(spec, ctx, plan, results):
    return {"mix": results[0], "alone": results[1:]}


def _render_smt_mix(artifact) -> str:
    return format_smt_report(artifact["mix"], artifact["alone"])


def smt_mix_study(
    mix: str,
    policy: str = "confidence-gating",
    sharing: str = "partitioned",
    seed: Optional[int] = None,
) -> StudySpec:
    """One SMT mix plus its single-threaded references, as one batch."""
    return StudySpec(
        name=f"smt-{mix}",
        title=f"SMT mix {mix}",
        description=f"{mix} under {policy} fetch with a {sharing} back-end, "
        "vs per-thread single-threaded references",
        axes=(
            Axis("mix", (mix,)),
            Axis("policy", (policy,)),
            Axis("sharing", (sharing,)),
        ),
        compile=_compile_smt_mix,
        summarize=_summarize_smt_mix,
        render=_render_smt_mix,
        options={"mix": mix, "policy": policy, "sharing": sharing, "seed": seed},
    )


def _smt_row(result, alone_results) -> Dict[str, float]:
    alone_ipcs = [alone.ipc for alone in alone_results]
    return {
        "total_ipc": result.total_ipc,
        "weighted_speedup": weighted_speedup(result.thread_ipcs, alone_ipcs),
        "fairness": harmonic_fairness(result.thread_ipcs, alone_ipcs),
        "epi_nj": result.energy_per_instruction_nj,
        "wasted_pct": result.wasted_energy_fraction * 100.0,
    }


def _compile_smt_grid(spec: StudySpec, ctx: StudyContext) -> StudyPlan:
    """Shared by the mix-grid and sharing-sweep studies.

    ``spec.options["points"]`` is a list of ``(mix, policy, sharing)``
    triples; single-threaded references are enumerated once per mix (the
    scheduler deduplicates identical cells anyway, but a clean plan keeps
    ``executed`` counts meaningful).
    """
    cells, keys = [], []
    seen_mixes = []
    for mix, policy, sharing in spec.options["points"]:
        if mix not in seen_mixes:
            seen_mixes.append(mix)
            reference = _smt_cell_for(spec.options, ctx, mix,
                                      "confidence-gating", "partitioned")
            for index, alone in enumerate(smt_baseline_cells(reference)):
                cells.append(alone)
                keys.append(("alone", mix, index))
        cells.append(_smt_cell_for(spec.options, ctx, mix, policy, sharing))
        keys.append(("smt", mix, policy, sharing))
    return StudyPlan(cells, keys)


def _summarize_smt_grid(spec, ctx, plan, results):
    by_key = dict(zip(plan.keys, results))
    rows = {}
    for mix, policy, sharing in spec.options["points"]:
        alone = [
            by_key[key] for key in plan.keys
            if key[0] == "alone" and key[1] == mix
        ]
        rows[(mix, policy, sharing)] = _smt_row(
            by_key[("smt", mix, policy, sharing)], alone
        )
    return rows


def _render_smt_grid_factory(title: str):
    def render(rows) -> str:
        lines = [
            title,
            f"  {'mix':<14s} {'policy':<19s} {'sharing':<12s} {'IPC':>7s} "
            f"{'w.speedup':>10s} {'fairness':>9s} {'EPI nJ':>8s} "
            f"{'wasted%':>8s}",
        ]
        for (mix, policy, sharing), row in rows.items():
            lines.append(
                f"  {mix:<14s} {policy:<19s} {sharing:<12s} "
                f"{row['total_ipc']:7.3f} {row['weighted_speedup']:10.3f} "
                f"{row['fairness']:9.3f} {row['epi_nj']:8.3f} "
                f"{row['wasted_pct']:8.2f}"
            )
        return "\n".join(lines)

    return render


def mix4_grid_study(
    mixes: Optional[Sequence[str]] = None,
    policies: Sequence[str] = POLICY_NAMES,
) -> StudySpec:
    """The 4-thread scenario axis: every mix4 under every fetch policy."""
    mixes = tuple(mixes or [m for m in MIX_NAMES if m.startswith("mix4-")])
    points = [
        (mix, policy, "partitioned") for mix in mixes for policy in policies
    ]
    return StudySpec(
        name="mix4-grid",
        title="4-thread mix grid (partitioned back-end)",
        description="every 4-thread mix under every fetch policy: total "
        "IPC, weighted speedup, fairness, EPI",
        axes=(Axis("mix", mixes), Axis("policy", tuple(policies))),
        compile=_compile_smt_grid,
        summarize=_summarize_smt_grid,
        render=_render_smt_grid_factory(
            "4-thread mix grid — fetch policies on the partitioned back-end"
        ),
        options={"points": points},
    )


def smt_sharing_study(
    mixes: Sequence[str] = ("mix2-branchy", "mix2-skewed", "mix4-diverse"),
    policy: str = "confidence-gating",
) -> StudySpec:
    """Shared vs partitioned back-end capacity across mixes."""
    points = [
        (mix, policy, sharing)
        for mix in mixes
        for sharing in ("partitioned", "shared")
    ]
    return StudySpec(
        name="smt-sharing",
        title="shared vs partitioned back-end",
        description="each mix with partitioned vs dynamically-shared "
        "ROB/IQ/LSQ capacity under confidence-gating fetch",
        axes=(
            Axis("mix", tuple(mixes)),
            Axis("sharing", ("partitioned", "shared")),
        ),
        compile=_compile_smt_grid,
        summarize=_summarize_smt_grid,
        render=_render_smt_grid_factory(
            "shared vs partitioned back-end — confidence-gating fetch"
        ),
        options={"points": points},
    )


# ----------------------------------------------------------------------
# The registered library
# ----------------------------------------------------------------------

CROSS_POLICIES = ("A5", "B5", "C2")
CROSS_ESTIMATORS = ("bpru", "jrs", "perfect")

register(grid_study(
    "figure1", FIGURE1_EXPERIMENTS,
    description="oracle fetch/decode/select limit studies (paper Figure 1)",
))
register(grid_study(
    "figure3", FIGURE3_EXPERIMENTS,
    description="fetch throttling A1-A6 plus Pipeline Gating A7 "
    "(paper Figure 3)",
))
register(grid_study(
    "figure4", FIGURE4_EXPERIMENTS,
    description="decode throttling B1-B8 plus Pipeline Gating B9 "
    "(paper Figure 4)",
))
register(grid_study(
    "figure5", FIGURE5_EXPERIMENTS,
    description="selection throttling C1-C6 plus Pipeline Gating C7 "
    "(paper Figure 5)",
))
register(depth_sweep_study())
register(table_size_sweep_study())
register(table1_study())
register(estimator_swap_study())
register(escalation_rule_study())
register(gating_threshold_study())
register(clock_gating_study())
register(mshr_study())
register(campaign_study({"C2": ("throttle", "C2"), "A5": ("throttle", "A5")}))
register(grid_study(
    "confidence-throttle-cross",
    {
        f"{policy}/{estimator}": ("throttle", policy, estimator)
        for policy in CROSS_POLICIES
        for estimator in CROSS_ESTIMATORS
    },
    description="figure-level confidence x throttle cross sweep: every "
    "headline policy under every estimator",
))
for _mix in MIX_NAMES:
    register(smt_mix_study(_mix))
register(mix4_grid_study())
register(smt_sharing_study())


def default_policy_frontier_study() -> StudySpec:
    """The fetch-only policy subspace (lazy: enumeration builds objects)."""
    from repro.experiments.policy_search import enumerate_policies

    return policy_study(enumerate_policies(include_decode=False))


register(default_policy_frontier_study())
