"""Summary statistics used when aggregating per-benchmark results.

The paper reports arithmetic averages of per-benchmark percentages for its
savings plots; speedup aggregation conventionally uses the geometric mean.
Both are provided, along with the harmonic mean (the right mean for rates
such as IPC over equal instruction counts).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average; raises ValueError on an empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the right mean for speedups)."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values (the right mean for rates)."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total


def percent_change(baseline: float, value: float) -> float:
    """Return the percent change of ``value`` relative to ``baseline``.

    Positive means ``value`` is larger.  Used for savings/improvement
    metrics: ``savings = -percent_change(baseline, value)``.
    """
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return 100.0 * (value - baseline) / baseline
