"""Deterministic pseudo-random number generation.

Every stochastic decision in the simulator flows from a named
:class:`XorShiftRNG` stream so runs are bit-identical across processes and
platforms.  We deliberately avoid :mod:`random` for simulator state: its
global singleton invites cross-contamination between components, and its
Mersenne Twister state is needlessly heavy to snapshot.

The generator is the classic 64-bit xorshift* of Vigna (2016): tiny state,
good statistical quality for simulation purposes, and trivially portable.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(value: int) -> int:
    """One splitmix64 step; used to spread user seeds over 64 bits."""
    value = (value + _SPLITMIX_GAMMA) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    Components each get their own stream: for example the program generator
    uses ``derive_seed(seed, "program")`` while wrong-path branch outcomes use
    ``derive_seed(seed, "wrongpath")``.  String labels are hashed bytewise so
    the derivation does not depend on Python's randomized ``hash()``.
    """
    state = _splitmix64(base_seed & _MASK64)
    for label in labels:
        if isinstance(label, int):
            material = label & _MASK64
        else:
            material = 0
            for byte in str(label).encode("utf-8"):
                material = (material * 131 + byte) & _MASK64
        state = _splitmix64(state ^ material)
    # A zero state would trap xorshift at zero forever.
    return state or _SPLITMIX_GAMMA


def derive_thread_seed(base_seed: int, thread_id: int) -> int:
    """Derive hardware-thread ``thread_id``'s seed from a mix's base seed.

    Splitmix-style hashing (via :func:`derive_seed` with a dedicated
    domain label) guarantees the per-thread streams are decorrelated even
    for adjacent thread ids and never collide with the component labels
    other subsystems derive from the same base — two copies of one
    benchmark in a multi-program mix get genuinely different program
    instances and behaviour streams.
    """
    if thread_id < 0:
        raise ValueError(f"thread_id must be non-negative, got {thread_id}")
    return derive_seed(base_seed, "hw-thread", thread_id)


class XorShiftRNG:
    """A tiny deterministic RNG (xorshift64*) with simulation helpers."""

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = derive_seed(seed)

    # The xorshift64* step is inlined into every helper below: generation
    # and branch-behaviour streams draw tens of millions of values per
    # campaign, and the extra call frames of helper-over-helper layering
    # were a measurable slice of program-generation time.  The arithmetic
    # is identical in every method, so the draw sequences are unchanged.

    def next_u64(self) -> int:
        """Return the next raw 64-bit value."""
        state = self._state
        state ^= (state >> 12)
        state ^= (state << 25) & _MASK64
        state ^= (state >> 27)
        self._state = state
        return (state * 0x2545F4914F6CDD1D) & _MASK64

    def random(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        state = self._state
        state ^= (state >> 12)
        state ^= (state << 25) & _MASK64
        state ^= (state >> 27)
        self._state = state
        return (((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11) * (1.0 / (1 << 53))

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in [low, high] inclusive."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        state = self._state
        state ^= (state >> 12)
        state ^= (state << 25) & _MASK64
        state ^= (state >> 27)
        self._state = state
        return low + ((state * 0x2545F4914F6CDD1D) & _MASK64) % (high - low + 1)

    def choice(self, items):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        state = self._state
        state ^= (state >> 12)
        state ^= (state << 25) & _MASK64
        state ^= (state >> 27)
        self._state = state
        return items[((state * 0x2545F4914F6CDD1D) & _MASK64) % len(items)]

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        state = self._state
        state ^= (state >> 12)
        state ^= (state << 25) & _MASK64
        state ^= (state >> 27)
        self._state = state
        return (
            (((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11) * (1.0 / (1 << 53))
            < probability
        )

    def weighted_choice(self, items, weights):
        """Return an element of ``items`` chosen with the given weights."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        state = self._state
        state ^= (state >> 12)
        state ^= (state << 25) & _MASK64
        state ^= (state >> 27)
        self._state = state
        target = (
            (((state * 0x2545F4914F6CDD1D) & _MASK64) >> 11) * (1.0 / (1 << 53))
        ) * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if target < cumulative:
                return item
        return items[-1]

    def shuffle(self, items: list) -> None:
        """Shuffle a list in place (Fisher-Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def getstate(self) -> int:
        """Return the internal state (for checkpointing)."""
        return self._state

    def setstate(self, state: int) -> None:
        """Restore a state captured by :meth:`getstate`."""
        if not 0 < state <= _MASK64:
            raise ValueError("invalid xorshift state")
        self._state = state


def stateless_hash_step(state: int, value: int) -> int:
    """One chaining step of :func:`stateless_hash`.

    ``stateless_hash(seed, a, b)`` equals
    ``stateless_hash_step(stateless_hash_step(seed & MASK64, a), b)`` —
    identical arithmetic — so hot callers with a fixed prefix (a static
    instruction's address, a block id) can precompute the partial state
    and pay a single step per draw.
    """
    state = (state ^ (value & _MASK64)) + _SPLITMIX_GAMMA & _MASK64
    state = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    state = ((state ^ (state >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state ^ (state >> 31)


def stateless_hash(seed: int, *values: int) -> int:
    """A pure function of its arguments, usable as a stateless random source.

    Wrong-path branch outcomes use this so speculative fetch never perturbs
    true-path behavioural state.  The splitmix64 step is unrolled inline
    (identical arithmetic to :func:`_splitmix64`): wrong-path fetch calls
    this once per speculative branch, making it one of the hottest leaf
    functions in the simulator.
    """
    state = seed & _MASK64
    for value in values:
        state = (state ^ (value & _MASK64)) + _SPLITMIX_GAMMA & _MASK64
        state = ((state ^ (state >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        state = ((state ^ (state >> 27)) * 0x94D049BB133111EB) & _MASK64
        state = state ^ (state >> 31)
    return state
