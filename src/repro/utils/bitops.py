"""Bit-manipulation helpers shared by predictors, caches and tables."""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of a power of two, raising ValueError otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def bit_mask(bits: int) -> int:
    """Return a mask with the low ``bits`` bits set."""
    if bits < 0:
        raise ValueError("bit count must be non-negative")
    return (1 << bits) - 1


def fold_xor(value: int, bits: int) -> int:
    """Fold an arbitrarily wide value into ``bits`` bits by XOR-ing chunks.

    This is the standard way hardware tables hash wide addresses into short
    indices without discarding high-order information.
    """
    if bits <= 0:
        raise ValueError("bit count must be positive")
    mask = bit_mask(bits)
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded


def hash64(value: int) -> int:
    """Cheap 64-bit integer mix (Stafford variant 13)."""
    mask = (1 << 64) - 1
    value &= mask
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & mask
    return value ^ (value >> 31)
