"""Small shared utilities: deterministic RNG streams, bit helpers, statistics."""

from repro.utils.bitops import bit_mask, fold_xor, hash64, is_power_of_two, log2_exact
from repro.utils.rng import XorShiftRNG, derive_seed
from repro.utils.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percent_change,
    weighted_mean,
)

__all__ = [
    "XorShiftRNG",
    "derive_seed",
    "bit_mask",
    "fold_xor",
    "hash64",
    "is_power_of_two",
    "log2_exact",
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "weighted_mean",
    "percent_change",
]
