"""Seeded synthetic program generator.

Given a :class:`ProgramShape` (structure and branch-population parameters)
the generator builds a :class:`~repro.program.cfg.Program`: a DAG of
functions (calls only go to higher-numbered functions, so recursion is
bounded), each function a list of basic blocks with loops, forward
conditional branches, jumps and calls.  ``main`` (function 0) ends with a
jump back to its entry so the dynamic stream is unbounded; run length is
controlled by the simulator, as with any looping benchmark.

Structural guarantees:

* every backward conditional edge carries a :class:`LoopBehavior` (finite
  trip counts), so all inner loops terminate;
* forward branches/jumps only target later blocks of the same function;
* calls form a DAG over functions;

together these make every walk leave any nest in finite time — the only
infinite cycle is main's outer loop, which is the intended steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ProgramError
from repro.isa.instruction import StaticInstruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import FIRST_SCRATCH_REG, NUM_ARCH_REGS
from repro.program.behavior import (
    BiasedBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.program.cfg import BasicBlock, Program, TerminatorKind
from repro.utils.rng import XorShiftRNG, derive_seed


@dataclass
class ProgramShape:
    """Structure and branch-population parameters of a synthetic program.

    The branch-behaviour weights are what calibrate the gshare misprediction
    rate of the generated workload; see repro.workloads.suite for the eight
    tuned instances.
    """

    num_functions: int = 8
    blocks_per_function: Tuple[int, int] = (8, 16)
    block_size: Tuple[int, int] = (4, 12)

    # Probability a non-final block ends with each terminator kind;
    # remaining mass falls through.
    p_cond: float = 0.62
    p_call: float = 0.06
    p_jump: float = 0.08

    # Of conditional branches, the fraction that are backward loop edges.
    loop_fraction: float = 0.30
    loop_trip_range: Tuple[int, int] = (4, 40)
    loop_jitter: float = 0.3

    # The forward-branch behaviour mix (weights, need not sum to 1).
    # Real integer codes are bimodal: most branches are near-deterministic
    # ("biased" with strong bias, patterns), while a few hot data-dependent
    # branches ("bad") carry most of the mispredictions.
    w_biased: float = 0.45
    w_pattern: float = 0.20
    w_correlated: float = 0.15
    w_random: float = 0.02
    w_bad: float = 0.08

    # Parameter ranges for the behaviours.
    biased_strength: Tuple[float, float] = (0.92, 0.995)
    bad_strength: Tuple[float, float] = (0.55, 0.78)
    pattern_length: Tuple[int, int] = (2, 6)
    correlated_noise: Tuple[float, float] = (0.02, 0.25)
    correlated_history_bits: int = 8

    # Instruction mix for straight-line code (weights).
    w_alu: float = 0.58
    w_mul: float = 0.03
    w_load: float = 0.25
    w_store: float = 0.12
    w_fp: float = 0.02

    # Dependence locality: probability a source register is one of the
    # most recently written registers (shapes extractable ILP).  The high
    # default keeps the baseline IPC in SPECint territory (~1.2-1.8 on the
    # 8-wide Table-3 core) rather than the inflated ILP of random code.
    dep_locality: float = 0.90
    dep_window: int = 3

    # Probability a conditional branch's condition register is produced by
    # a load in its own block (data-dependent branches resolve late, which
    # is what lets wrong-path work reach issue and execute).
    branch_load_dependence: float = 0.55

    # Hard (mispredict-prone) forward branches in real integer codes are
    # data-dependent: they test values arriving from pointer-chasing loads
    # that miss the caches, so exactly the branches that mispredict also
    # resolve late — which is what lets the wrong path flood the window,
    # the functional units and the result bus (paper Table 1: ~28% of all
    # power).  ``hard_branch_chain`` is the probability that a "bad" or
    # "random" branch gets such a slow condition chain; the chain loads
    # walk ``hard_chain_footprint`` bytes (past L2 at the default 4 MB)
    # with a stride drawn from ``hard_chain_strides``.
    hard_branch_chain: float = 1.0
    hard_chain_footprint: int = 1024 * 1024
    hard_chain_strides: Tuple[int, ...] = (4, 8, 16, 64)
    hard_chain_registers: int = 4
    # Fraction of hard condition loads that are true pointer walks (the
    # load's address is its own previous value, so successive instances
    # serialise).  The rest are independent data-dependent loads: the
    # condition still arrives a cache-miss late, but instances overlap, so
    # a resolution takes one miss latency rather than a backed-up chain.
    hard_chain_serial: float = 0.25
    # Correlated branches whose noise term is at least this are also
    # mispredict-prone enough to be treated as hard (data-dependent).
    hard_noise_threshold: float = 0.2

    # Probability a serial-chain instruction restarts the chain (writes the
    # chain register without reading it).  Restarts split the one global
    # chain into bounded segments: the ILP limit stays, but a wrong-path
    # chain segment can become ready and execute before its branch
    # resolves — as wrong-path code does on a real machine — instead of
    # being stuck forever behind the whole program's chain backlog.
    serial_chain_restart: float = 0.04

    # Probability a load's address comes from the previous load's result —
    # pointer chasing, the serialisation that keeps real SPECint IPC low.
    load_chain_fraction: float = 0.45

    # Fraction of body instructions threaded onto the program's serial
    # dependence chain (accumulators, induction arithmetic, pointer walks).
    # This is the knob that sets the baseline IPC: 0 gives the unbounded
    # ILP of random code, ~0.45 lands in SPECint territory on the 8-wide
    # Table-3 core.
    serial_chain_fraction: float = 0.45

    # Data memory: number of regions, the stride choices of memory ops and
    # the distribution of per-instruction working sets.  SPECint data mostly
    # lives in L1/L2; only a tail of accesses streams over big footprints.
    mem_regions: int = 12
    mem_strides: Tuple[int, ...] = (0, 4, 8, 16, 64)
    mem_footprints: Tuple[int, ...] = (2048, 8192, 32768, 262144)
    mem_footprint_weights: Tuple[float, ...] = (0.40, 0.30, 0.20, 0.10)

    def validate(self) -> None:
        """Raise ProgramError if the shape is internally inconsistent."""
        if self.num_functions < 1:
            raise ProgramError("need at least one function")
        if self.blocks_per_function[0] < 2:
            raise ProgramError("functions need at least two blocks")
        if self.block_size[0] < 1:
            raise ProgramError("blocks need at least one instruction")
        if not 0 <= self.p_cond + self.p_call + self.p_jump <= 1.0:
            raise ProgramError("terminator probabilities must sum to <= 1")
        if not 0.0 <= self.loop_fraction <= 1.0:
            raise ProgramError("loop_fraction must be a probability")
        if not 0.0 <= self.hard_branch_chain <= 1.0:
            raise ProgramError("hard_branch_chain must be a probability")
        if self.hard_chain_footprint & (self.hard_chain_footprint - 1):
            raise ProgramError("hard_chain_footprint must be a power of two")
        if self.hard_chain_registers < 1:
            raise ProgramError("need at least one condition-chain register")


class ProgramGenerator:
    """Builds a finalized Program from a ProgramShape and a seed."""

    def __init__(self, shape: ProgramShape, seed: int, name: str = "synthetic") -> None:
        shape.validate()
        self.shape = shape
        self.seed = seed
        self.name = name
        self._rng = XorShiftRNG(derive_seed(seed, "program", name))
        # Separate stream for load-chaining decisions so that tuning the
        # chain fraction never perturbs the calibrated branch population.
        self._chain_rng = XorShiftRNG(derive_seed(seed, "loadchain", name))
        self._last_load_dest = None
        self._behavior_counter = 0
        # Blocks whose conditional branch is mispredict-prone and therefore
        # receives a slow condition chain (see _install_condition_chain).
        self._hard_blocks: set = set()

    def generate(self) -> Program:
        """Generate, finalize and return the program."""
        blocks: List[BasicBlock] = []
        function_entries: List[int] = []
        function_block_ids: List[List[int]] = []

        # First pass: reserve block ids so calls can target later functions.
        for function_id in range(self.shape.num_functions):
            count = self._rng.randint(*self.shape.blocks_per_function)
            ids = list(range(len(blocks), len(blocks) + count))
            function_entries.append(ids[0])
            function_block_ids.append(ids)
            blocks.extend([None] * count)  # type: ignore[list-item]

        for function_id in range(self.shape.num_functions):
            self._build_function(
                function_id, function_block_ids[function_id], function_entries, blocks
            )

        program = Program(blocks, entry_block=function_entries[0], name=self.name)
        program.finalize()
        return program

    def _build_function(
        self,
        function_id: int,
        block_ids: List[int],
        function_entries: List[int],
        blocks: List[BasicBlock],
    ) -> None:
        last_index = len(block_ids) - 1
        recent_dests: List[int] = []
        self._last_load_dest = None  # pointer chains do not cross functions
        for position, block_id in enumerate(block_ids):
            if position == last_index:
                block = self._make_final_block(function_id, block_id, block_ids)
            else:
                block = self._make_inner_block(
                    function_id, position, block_id, block_ids, function_entries
                )
            self._fill_block(block, recent_dests)
            blocks[block_id] = block

    def _make_final_block(
        self, function_id: int, block_id: int, block_ids: List[int]
    ) -> BasicBlock:
        if function_id == 0:
            # main loops forever: the steady state of the benchmark.
            return BasicBlock(
                block_id, function_id, TerminatorKind.JUMP, taken_target=block_ids[0]
            )
        return BasicBlock(block_id, function_id, TerminatorKind.RET)

    def _make_inner_block(
        self,
        function_id: int,
        position: int,
        block_id: int,
        block_ids: List[int],
        function_entries: List[int],
    ) -> BasicBlock:
        shape = self.shape
        next_block = block_ids[position + 1]
        roll = self._rng.random()

        if roll < shape.p_cond:
            return self._make_cond_block(function_id, position, block_id, block_ids)
        roll -= shape.p_cond

        callable_functions = [
            entry
            for target_id, entry in enumerate(function_entries)
            if target_id > function_id
        ]
        if roll < shape.p_call and callable_functions:
            target = self._rng.choice(callable_functions)
            return BasicBlock(
                block_id,
                function_id,
                TerminatorKind.CALL,
                taken_target=target,
                fall_target=next_block,
            )
        roll -= shape.p_call

        if roll < shape.p_jump and position + 2 < len(block_ids):
            skip = self._rng.randint(position + 2, min(position + 4, len(block_ids) - 1))
            return BasicBlock(
                block_id, function_id, TerminatorKind.JUMP, taken_target=block_ids[skip]
            )

        return BasicBlock(
            block_id, function_id, TerminatorKind.FALL, fall_target=next_block
        )

    def _make_cond_block(
        self, function_id: int, position: int, block_id: int, block_ids: List[int]
    ) -> BasicBlock:
        shape = self.shape
        next_block = block_ids[position + 1]
        is_loop = position > 0 and self._rng.chance(shape.loop_fraction)
        if is_loop:
            head = block_ids[self._rng.randint(max(0, position - 3), position)]
            behavior = LoopBehavior(
                mean_trip=self._rng.randint(*shape.loop_trip_range),
                seed=self._next_behavior_seed(),
                jitter=shape.loop_jitter,
            )
            # Jittered (data-dependent trip count) loops model pointer
            # walks: their back-edge tests a loaded value and resolves
            # late, which is why their exits are the costly mispredicts.
            if behavior.jitter > 0 and self._chain_rng.chance(
                shape.hard_branch_chain
            ):
                self._hard_blocks.add(block_id)
            return BasicBlock(
                block_id,
                function_id,
                TerminatorKind.COND,
                taken_target=head,
                fall_target=next_block,
                behavior=behavior,
            )
        # Forward branch: skip over one to four blocks.
        hi = min(position + 4, len(block_ids) - 1)
        lo = min(position + 2, hi)
        target = block_ids[self._rng.randint(lo, hi)]
        behavior, kind = self._make_forward_behavior()
        hard = kind in ("bad", "random") or (
            isinstance(behavior, CorrelatedBehavior)
            and behavior.noise >= shape.hard_noise_threshold
        )
        if hard and self._chain_rng.chance(shape.hard_branch_chain):
            self._hard_blocks.add(block_id)
        return BasicBlock(
            block_id,
            function_id,
            TerminatorKind.COND,
            taken_target=target,
            fall_target=next_block,
            behavior=behavior,
        )

    def _make_forward_behavior(self):
        shape = self.shape
        kind = self._rng.weighted_choice(
            ("biased", "pattern", "correlated", "random", "bad"),
            (shape.w_biased, shape.w_pattern, shape.w_correlated, shape.w_random,
             shape.w_bad),
        )
        seed = self._next_behavior_seed()
        if kind in ("biased", "bad"):
            lo, hi = shape.biased_strength if kind == "biased" else shape.bad_strength
            strength = lo + self._rng.random() * (hi - lo)
            p_taken = strength if self._rng.chance(0.5) else 1.0 - strength
            return BiasedBehavior(p_taken, seed), kind
        if kind == "pattern":
            length = self._rng.randint(*shape.pattern_length)
            pattern = [self._rng.chance(0.5) for _ in range(length)]
            if all(pattern) or not any(pattern):
                pattern[0] = not pattern[0]
            return PatternBehavior(pattern), kind
        if kind == "correlated":
            bits = shape.correlated_history_bits
            mask = 0
            for _ in range(self._rng.randint(1, 3)):
                mask |= 1 << self._rng.randint(0, bits - 1)
            noise = (
                shape.correlated_noise[0]
                + self._rng.random() * (shape.correlated_noise[1] - shape.correlated_noise[0])
            )
            return CorrelatedBehavior(mask, noise, seed), kind
        return BiasedBehavior(0.5, seed), kind

    def _next_behavior_seed(self) -> int:
        self._behavior_counter += 1
        return derive_seed(self.seed, "behavior", self._behavior_counter)

    def _fill_block(self, block: BasicBlock, recent_dests: List[int]) -> None:
        """Populate a block with straight-line code plus its terminator."""
        shape = self.shape
        body_size = self._rng.randint(*shape.block_size)
        for _ in range(body_size):
            block.instructions.append(self._make_body_instruction(block, recent_dests))
        terminator_opcode = {
            TerminatorKind.COND: Opcode.BR_COND,
            TerminatorKind.JUMP: Opcode.BR_UNCOND,
            TerminatorKind.CALL: Opcode.CALL,
            TerminatorKind.RET: Opcode.RET,
        }.get(block.kind)
        if terminator_opcode is not None:
            sources: Tuple[int, ...] = ()
            if terminator_opcode is Opcode.BR_COND:
                sources = (self._pick_branch_source(block, recent_dests),)
            block.instructions.append(
                StaticInstruction(0, terminator_opcode, dest=None, sources=sources)
            )
        if isinstance(block.behavior, LoopBehavior):
            self._install_induction_chain(block)
        self._install_serial_chain(block)
        if block.block_id in self._hard_blocks:
            self._install_condition_chain(block)

    def _install_induction_chain(self, block: BasicBlock) -> None:
        """Give a loop its induction variable: ``i = i + 1; branch on i``.

        The first body instruction becomes the induction update — a
        single-cycle ALU op whose only input is its own previous value, so
        it runs one iteration ahead of the body's dependence chains — and
        the loop branch tests it.  This is how real loop back-edges resolve
        almost as soon as they reach issue, instead of waiting for the
        iteration's data chain.  Fields are overwritten in place so the
        generator's RNG stream (and hence the calibrated branch population)
        is untouched.
        """
        body = [i for i in block.instructions if not i.is_branch]
        if not body:
            return
        head = body[0]
        induction_reg = head.dest if head.dest is not None else FIRST_SCRATCH_REG
        induction = StaticInstruction(
            0, Opcode.ADD, dest=induction_reg, sources=(induction_reg,),
            block_id=head.block_id,
        )
        block.instructions[block.instructions.index(head)] = induction
        branch = block.instructions[-1]
        if branch.is_cond_branch:
            block.instructions[-1] = StaticInstruction(
                0, Opcode.BR_COND, dest=None, sources=(induction_reg,),
                block_id=branch.block_id,
            )

    def _pick_branch_source(self, block: BasicBlock, recent_dests: List[int]) -> int:
        """Condition register of a branch.

        Forward (data-dependent) branches often test a freshly loaded value
        and therefore resolve late; loop back-edges test an induction
        variable produced by ALU code and resolve quickly.
        """
        is_loop_edge = isinstance(block.behavior, LoopBehavior)
        wants_load_source = self._rng.chance(self.shape.branch_load_dependence)
        if wants_load_source and not is_loop_edge:
            for instruction in reversed(block.instructions):
                if instruction.opcode is Opcode.LOAD and instruction.dest is not None:
                    return instruction.dest
        return self._pick_source(recent_dests)

    def _make_body_instruction(
        self, block: BasicBlock, recent_dests: List[int]
    ) -> StaticInstruction:
        shape = self.shape
        kind = self._rng.weighted_choice(
            ("alu", "mul", "load", "store", "fp"),
            (shape.w_alu, shape.w_mul, shape.w_load, shape.w_store, shape.w_fp),
        )
        if kind == "alu":
            opcode = self._rng.choice(
                (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHIFT,
                 Opcode.CMP, Opcode.MOV)
            )
            dest = self._pick_dest(recent_dests)
            sources = tuple(
                self._pick_source(recent_dests) for _ in range(self._rng.randint(1, 2))
            )
            return StaticInstruction(0, opcode, dest=dest, sources=sources)
        if kind == "mul":
            opcode = Opcode.MUL if self._rng.chance(0.9) else Opcode.DIV
            dest = self._pick_dest(recent_dests)
            sources = (self._pick_source(recent_dests), self._pick_source(recent_dests))
            return StaticInstruction(0, opcode, dest=dest, sources=sources)
        if kind == "load":
            dest = self._pick_dest(recent_dests)
            sources = (self._pick_source(recent_dests),)
            if (
                self._last_load_dest is not None
                and self._chain_rng.chance(shape.load_chain_fraction)
            ):
                sources = (self._last_load_dest,)
            self._last_load_dest = dest
            return StaticInstruction(
                0,
                Opcode.LOAD,
                dest=dest,
                sources=sources,
                mem_region=self._rng.randint(0, shape.mem_regions - 1),
                mem_stride=self._rng.choice(shape.mem_strides),
                mem_footprint=self._pick_footprint(),
            )
        if kind == "store":
            sources = (self._pick_source(recent_dests), self._pick_source(recent_dests))
            return StaticInstruction(
                0,
                Opcode.STORE,
                dest=None,
                sources=sources,
                mem_region=self._rng.randint(0, shape.mem_regions - 1),
                mem_stride=self._rng.choice(shape.mem_strides),
                mem_footprint=self._pick_footprint(),
            )
        opcode = Opcode.FADD if self._rng.chance(0.6) else Opcode.FMUL
        dest = self._pick_dest(recent_dests)
        sources = (self._pick_source(recent_dests), self._pick_source(recent_dests))
        return StaticInstruction(0, opcode, dest=dest, sources=sources)

    _SERIAL_REG = NUM_ARCH_REGS - 1

    def _install_condition_chain(self, block: BasicBlock) -> None:
        """Make a hard branch's condition arrive late (pointer chasing).

        The block's last load becomes a self-chained, cache-missing load:
        it reads and writes one of a few reserved condition registers, so
        successive executions of the same chain serialise (each walk step
        needs the previous pointer), and its working set is pushed past the
        L2 so the value arrives tens of cycles after dispatch.  The branch
        then tests that register.  Blocks without a load have their last
        rewritable ALU op converted into such a load.  All rewrites are in
        place (decisions come from the side RNG stream), so the calibrated
        branch population and the code layout are untouched.
        """
        instructions = block.instructions
        branch = instructions[-1]
        if not branch.is_cond_branch:
            return
        reg = NUM_ARCH_REGS - 2 - (block.block_id % self.shape.hard_chain_registers)
        stride = self._chain_rng.choice(self.shape.hard_chain_strides)

        chain_load = None
        for instr in reversed(instructions[:-1]):
            if instr.opcode is Opcode.LOAD:
                chain_load = instr
                break
        if chain_load is None:
            for index in range(len(instructions) - 2, -1, -1):
                instr = instructions[index]
                if instr.is_branch or instr.dest is None:
                    continue
                if instr.sources and instr.sources[0] == instr.dest == self._SERIAL_REG:
                    continue  # keep the induction/serial heads intact
                chain_load = StaticInstruction(
                    0,
                    Opcode.LOAD,
                    dest=instr.dest,
                    sources=instr.sources,
                    block_id=instr.block_id,
                    mem_region=self._chain_rng.randint(0, self.shape.mem_regions - 1),
                )
                instructions[index] = chain_load
                break
        if chain_load is None:
            return
        chain_load.dest = reg
        if self._chain_rng.chance(self.shape.hard_chain_serial):
            chain_load.sources = (reg,)  # pointer walk: serialised instances
        elif not chain_load.sources:
            chain_load.sources = (FIRST_SCRATCH_REG,)
        chain_load.mem_footprint = self.shape.hard_chain_footprint
        chain_load.mem_stride = stride
        branch.sources = (reg,)

    def _install_serial_chain(self, block: BasicBlock) -> None:
        """Thread part of the block onto the global serial dependence chain.

        Chained ALU ops and loads read and write one dedicated register, so
        they execute strictly one after another across blocks, functions and
        loop iterations — the accumulator/induction/pointer-walk chains that
        bound real integer codes' ILP.  Instruction fields are overwritten
        in place (decisions come from the side RNG stream), so the main
        generator stream and the calibrated branch outcomes are untouched.
        """
        fraction = self.shape.serial_chain_fraction
        if fraction <= 0.0:
            return
        for position, instr in enumerate(block.instructions):
            if instr.is_branch or instr.dest is None:
                continue
            if instr.sources and instr.sources[0] == instr.dest == self._SERIAL_REG:
                continue  # the induction head keeps its private chain
            if instr.opcode is Opcode.STORE or instr.op_class is OpClass.FP_ALU:
                continue
            if not self._chain_rng.chance(fraction):
                continue
            instr.dest = self._SERIAL_REG
            if self._chain_rng.chance(self.shape.serial_chain_restart):
                continue  # restart: write the chain register, read elsewhere
            instr.sources = (self._SERIAL_REG,) + tuple(instr.sources[1:])

    def _pick_footprint(self) -> int:
        shape = self.shape
        return self._rng.weighted_choice(shape.mem_footprints, shape.mem_footprint_weights)

    def _pick_dest(self, recent_dests: List[int]) -> int:
        # The top registers are reserved: NUM_ARCH_REGS - 1 carries the
        # serial dependence chain and the next ``hard_chain_registers`` the
        # pointer-chase condition chains; ordinary destinations must not
        # break those chains by clobbering them.
        dest = self._rng.randint(
            FIRST_SCRATCH_REG, NUM_ARCH_REGS - 2 - self.shape.hard_chain_registers
        )
        recent_dests.append(dest)
        if len(recent_dests) > self.shape.dep_window:
            del recent_dests[0]
        return dest

    def _pick_source(self, recent_dests: List[int]) -> int:
        if recent_dests and self._rng.chance(self.shape.dep_locality):
            return self._rng.choice(recent_dests)
        return self._rng.randint(FIRST_SCRATCH_REG, NUM_ARCH_REGS - 1)
