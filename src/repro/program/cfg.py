"""Control-flow graph representation of a synthetic program.

A program is a list of :class:`BasicBlock`.  Each block carries straight-line
instructions and ends with a terminator: a conditional branch, an
unconditional jump, a call, a return, or a plain fall-through (no control
instruction at all, execution continues at ``fall_target``).

Block addresses are laid out contiguously (4 bytes per instruction) so the
instruction cache sees a realistic address stream, including wrong-path
pollution when speculative fetch wanders into code the true path never
touches.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.errors import ProgramError
from repro.isa.instruction import StaticInstruction
from repro.program.behavior import BranchBehavior

INSTRUCTION_BYTES = 4


class TerminatorKind(enum.Enum):
    """How control leaves a basic block."""

    COND = "cond"  # conditional branch: taken_target / fall_target
    JUMP = "jump"  # unconditional direct jump: taken_target
    CALL = "call"  # call taken_target (function entry); continue at fall_target
    RET = "ret"  # return to the caller's continuation block
    FALL = "fall"  # no control instruction; continue at fall_target


class BasicBlock:
    """One basic block: straight-line instructions plus a terminator."""

    __slots__ = (
        "block_id",
        "function_id",
        "address",
        "instructions",
        "kind",
        "taken_target",
        "fall_target",
        "behavior",
    )

    def __init__(
        self,
        block_id: int,
        function_id: int,
        kind: TerminatorKind,
        taken_target: int = -1,
        fall_target: int = -1,
        behavior: Optional[BranchBehavior] = None,
    ) -> None:
        self.block_id = block_id
        self.function_id = function_id
        self.address = 0  # assigned by Program.finalize()
        self.instructions: List[StaticInstruction] = []
        self.kind = kind
        self.taken_target = taken_target
        self.fall_target = fall_target
        self.behavior = behavior

    @property
    def terminator(self) -> Optional[StaticInstruction]:
        """The control instruction ending the block, if any."""
        if self.kind is TerminatorKind.FALL:
            return None
        if not self.instructions:
            raise ProgramError(f"block {self.block_id} has no terminator instruction")
        return self.instructions[-1]

    def validate(self, num_blocks: int) -> None:
        """Check structural invariants; raise ProgramError on violation."""
        if not self.instructions and self.kind is not TerminatorKind.FALL:
            raise ProgramError(f"block {self.block_id}: empty block with terminator {self.kind}")
        if self.kind is TerminatorKind.COND:
            if self.behavior is None:
                raise ProgramError(f"block {self.block_id}: conditional branch without behaviour")
            if not (0 <= self.taken_target < num_blocks):
                raise ProgramError(f"block {self.block_id}: bad taken target {self.taken_target}")
            if not (0 <= self.fall_target < num_blocks):
                raise ProgramError(f"block {self.block_id}: bad fall target {self.fall_target}")
            if not self.instructions[-1].is_cond_branch:
                raise ProgramError(f"block {self.block_id}: COND block must end in BR_COND")
        elif self.kind in (TerminatorKind.JUMP, TerminatorKind.CALL):
            if not (0 <= self.taken_target < num_blocks):
                raise ProgramError(f"block {self.block_id}: bad jump target {self.taken_target}")
            if self.kind is TerminatorKind.CALL and not (0 <= self.fall_target < num_blocks):
                raise ProgramError(f"block {self.block_id}: call without continuation")
        elif self.kind is TerminatorKind.FALL:
            if not (0 <= self.fall_target < num_blocks):
                raise ProgramError(f"block {self.block_id}: bad fall target {self.fall_target}")

    def __repr__(self) -> str:
        return (
            f"BasicBlock(id={self.block_id}, fn={self.function_id}, "
            f"{len(self.instructions)} instrs, {self.kind.value})"
        )


class Program:
    """A finalized synthetic program: blocks, layout and lookups."""

    def __init__(self, blocks: List[BasicBlock], entry_block: int, name: str = "anon") -> None:
        if not blocks:
            raise ProgramError("a program needs at least one block")
        if not (0 <= entry_block < len(blocks)):
            raise ProgramError(f"bad entry block {entry_block}")
        self.blocks = blocks
        self.entry_block = entry_block
        self.name = name
        self._block_by_address: Dict[int, int] = {}
        self._finalized = False

    def finalize(self, base_address: int = 0x1000) -> None:
        """Assign addresses, validate every block, build lookup tables."""
        address = base_address
        for block in self.blocks:
            block.validate(len(self.blocks))
            block.address = address
            self._block_by_address[address] = block.block_id
            for offset, instruction in enumerate(block.instructions):
                instruction.address = address + offset * INSTRUCTION_BYTES
                instruction.block_id = block.block_id
            # FALL blocks may be empty; still give them a distinct address.
            address += max(1, len(block.instructions)) * INSTRUCTION_BYTES
        self.code_bytes = address - base_address
        self._finalized = True

    @property
    def finalized(self) -> bool:
        """True once finalize() assigned addresses and validated blocks."""
        return self._finalized

    def block(self, block_id: int) -> BasicBlock:
        """Return a block by id."""
        return self.blocks[block_id]

    def block_at_address(self, address: int) -> Optional[BasicBlock]:
        """Return the block starting exactly at ``address``, if any."""
        block_id = self._block_by_address.get(address)
        return None if block_id is None else self.blocks[block_id]

    def reset_behaviors(self) -> None:
        """Reset every branch behaviour so the program can be re-run."""
        for block in self.blocks:
            if block.behavior is not None:
                block.behavior.reset()

    def static_instruction_count(self) -> int:
        """Total number of static instructions in the program text."""
        return sum(len(block.instructions) for block in self.blocks)

    def conditional_branch_count(self) -> int:
        """Number of static conditional branches."""
        return sum(1 for block in self.blocks if block.kind is TerminatorKind.COND)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.blocks)} blocks, "
            f"{self.static_instruction_count()} instrs)"
        )
