"""Branch behaviour models.

Each conditional branch in a synthetic program owns one behaviour instance.
The mix of behaviours is what calibrates a workload's gshare misprediction
rate (Table 2 of the paper):

* :class:`LoopBehavior` — backward branches; taken until the trip count runs
  out.  Nearly perfectly predictable for long, stable loops; the short-trip
  variant injects the classic loop-exit mispredictions.
* :class:`PatternBehavior` — short repeating history patterns; a two-level
  predictor learns them perfectly once warmed up.
* :class:`BiasedBehavior` — independent Bernoulli outcomes; contributes a
  misprediction floor of ``min(p, 1-p)``.
* :class:`CorrelatedBehavior` — outcome is a parity function of recent global
  history bits plus noise.  gshare learns the correlation, the noise term is
  irreducible; this mimics data-dependent branches.

Behaviours are *stateful* and must only be advanced along the true path —
exactly once per conditional-terminator visit, in program order.  Both
true-path walkers (the seed oracle and the compiled supply's
block-at-a-time generation) uphold that contract, which is what keeps
their streams bit-identical; wrong-path outcomes come from a stateless
hash and never touch behaviour state.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ProgramError
from repro.utils.rng import XorShiftRNG


class BranchBehavior:
    """Interface: produce the next true outcome of a conditional branch."""

    def next_outcome(self, global_history: int) -> bool:
        """Advance the behaviour and return the branch outcome.

        ``global_history`` is the walker's register of recent true-path
        outcomes (bit 0 = most recent), consulted by correlated behaviours.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Restore the initial state (used when a program is re-run)."""
        raise NotImplementedError


class BiasedBehavior(BranchBehavior):
    """Independent outcomes, taken with fixed probability ``p_taken``."""

    def __init__(self, p_taken: float, seed: int) -> None:
        if not 0.0 <= p_taken <= 1.0:
            raise ProgramError(f"p_taken must be a probability, got {p_taken}")
        self.p_taken = p_taken
        self._seed = seed
        self._rng = XorShiftRNG(seed)

    def next_outcome(self, global_history: int) -> bool:
        return self._rng.chance(self.p_taken)

    def reset(self) -> None:
        self._rng = XorShiftRNG(self._seed)


class LoopBehavior(BranchBehavior):
    """A backward loop branch: taken ``trip - 1`` times, then not taken.

    The trip count is re-drawn on each loop entry from a geometric-ish
    distribution around ``mean_trip`` when ``jitter`` is non-zero, which
    makes the exit point hard for a counter-free predictor to pin down.
    """

    def __init__(self, mean_trip: int, seed: int, jitter: float = 0.0) -> None:
        if mean_trip < 1:
            raise ProgramError(f"mean trip count must be >= 1, got {mean_trip}")
        if not 0.0 <= jitter <= 1.0:
            raise ProgramError(f"jitter must be in [0, 1], got {jitter}")
        self.mean_trip = mean_trip
        self.jitter = jitter
        self._seed = seed
        self._rng = XorShiftRNG(seed)
        self._remaining = self._draw_trip()

    def _draw_trip(self) -> int:
        if self.jitter == 0.0:
            return self.mean_trip
        spread = max(1, int(self.mean_trip * self.jitter))
        trip = self.mean_trip + self._rng.randint(-spread, spread)
        return max(1, trip)

    def next_outcome(self, global_history: int) -> bool:
        self._remaining -= 1
        if self._remaining > 0:
            return True
        self._remaining = self._draw_trip()
        return False

    def reset(self) -> None:
        self._rng = XorShiftRNG(self._seed)
        self._remaining = self._draw_trip()


class PatternBehavior(BranchBehavior):
    """Outcomes cycle through a fixed boolean pattern."""

    def __init__(self, pattern: Sequence[bool]) -> None:
        if not pattern:
            raise ProgramError("pattern must be non-empty")
        self.pattern = tuple(bool(p) for p in pattern)
        self._index = 0

    def next_outcome(self, global_history: int) -> bool:
        outcome = self.pattern[self._index]
        self._index = (self._index + 1) % len(self.pattern)
        return outcome

    def reset(self) -> None:
        self._index = 0


class CorrelatedBehavior(BranchBehavior):
    """Outcome = parity of masked global history bits, XOR noise.

    ``history_mask`` selects which recent branch outcomes the branch
    correlates with; ``noise`` is the probability the deterministic outcome
    flips, which bounds the achievable prediction accuracy at ``1 - noise``.
    """

    def __init__(self, history_mask: int, noise: float, seed: int) -> None:
        if history_mask <= 0:
            raise ProgramError("history_mask must select at least one bit")
        if not 0.0 <= noise <= 1.0:
            raise ProgramError(f"noise must be a probability, got {noise}")
        self.history_mask = history_mask
        self.noise = noise
        self._seed = seed
        self._rng = XorShiftRNG(seed)

    def next_outcome(self, global_history: int) -> bool:
        parity = bin(global_history & self.history_mask).count("1") & 1
        outcome = bool(parity)
        if self.noise and self._rng.chance(self.noise):
            outcome = not outcome
        return outcome

    def reset(self) -> None:
        self._rng = XorShiftRNG(self._seed)
