"""Dynamic instruction streams: the true path and wrong paths.

:class:`TruePathOracle` unrolls the architecturally correct execution of a
program into an indexable stream of :class:`DynamicRecord`.  The pipeline
front-end consumes this stream while its predictions are correct; a branch
misprediction makes it diverge onto a *wrong path*, which is served by
:class:`WrongPathNavigator` — a stateless walker over the same CFG whose
branch outcomes come from a pure hash, so speculative fetch can never
corrupt true-path behavioural state (loop counters, RNG streams).

Recovery is cursor-based: every fetched branch remembers the cursor of the
instruction that *actually* follows it, so a squash simply re-points the
front-end at that cursor (a true-stream index, or a wrong-path position for
branches that were themselves speculative).

These walkers are the **seed reference implementation** of the front-end
instruction-supply contract: the pipeline now fetches through
:mod:`repro.frontend.supply`, whose ``CompiledSupply`` pre-lowers each
basic block into reusable packets serving bit-identical streams (parity
is enforced by ``tests/test_frontend_supply.py``), while ``LiveSupply``
wraps these classes unchanged.  Any semantic change here must be
mirrored in the compiled tables — the parity suite will catch it.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.errors import ProgramError, SimulationError
from repro.program.cfg import Program, TerminatorKind
from repro.utils.rng import XorShiftRNG, derive_seed, stateless_hash

HISTORY_BITS = 32
_HISTORY_MASK = (1 << HISTORY_BITS) - 1

# Records generated beyond the requested true-path index per oracle miss.
_LOOKAHEAD = 16


class DynamicRecord(NamedTuple):
    """One instruction instance on the true path.

    A named tuple: the fetch stage unpacks all four fields at once per
    fetched instruction, while cold consumers (trace capture, predictor
    calibration) keep attribute access.
    """

    static: object
    taken: bool
    target_block: int
    mem_address: int

    def __repr__(self) -> str:
        return (
            f"DynamicRecord({self.static!r}, taken={self.taken}, "
            f"target={self.target_block})"
        )


class TruePathOracle:
    """Lazily generated, indexable true-path instruction stream.

    The stream is unbounded (synthetic programs loop forever); records are
    generated on demand and pruned once the simulator commits past them.

    Branch behaviour state lives inside the Program, and constructing an
    oracle resets it — so only one live oracle may walk a given Program
    instance at a time.  Build a fresh Program (generation is deterministic)
    for each concurrent walker.
    """

    def __init__(self, program: Program, seed: int) -> None:
        if not program.finalized:
            raise ProgramError("program must be finalized before walking")
        self.program = program
        program.reset_behaviors()
        self._records: List[DynamicRecord] = []
        self._base = 0  # stream index of _records[0]
        self._block = program.block(program.entry_block)
        self._index = 0
        self._stack: List[int] = []
        self.global_history = 0
        self._mem_rng = XorShiftRNG(derive_seed(seed, "truepath-mem"))
        self._visit_counts = {}
        self._region_seed = derive_seed(seed, "regions")

    def get(self, stream_index: int) -> DynamicRecord:
        """Return the record at an absolute stream index, generating as needed."""
        offset = stream_index - self._base
        records = self._records
        if 0 <= offset < len(records):  # fast path: already materialised
            return records[offset]
        if offset < 0:
            raise SimulationError(
                f"true-path record {stream_index} was pruned (base={self._base})"
            )
        # Materialise a look-ahead chunk: generation is deterministic and
        # all walk state is oracle-internal, so producing records early is
        # unobservable — and it lets the fetch stage index the ring
        # directly instead of calling back here once per instruction.
        self._generate(offset - len(records) + _LOOKAHEAD)
        return records[offset]

    def _generate(self, count: int) -> None:
        """Emit ``count`` more records (the :meth:`_generate_one` walk with
        the per-record state held in locals)."""
        records = self._records
        append = records.append
        visit_counts = self._visit_counts
        program = self.program
        block = self._block
        index = self._index
        for _ in range(count):
            hops = 0
            instructions = block.instructions
            while not instructions:
                if block.kind is not TerminatorKind.FALL:
                    raise ProgramError(f"empty non-FALL block {block.block_id}")
                block = program.block(block.fall_target)
                instructions = block.instructions
                hops += 1
                if hops > len(program.blocks):
                    raise ProgramError("cycle of empty fall-through blocks")

            static = instructions[index]
            is_terminator = index == len(instructions) - 1

            taken = False
            target_block = -1
            mem_address = 0

            if static.is_mem:
                address = static.address
                visit = visit_counts.get(address, 0)
                visit_counts[address] = visit + 1
                # data_address, inlined: walk the working set with the
                # instruction's stride (word-aligned).
                stride = static.mem_stride
                if stride == 0:
                    offset = (address * 16) & (static.mem_footprint - 1)
                else:
                    offset = (stride * visit) & (static.mem_footprint - 1)
                mem_address = (
                    0x1000_0000 + static.mem_region * 0x10_0000 + (offset & ~0x3)
                )

            if is_terminator:
                if block.kind is not TerminatorKind.FALL:
                    # _resolve_terminator reads/updates self state (global
                    # history, call stack); sync is not needed because the
                    # localized walk state is block/index only.
                    taken, target_block = self._resolve_terminator(block)
                    block = program.block(target_block)
                else:
                    block = program.block(block.fall_target)
                index = 0
            else:
                index += 1

            append(DynamicRecord(static, taken, target_block, mem_address))
        self._block = block
        self._index = index

    def prune_before(self, stream_index: int) -> None:
        """Drop records older than ``stream_index`` (already committed)."""
        drop = stream_index - self._base
        if drop > 0:
            del self._records[:drop]
            self._base = stream_index

    def data_address(self, static, visit: int, rng: Optional[XorShiftRNG] = None) -> int:
        """Compute the dynamic data address of a memory instruction visit.

        The access walks its working set (``mem_footprint``) with the
        instruction's stride, so cache behaviour follows the footprint:
        small sets live in L1, the streaming tail reaches L2 and memory.
        """
        region_base = 0x1000_0000 + static.mem_region * 0x10_0000
        footprint_mask = static.mem_footprint - 1
        if static.mem_stride == 0:
            offset = (static.address * 16) & footprint_mask
        else:
            offset = (static.mem_stride * visit) & footprint_mask
        return region_base + (offset & ~0x3)

    def _resolve_terminator(self, block) -> Tuple[bool, int]:
        """Decide the outcome and target of a block terminator."""
        if block.kind is TerminatorKind.COND:
            outcome = block.behavior.next_outcome(self.global_history)
            self.global_history = ((self.global_history << 1) | int(outcome)) & _HISTORY_MASK
            target = block.taken_target if outcome else block.fall_target
            return outcome, target
        if block.kind is TerminatorKind.JUMP:
            return True, block.taken_target
        if block.kind is TerminatorKind.CALL:
            self._stack.append(block.fall_target)
            return True, block.taken_target
        if block.kind is TerminatorKind.RET:
            if not self._stack:
                raise ProgramError(f"return with empty call stack in block {block.block_id}")
            return True, self._stack.pop()
        raise ProgramError(f"unexpected terminator kind {block.kind}")


# A wrong-path cursor is (block_id, instr_index, call_stack_tuple, step_count).
WrongPathCursor = Tuple[int, int, Tuple[int, ...], int]


class WrongPathNavigator:
    """Stateless walker serving speculative fetch down mispredicted paths.

    Branch outcomes are a pure hash of (seed, block, step), so revisiting the
    same wrong path yields identical streams (determinism) while distinct
    divergences decorrelate.  Returns with an empty speculative stack jump to
    a hash-chosen block — mirroring the garbage control flow a real processor
    chases down the wrong path.
    """

    def __init__(self, program: Program, seed: int) -> None:
        self.program = program
        self._blocks = program.blocks
        self._seed = derive_seed(seed, "wrongpath")

    def start_cursor(self, block_id: int, salt: int) -> WrongPathCursor:
        """Cursor for entering a wrong path at the top of ``block_id``."""
        return (block_id, 0, (), salt & 0xFFFF)

    def fetch_one(self, cursor: WrongPathCursor):
        """Return (static, taken, target_block, next_cursor, mem_address).

        ``taken``/``target_block`` describe the *actual* outcome along this
        wrong path (what the branch will resolve to if it executes before
        the path is squashed).
        """
        block_id, index, stack, step = cursor
        blocks = self._blocks
        block = blocks[block_id]
        instructions = block.instructions
        hops = 0
        while not instructions:
            block = blocks[block.fall_target]
            instructions = block.instructions
            block_id, index = block.block_id, 0
            hops += 1
            if hops > len(blocks):
                raise ProgramError("cycle of empty fall-through blocks")
        static = instructions[index]
        is_terminator = index == len(instructions) - 1

        taken = False
        target_block = -1
        mem_address = 0
        if static.is_mem:
            mem_address = self._wrong_data_address(static, step)

        if not is_terminator:
            next_cursor = (block_id, index + 1, stack, step + 1)
            return static, taken, target_block, next_cursor, mem_address

        taken, target_block, stack = self._resolve_terminator(block, stack, step)
        if block.kind is TerminatorKind.FALL:
            next_block = block.fall_target
        else:
            next_block = target_block
        next_cursor = (next_block, 0, stack, step + 1)
        return static, taken, target_block, next_cursor, mem_address

    def cursor_at(self, block_id: int, stack: Tuple[int, ...], step: int) -> WrongPathCursor:
        """Cursor at the top of a block with an explicit speculative stack."""
        return (block_id, 0, stack, step)

    def _resolve_terminator(self, block, stack: Tuple[int, ...], step: int):
        if block.kind is TerminatorKind.COND:
            outcome = bool(stateless_hash(self._seed, block.block_id, step) & 1)
            target = block.taken_target if outcome else block.fall_target
            return outcome, target, stack
        if block.kind is TerminatorKind.JUMP:
            return True, block.taken_target, stack
        if block.kind is TerminatorKind.CALL:
            if len(stack) < 64:
                stack = stack + (block.fall_target,)
            return True, block.taken_target, stack
        if block.kind is TerminatorKind.RET:
            if stack:
                return True, stack[-1], stack[:-1]
            wild = stateless_hash(self._seed, block.block_id, step, 7) % len(self.program.blocks)
            return True, wild, stack
        if block.kind is TerminatorKind.FALL:
            return False, block.fall_target, stack
        raise ProgramError(f"unexpected terminator kind {block.kind}")

    # Wrong-path accesses scatter over the whole 1 MB region, not the
    # instruction's own working set: down a wrong path the address register
    # holds stale or garbage values, so speculative loads *pollute* the
    # caches (the paper's §3) instead of conveniently prefetching the lines
    # the true path is about to touch.
    _WRONG_PATH_SPAN = 0x10_0000

    def _wrong_data_address(self, static, step: int) -> int:
        region_base = 0x1000_0000 + static.mem_region * 0x10_0000
        offset = stateless_hash(self._seed, static.address, step) & (
            self._WRONG_PATH_SPAN - 1
        )
        return region_base + (offset & ~0x3)
