"""Dynamic instruction streams: the true path and wrong paths.

:class:`TruePathOracle` unrolls the architecturally correct execution of a
program into an indexable stream of :class:`DynamicRecord`.  The pipeline
front-end consumes this stream while its predictions are correct; a branch
misprediction makes it diverge onto a *wrong path*, which is served by
:class:`WrongPathNavigator` — a stateless walker over the same CFG whose
branch outcomes come from a pure hash, so speculative fetch can never
corrupt true-path behavioural state (loop counters, RNG streams).

Recovery is cursor-based: every fetched branch remembers the cursor of the
instruction that *actually* follows it, so a squash simply re-points the
front-end at that cursor (a true-stream index, or a wrong-path position for
branches that were themselves speculative).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ProgramError, SimulationError
from repro.program.cfg import Program, TerminatorKind
from repro.utils.rng import XorShiftRNG, derive_seed, stateless_hash

HISTORY_BITS = 32
_HISTORY_MASK = (1 << HISTORY_BITS) - 1


class DynamicRecord:
    """One instruction instance on the true path."""

    __slots__ = ("static", "taken", "target_block", "mem_address")

    def __init__(self, static, taken: bool, target_block: int, mem_address: int) -> None:
        self.static = static
        self.taken = taken
        self.target_block = target_block
        self.mem_address = mem_address

    def __repr__(self) -> str:
        return (
            f"DynamicRecord({self.static!r}, taken={self.taken}, "
            f"target={self.target_block})"
        )


class TruePathOracle:
    """Lazily generated, indexable true-path instruction stream.

    The stream is unbounded (synthetic programs loop forever); records are
    generated on demand and pruned once the simulator commits past them.

    Branch behaviour state lives inside the Program, and constructing an
    oracle resets it — so only one live oracle may walk a given Program
    instance at a time.  Build a fresh Program (generation is deterministic)
    for each concurrent walker.
    """

    def __init__(self, program: Program, seed: int) -> None:
        if not program.finalized:
            raise ProgramError("program must be finalized before walking")
        self.program = program
        program.reset_behaviors()
        self._records: List[DynamicRecord] = []
        self._base = 0  # stream index of _records[0]
        self._block = program.block(program.entry_block)
        self._index = 0
        self._stack: List[int] = []
        self.global_history = 0
        self._mem_rng = XorShiftRNG(derive_seed(seed, "truepath-mem"))
        self._visit_counts = {}
        self._region_seed = derive_seed(seed, "regions")

    def get(self, stream_index: int) -> DynamicRecord:
        """Return the record at an absolute stream index, generating as needed."""
        if stream_index < self._base:
            raise SimulationError(
                f"true-path record {stream_index} was pruned (base={self._base})"
            )
        while stream_index - self._base >= len(self._records):
            self._generate_one()
        return self._records[stream_index - self._base]

    def prune_before(self, stream_index: int) -> None:
        """Drop records older than ``stream_index`` (already committed)."""
        drop = stream_index - self._base
        if drop > 0:
            del self._records[:drop]
            self._base = stream_index

    def data_address(self, static, visit: int, rng: Optional[XorShiftRNG] = None) -> int:
        """Compute the dynamic data address of a memory instruction visit.

        The access walks its working set (``mem_footprint``) with the
        instruction's stride, so cache behaviour follows the footprint:
        small sets live in L1, the streaming tail reaches L2 and memory.
        """
        region_base = 0x1000_0000 + static.mem_region * 0x10_0000
        footprint_mask = static.mem_footprint - 1
        if static.mem_stride == 0:
            offset = (static.address * 16) & footprint_mask
        else:
            offset = (static.mem_stride * visit) & footprint_mask
        return region_base + (offset & ~0x3)

    def _generate_one(self) -> None:
        """Advance the walker until one record is emitted."""
        # Skip over empty fall-through blocks defensively (the generator
        # never emits them, but the walk must not spin if one appears).
        hops = 0
        while not self._block.instructions:
            if self._block.kind is not TerminatorKind.FALL:
                raise ProgramError(f"empty non-FALL block {self._block.block_id}")
            self._block = self.program.block(self._block.fall_target)
            hops += 1
            if hops > len(self.program.blocks):
                raise ProgramError("cycle of empty fall-through blocks")

        block = self._block
        static = block.instructions[self._index]
        is_terminator = self._index == len(block.instructions) - 1

        taken = False
        target_block = -1
        mem_address = 0

        if static.op_class.value in ("mem_read", "mem_write"):
            visit = self._visit_counts.get(static.address, 0)
            self._visit_counts[static.address] = visit + 1
            mem_address = self.data_address(static, visit)

        if is_terminator and block.kind is not TerminatorKind.FALL:
            taken, target_block = self._resolve_terminator(block)
        if is_terminator:
            self._advance_block(block, taken, target_block)
        else:
            self._index += 1

        self._records.append(DynamicRecord(static, taken, target_block, mem_address))

    def _resolve_terminator(self, block) -> Tuple[bool, int]:
        """Decide the outcome and target of a block terminator."""
        if block.kind is TerminatorKind.COND:
            outcome = block.behavior.next_outcome(self.global_history)
            self.global_history = ((self.global_history << 1) | int(outcome)) & _HISTORY_MASK
            target = block.taken_target if outcome else block.fall_target
            return outcome, target
        if block.kind is TerminatorKind.JUMP:
            return True, block.taken_target
        if block.kind is TerminatorKind.CALL:
            self._stack.append(block.fall_target)
            return True, block.taken_target
        if block.kind is TerminatorKind.RET:
            if not self._stack:
                raise ProgramError(f"return with empty call stack in block {block.block_id}")
            return True, self._stack.pop()
        raise ProgramError(f"unexpected terminator kind {block.kind}")

    def _advance_block(self, block, taken: bool, target_block: int) -> None:
        """Move the walker to the next block after a terminator."""
        if block.kind is TerminatorKind.FALL:
            next_block = block.fall_target
        else:
            next_block = target_block
        self._block = self.program.block(next_block)
        self._index = 0


# A wrong-path cursor is (block_id, instr_index, call_stack_tuple, step_count).
WrongPathCursor = Tuple[int, int, Tuple[int, ...], int]


class WrongPathNavigator:
    """Stateless walker serving speculative fetch down mispredicted paths.

    Branch outcomes are a pure hash of (seed, block, step), so revisiting the
    same wrong path yields identical streams (determinism) while distinct
    divergences decorrelate.  Returns with an empty speculative stack jump to
    a hash-chosen block — mirroring the garbage control flow a real processor
    chases down the wrong path.
    """

    def __init__(self, program: Program, seed: int) -> None:
        self.program = program
        self._seed = derive_seed(seed, "wrongpath")

    def start_cursor(self, block_id: int, salt: int) -> WrongPathCursor:
        """Cursor for entering a wrong path at the top of ``block_id``."""
        return (block_id, 0, (), salt & 0xFFFF)

    def fetch_one(self, cursor: WrongPathCursor):
        """Return (static, taken, target_block, next_cursor, mem_address).

        ``taken``/``target_block`` describe the *actual* outcome along this
        wrong path (what the branch will resolve to if it executes before
        the path is squashed).
        """
        block_id, index, stack, step = cursor
        block = self.program.block(block_id)
        hops = 0
        while not block.instructions:
            block = self.program.block(block.fall_target)
            block_id, index = block.block_id, 0
            hops += 1
            if hops > len(self.program.blocks):
                raise ProgramError("cycle of empty fall-through blocks")
        static = block.instructions[index]
        is_terminator = index == len(block.instructions) - 1

        taken = False
        target_block = -1
        mem_address = 0
        if static.op_class.value in ("mem_read", "mem_write"):
            mem_address = self._wrong_data_address(static, step)

        if not is_terminator:
            next_cursor = (block_id, index + 1, stack, step + 1)
            return static, taken, target_block, next_cursor, mem_address

        taken, target_block, stack = self._resolve_terminator(block, stack, step)
        if block.kind is TerminatorKind.FALL:
            next_block = block.fall_target
        else:
            next_block = target_block
        next_cursor = (next_block, 0, stack, step + 1)
        return static, taken, target_block, next_cursor, mem_address

    def cursor_at(self, block_id: int, stack: Tuple[int, ...], step: int) -> WrongPathCursor:
        """Cursor at the top of a block with an explicit speculative stack."""
        return (block_id, 0, stack, step)

    def _resolve_terminator(self, block, stack: Tuple[int, ...], step: int):
        if block.kind is TerminatorKind.COND:
            outcome = bool(stateless_hash(self._seed, block.block_id, step) & 1)
            target = block.taken_target if outcome else block.fall_target
            return outcome, target, stack
        if block.kind is TerminatorKind.JUMP:
            return True, block.taken_target, stack
        if block.kind is TerminatorKind.CALL:
            if len(stack) < 64:
                stack = stack + (block.fall_target,)
            return True, block.taken_target, stack
        if block.kind is TerminatorKind.RET:
            if stack:
                return True, stack[-1], stack[:-1]
            wild = stateless_hash(self._seed, block.block_id, step, 7) % len(self.program.blocks)
            return True, wild, stack
        if block.kind is TerminatorKind.FALL:
            return False, block.fall_target, stack
        raise ProgramError(f"unexpected terminator kind {block.kind}")

    # Wrong-path accesses scatter over the whole 1 MB region, not the
    # instruction's own working set: down a wrong path the address register
    # holds stale or garbage values, so speculative loads *pollute* the
    # caches (the paper's §3) instead of conveniently prefetching the lines
    # the true path is about to touch.
    _WRONG_PATH_SPAN = 0x10_0000

    def _wrong_data_address(self, static, step: int) -> int:
        region_base = 0x1000_0000 + static.mem_region * 0x10_0000
        offset = stateless_hash(self._seed, static.address, step) & (
            self._WRONG_PATH_SPAN - 1
        )
        return region_base + (offset & ~0x3)
