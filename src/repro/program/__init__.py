"""Synthetic programs: control-flow graphs with behavioural branch models.

A :class:`~repro.program.cfg.Program` is a set of basic blocks whose
conditional branches carry *behaviour models* (loops, biased branches,
patterns, correlated branches).  The :class:`~repro.program.walker.TruePathOracle`
lazily unrolls the architecturally correct dynamic instruction stream, while
:class:`~repro.program.walker.WrongPathNavigator` serves speculative fetch
down mispredicted paths without perturbing true-path state.
"""

from repro.program.behavior import (
    BiasedBehavior,
    BranchBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.program.cfg import BasicBlock, Program, TerminatorKind
from repro.program.generator import ProgramGenerator
from repro.program.walker import DynamicRecord, TruePathOracle, WrongPathNavigator

__all__ = [
    "BranchBehavior",
    "BiasedBehavior",
    "LoopBehavior",
    "PatternBehavior",
    "CorrelatedBehavior",
    "BasicBlock",
    "Program",
    "TerminatorKind",
    "ProgramGenerator",
    "TruePathOracle",
    "WrongPathNavigator",
    "DynamicRecord",
]
