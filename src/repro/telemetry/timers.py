"""Per-stage wall-time attribution (``profile_run.py --stage-timers``).

:class:`StageTimers` rebinds each stage component's ``tick`` on the
*instance* with a wrapper that accumulates wall seconds — the documented
extension point of the stage kernel (stage classes deliberately keep
``__dict__`` for exactly this; see ``SLOTS_ALLOWLIST`` in
``analysis/hotpath.py``).  Combined with the probe bus's active-cycle
counters it answers "which stage costs the time, and is it busy or just
ticking?" without cProfile's tracing overhead skewing the answer.

Attach before the run, read :meth:`StageTimers.report` after::

    processor = build_processor(cell)
    timers = StageTimers(processor).attach()
    processor.run(cell.instructions, warmup_instructions=cell.warmup)
    for name, seconds, calls in timers.report():
        ...
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.telemetry.clock import perf_time


class StageTimers:
    """Wall-seconds and call counts per stage of one processor."""

    def __init__(self, processor) -> None:
        self.processor = processor
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def attach(self) -> "StageTimers":
        """Wrap every stage's ``tick``; returns self for chaining."""
        for stage in self.processor.scheduler.stages:
            self._wrap(stage)
        return self

    def _wrap(self, stage) -> None:
        name = stage.name
        original = stage.tick
        self.seconds[name] = 0.0
        self.calls[name] = 0
        seconds = self.seconds
        calls = self.calls

        def timed_tick(cycle, activity):
            start = perf_time()
            original(cycle, activity)
            seconds[name] += perf_time() - start
            calls[name] += 1

        stage.tick = timed_tick

    def report(self) -> List[Tuple[str, float, int]]:
        """``(stage, wall seconds, tick calls)`` rows, slowest first."""
        rows = [
            (name, self.seconds[name], self.calls[name])
            for name in self.seconds
        ]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())
