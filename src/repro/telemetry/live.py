"""The live terminal view: progress events rendered to a stream.

A :class:`LiveView` is an event listener (see
:mod:`repro.telemetry.events`) that renders ``study-progress`` /
``study-complete`` events as the classic carriage-return progress line
on stderr.  The CLI's study command used to print these lines inline;
routing them through the bus means a ``--telemetry-out`` stream captures
the same progression as structured events while the terminal rendering
stays a pluggable consumer (stdout reports are untouched either way).
"""

from __future__ import annotations

from typing import Dict, TextIO


class LiveView:
    """Render progress events as an in-place terminal status line."""

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream

    def __call__(self, event: Dict) -> None:
        kind = event.get("event")
        if kind == "study-progress":
            self.stream.write(
                f"\r{event['study']}: {event['done']}/{event['total']} cells"
            )
            self.stream.flush()
        elif kind == "study-complete":
            self.stream.write(
                f"\r{event['study']}: {event['cells']} cells done\n"
            )
            self.stream.flush()
