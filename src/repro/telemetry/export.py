"""The ``repro-telemetry/1`` export layer: JSONL, summary, Prometheus.

One event stream, three renderings:

* **JSONL** — one canonical-JSON event per line (what ``--telemetry-out``
  writes and :func:`read_events` reads back);
* **deterministic text summary** — :func:`summarize` aggregates a stream
  into a stable report (no wall times, sorted keys), so two runs of the
  same cells summarize identically;
* **Prometheus-style text exposition** — :func:`to_prometheus` flattens
  every integer counter into ``repro_<path>_total`` lines a scraper (or
  :func:`parse_prometheus`) can consume.

:func:`validate_events` enforces the schema: envelope fields present,
schema string exact, event kind known, per-kind payload fields present
(the catalogue lives in :data:`repro.telemetry.events.EVENT_FIELDS`).
The CI telemetry smoke job and ``repro telemetry summary`` both gate on
an empty error list.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.telemetry.events import EVENT_FIELDS, SCHEMA

_ENVELOPE = ("schema", "event", "seq")


def write_events(events: Iterable[Dict], handle) -> int:
    """Write events as JSONL to ``handle``; returns the line count."""
    count = 0
    for event in events:
        handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        )
        count += 1
    return count


def read_events(path: str) -> List[Dict]:
    """Parse a JSONL event stream from ``path``.

    Raises ``ValueError`` naming the offending line when a line is not
    valid JSON — a truncated tail line is the common corruption.
    """
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as error:
                raise ValueError(
                    f"{path}:{number}: not a JSON event line ({error})"
                ) from None
    return events


def validate_events(events: Iterable[Dict]) -> List[str]:
    """Schema violations of a stream, one message each; empty = valid."""
    errors: List[str] = []
    for position, event in enumerate(events):
        where = f"event {position}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        for field in _ENVELOPE:
            if field not in event:
                errors.append(f"{where}: missing envelope field {field!r}")
        if event.get("schema") not in (None, SCHEMA):
            errors.append(
                f"{where}: schema {event['schema']!r} is not {SCHEMA!r}"
            )
        kind = event.get("event")
        if kind is None:
            continue
        required = EVENT_FIELDS.get(kind)
        if required is None:
            errors.append(f"{where}: unknown event kind {kind!r}")
            continue
        for field in required:
            if field not in event:
                errors.append(
                    f"{where} ({kind}): missing payload field {field!r}"
                )
    return errors


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

def _flatten(prefix: str, value, into: Dict[str, int]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, int):
        into[prefix] = into.get(prefix, 0) + value
    elif isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key),
                     value[key], into)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _flatten(f"{prefix}.{index}", item, into)


def counter_totals(events: Iterable[Dict]) -> Dict[str, int]:
    """Integer counters aggregated across a stream, keyed by dotted path.

    ``stage-counters`` events flatten their ``counters`` payload under
    ``stage_counters.`` (summed across cells — the per-run totals);
    ``cache`` events keep the *last* value per key (they are cumulative
    snapshots, not deltas); ``batch-complete`` events count batches and
    cells.
    """
    totals: Dict[str, int] = {}
    cache_last: Dict[str, int] = {}
    for event in events:
        kind = event.get("event")
        if kind == "stage-counters":
            _flatten("stage_counters", event.get("counters", {}), totals)
            totals["cells"] = totals.get("cells", 0) + 1
        elif kind == "cache":
            for key in ("hits", "misses", "stores", "evictions"):
                if key in event:
                    cache_last[f"cache.{key}"] = int(event[key])
        elif kind == "batch-complete":
            totals["batches"] = totals.get("batches", 0) + 1
            totals["batch_cells"] = (
                totals.get("batch_cells", 0) + int(event.get("cells", 0))
            )
    totals.update(cache_last)
    return totals


def top_counters(events: Iterable[Dict], limit: int = 10) -> List[Tuple[str, int]]:
    """The ``limit`` largest aggregated counters, value-descending
    (name-ascending on ties, so the ranking is deterministic)."""
    totals = counter_totals(events)
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:max(0, limit)]


# ----------------------------------------------------------------------
# Renderings
# ----------------------------------------------------------------------

def summarize(events: List[Dict]) -> str:
    """A deterministic text summary of a stream (sorted, no wall times)."""
    totals = counter_totals(events)
    kinds: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("event"))
        kinds[kind] = kinds.get(kind, 0) + 1
    lines = [f"telemetry stream: {len(events)} events ({SCHEMA})"]
    for kind in sorted(kinds):
        lines.append(f"  {kind:<16s} {kinds[kind]}")
    hits = totals.get("cache.hits")
    if hits is not None:
        misses = totals.get("cache.misses", 0)
        accesses = hits + misses
        rate = hits / accesses if accesses else 0.0
        lines.append(
            f"cache: {hits} hits / {misses} misses "
            f"({rate * 100:.1f}% hit rate)"
        )
    stage_keys = sorted(
        key for key in totals
        if key.startswith("stage_counters.stages.")
        and key.endswith(".instructions")
    )
    if stage_keys:
        lines.append(f"per-stage instructions ({totals.get('cells', 0)} cells):")
        for key in stage_keys:
            stage = key.split(".")[2]
            lines.append(f"  {stage:<10s} {totals[key]}")
    return "\n".join(lines)


def _metric_name(path: str) -> str:
    safe = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in path
    )
    return f"repro_{safe}_total"


def to_prometheus(events: Iterable[Dict]) -> str:
    """Prometheus-style text exposition of every aggregated counter."""
    totals = counter_totals(events)
    lines = [f"# {SCHEMA} text exposition"]
    for path in sorted(totals):
        lines.append(f"{_metric_name(path)} {totals[path]}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, int]:
    """Metric name -> value from :func:`to_prometheus` output."""
    metrics: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        metrics[name] = int(value)
    return metrics
