"""The sanctioned wall-clock reads of the telemetry layer.

Runtime telemetry (manifests, per-batch wall time, queue latency) is
the one part of the system that legitimately reads the wall clock from
code reachable from the simulation core.  Every such read funnels
through the two wrappers here, and only this module is allowlisted by
the determinism checker (``DET001`` in ``analysis/determinism.py``) —
the same precedent as ``ResultCache.info``/``prune``.  Wall times feed
*events only*: they never reach a simulation result, a fingerprint or a
cache entry, so bit-exact reproducibility is untouched.
"""

from __future__ import annotations

import time


def wall_time() -> float:
    """Seconds since the epoch (manifest and event timestamps)."""
    return time.time()


def perf_time() -> float:
    """A monotonic high-resolution timer (durations, never timestamps)."""
    return time.perf_counter()
