"""The process-local telemetry event sink.

Every telemetry producer — the engine's probe snapshots, the sweep
scheduler's batch/progress/cache events, the CLI's manifest — funnels
through one module-level :class:`TelemetrySink` via :func:`publish`.
The sink is inert by default: with no writer, no listeners and
buffering off, :func:`publish` returns immediately, so library code may
publish unconditionally and an unconfigured process pays (almost)
nothing.

Three consumers attach to it:

* a **writer** (any object with ``write``): each event is appended as
  one JSON line — the ``repro-telemetry/1`` stream behind
  ``--telemetry-out``;
* **listeners** (callables taking the event dict): the CLI's live
  terminal view renders study-progress events from here;
* a **buffer** (``configure(buffering=True)``): pool workers buffer
  events during a batch and :func:`drain` returns them to the parent,
  which republishes through its own sink (:func:`replay`), so worker
  telemetry reaches the parent's stream and listeners.

Events carry no timestamps of their own — producers that want wall
times pass them explicitly (see :mod:`repro.telemetry.clock`) — so the
sink itself stays deterministic and simulation-reachable code may
import it.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

SCHEMA = "repro-telemetry/1"

# Event kind -> payload fields every event of that kind must carry
# (beyond the envelope's schema/event/seq).  ``validate_events`` in the
# export module enforces this catalogue.
EVENT_FIELDS: Dict[str, tuple] = {
    "manifest": ("version",),
    "study-progress": ("study", "done", "total"),
    "study-complete": ("study", "cells"),
    "batch-plan": ("cells", "batches"),
    "batch-complete": ("cells", "wall_seconds"),
    "stage-counters": ("kind", "workload", "counters"),
    "cache": ("hits", "misses"),
    "summary": (),
}


class TelemetrySink:
    """One process's event fan-out point (see module docstring)."""

    def __init__(self) -> None:
        self.seq = 0
        self.writer = None
        self.listeners: List[Callable[[Dict], None]] = []
        self.buffering = False
        self.buffer: List[Dict] = []

    @property
    def active(self) -> bool:
        return (
            self.writer is not None or self.buffering or bool(self.listeners)
        )

    def emit(self, event: Dict) -> None:
        event["seq"] = self.seq
        self.seq += 1
        if self.writer is not None:
            self.writer.write(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        if self.buffering:
            self.buffer.append(event)
        for listener in self.listeners:
            listener(event)


_SINK = TelemetrySink()


def publish(kind: str, /, **fields) -> Optional[Dict]:
    """Publish one event; a no-op (returning None) when nothing listens.

    ``kind`` is positional-only so payload fields may themselves be
    named ``kind`` (stage-counters events tag the processor kind).
    """
    if not _SINK.active:
        return None
    event = {"schema": SCHEMA, "event": kind}
    event.update(fields)
    _SINK.emit(event)
    return event


def replay(events: List[Dict]) -> None:
    """Republish events drained from another process's sink.

    The parent's sink restamps ``seq``, so the combined stream stays
    monotonic whatever order worker batches complete in.
    """
    if not _SINK.active:
        return
    for event in events:
        _SINK.emit(dict(event))


def configure(
    writer=None,
    listener: Optional[Callable[[Dict], None]] = None,
    buffering: Optional[bool] = None,
) -> None:
    """Attach consumers to this process's sink.

    ``writer=None`` leaves the current writer; pass ``listener`` to
    append a listener and ``buffering`` to switch the drain buffer on
    or off.  Use :func:`reset` to detach everything.
    """
    if writer is not None:
        _SINK.writer = writer
    if listener is not None:
        _SINK.listeners.append(listener)
    if buffering is not None:
        _SINK.buffering = buffering


def worker_mode() -> None:
    """Switch this process's sink to buffer-only transport.

    Called by the pool work function at every batch start: a *forked*
    worker inherits the parent's sink — writer handle, live-view
    listeners and all — and writing from both processes would interleave
    and duplicate the stream.  Buffer-only mode makes the worker's
    events reach the parent exclusively via :func:`drain` + the parent's
    :func:`replay`.  The buffer is cleared as well: events the parent had
    buffered-but-not-drained at fork time would otherwise ride along in
    every worker's drain and be replayed once per batch.
    """
    _SINK.writer = None
    _SINK.listeners = []
    _SINK.buffering = True
    _SINK.buffer = []


def drain() -> List[Dict]:
    """Return and clear the buffered events (worker -> parent transport)."""
    events = _SINK.buffer
    _SINK.buffer = []
    return events


def reset() -> None:
    """Detach every consumer, clear the buffer, restart the sequence
    numbering (tests, CLI teardown)."""
    _SINK.writer = None
    _SINK.listeners = []
    _SINK.buffering = False
    _SINK.buffer = []
    _SINK.seq = 0


def enabled() -> bool:
    """Whether any consumer is attached to this process's sink."""
    return _SINK.active
