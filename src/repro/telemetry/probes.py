"""The probe bus: per-stage, per-cycle counters on the stage kernel.

A :class:`ProbeBus` is attached to the kernel by
``Processor._finish_threads`` when ``config.telemetry`` is set, and the
kernel then steps through ``CycleScheduler.step_instrumented`` — the
same construction-time dispatch the sanitizer uses, so the plain
``step`` carries no telemetry branch and an uninstrumented run pays
nothing (the 38 golden fingerprints are the proof).

The bus never touches simulation state: it *samples* occupancy at the
top of the cycle (:meth:`ProbeBus.begin_cycle`) and *differences* the
kernel's own :class:`~repro.pipeline.stats.SimStats` counters at the
bottom (:meth:`ProbeBus.end_cycle`).  Each ``SimStats`` counter is
written by exactly one stage, so the per-cycle deltas attribute cleanly:

===============  =====================================================
stage group      counters (per measured window)
===============  =====================================================
fetch            instructions, wrong-path instructions, active cycles,
                 icache/redirect/throttle stall cycles
decode           instructions, active cycles, throttle stall cycles
rename           instructions, active cycles
issue            instructions, wrong-path instructions, active cycles,
                 selection-blocked events
writeback        completion-bucket drains, active cycles,
                 squashed instructions, squash recoveries
commit           instructions, active cycles
occupancy        per-cycle sums of ROB/IQ/LSQ and the two front-end
                 latches (divide by ``cycles`` for mean residency)
throttle         per-cycle residency of the effective fetch bandwidth
                 level (FULL/HALF/QUARTER/STALL) summed over threads
threads          per-thread committed/fetched/wrong-path/squashed plus
                 a per-thread ROB occupancy sum (the SMT split)
skip             cycles covered by the scheduler's next-event
                 fast-forward, window count, and a power-of-two
                 window-length histogram
===============  =====================================================

Counters cover the *measured* window: ``Processor.reset_measurement``
resets the bus together with the statistics, so probe totals reconcile
exactly against the final ``SimStats`` (tests assert equality).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.levels import BandwidthLevel
from repro.core.throttler import SelectiveThrottler

_LEVEL_NAMES = tuple(level.name for level in BandwidthLevel)


class ProbeBus:
    """Per-cycle counter groups for one kernel (see module docstring).

    Slotted like the rest of the per-cycle machinery: when telemetry is
    on the bus runs twice per cycle, and plain-slot increments keep the
    instrumented-run overhead proportional to what it measures.
    """

    __slots__ = (
        "kernel", "nthreads", "_throttlers", "_unthrottled",
        "cycles",
        # Occupancy residency (per-cycle sums).
        "rob_occupancy_sum", "iq_occupancy_sum", "lsq_occupancy_sum",
        "fetch_latch_sum", "decode_latch_sum",
        # Throttle-level residency: index = BandwidthLevel value.
        "throttle_residency",
        # Per-thread ROB occupancy sums (index = thread id).
        "thread_rob_sum",
        # Cycle-skip fast-forward accounting (next-event engine).
        "skipped_cycles", "skip_windows", "skip_length_hist",
        # Writeback volume sampled before the stage drains its bucket.
        "_pending_writebacks", "writeback_drained", "writeback_active_cycles",
        # Stage instruction counters and active-cycle counters.
        "fetched", "fetched_wrong_path", "fetch_active_cycles",
        "icache_stall_cycles", "redirect_stall_cycles",
        "fetch_throttled_cycles",
        "decoded", "decode_active_cycles", "decode_throttled_cycles",
        "renamed", "rename_active_cycles",
        "issued", "issued_wrong_path", "issue_active_cycles",
        "selection_blocked",
        "committed", "commit_active_cycles",
        "squashed_instructions", "squash_recoveries",
        # Last-seen SimStats values the per-cycle deltas difference against.
        "_last_fetched", "_last_fetched_wp", "_last_icache",
        "_last_redirect", "_last_fetch_throttled",
        "_last_decoded", "_last_decode_throttled", "_last_renamed",
        "_last_issued", "_last_issued_wp", "_last_selection_blocked",
        "_last_committed", "_last_squashed", "_last_squashes",
    )

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.nthreads = len(kernel.threads)
        # Threads driven by a SelectiveThrottler expose their effective
        # fetch bandwidth level; every other controller (baseline,
        # gating, oracle) fetches at FULL whenever it fetches at all.
        self._throttlers = [
            thread.controller
            for thread in kernel.threads
            if isinstance(thread.controller, SelectiveThrottler)
        ]
        self._unthrottled = self.nthreads - len(self._throttlers)
        self.reset()

    # ------------------------------------------------------------------
    # The per-cycle sampling API (called by step_instrumented)
    # ------------------------------------------------------------------

    def begin_cycle(self, kernel, cycle: int) -> None:
        """Sample occupancy and pending writeback volume at cycle top."""
        self.cycles += 1
        self.rob_occupancy_sum += kernel.rob_count
        self.iq_occupancy_sum += kernel.iq_count
        self.lsq_occupancy_sum += kernel.lsq_count
        # Writeback volume must be read before the writeback stage drains
        # this cycle's completion bucket (``pending_at`` is the shared
        # probe API of the completion wheel and the object kernel's
        # bucket latch).
        self._pending_writebacks = kernel.completions.pending_at(cycle)
        thread_rob = self.thread_rob_sum
        for index, thread in enumerate(kernel.threads):
            self.fetch_latch_sum += len(thread.fetch_entries)
            self.decode_latch_sum += len(thread.decode_entries)
            thread_rob[index] += len(thread.rob_entries)
        residency = self.throttle_residency
        for controller in self._throttlers:
            residency[controller._fetch_level] += 1
        residency[0] += self._unthrottled

    def end_cycle(self, kernel) -> None:
        """Difference the kernel's statistics counters at cycle bottom."""
        stats = kernel.stats

        value = stats.fetched
        delta = value - self._last_fetched
        if delta:
            self.fetched += delta
            self.fetch_active_cycles += 1
            self._last_fetched = value
        value = stats.fetched_wrong_path
        delta = value - self._last_fetched_wp
        if delta:
            self.fetched_wrong_path += delta
            self._last_fetched_wp = value
        value = stats.icache_stall_cycles
        delta = value - self._last_icache
        if delta:
            self.icache_stall_cycles += delta
            self._last_icache = value
        value = stats.redirect_stall_cycles
        delta = value - self._last_redirect
        if delta:
            self.redirect_stall_cycles += delta
            self._last_redirect = value
        value = stats.fetch_throttled_cycles
        delta = value - self._last_fetch_throttled
        if delta:
            self.fetch_throttled_cycles += delta
            self._last_fetch_throttled = value

        value = stats.decoded
        delta = value - self._last_decoded
        if delta:
            self.decoded += delta
            self.decode_active_cycles += 1
            self._last_decoded = value
        value = stats.decode_throttled_cycles
        delta = value - self._last_decode_throttled
        if delta:
            self.decode_throttled_cycles += delta
            self._last_decode_throttled = value
        value = stats.renamed
        delta = value - self._last_renamed
        if delta:
            self.renamed += delta
            self.rename_active_cycles += 1
            self._last_renamed = value

        value = stats.issued
        delta = value - self._last_issued
        if delta:
            self.issued += delta
            self.issue_active_cycles += 1
            self._last_issued = value
        value = stats.issued_wrong_path
        delta = value - self._last_issued_wp
        if delta:
            self.issued_wrong_path += delta
            self._last_issued_wp = value
        value = stats.selection_blocked
        delta = value - self._last_selection_blocked
        if delta:
            self.selection_blocked += delta
            self._last_selection_blocked = value

        pending = self._pending_writebacks
        if pending:
            self.writeback_drained += pending
            self.writeback_active_cycles += 1
        value = stats.squashed
        delta = value - self._last_squashed
        if delta:
            self.squashed_instructions += delta
            self._last_squashed = value
        value = stats.squashes
        delta = value - self._last_squashes
        if delta:
            self.squash_recoveries += delta
            self._last_squashes = value

        value = stats.committed
        delta = value - self._last_committed
        if delta:
            self.committed += delta
            self.commit_active_cycles += 1
            self._last_committed = value

    def idle_cycles(self, kernel, count: int) -> None:
        """Account a fast-forwarded window of provably idle cycles.

        The scheduler's next-event engine only fires when every
        per-cycle sample is constant across the window — latches empty,
        nothing pending in the completion wheel, occupancies and
        throttle levels frozen (no stage runs, so no controller hook
        fires) — so the bus takes each sample once and scales it by
        ``count``.  The scheduler has already closed the window's
        stall/throttle statistics in batch before calling here, so the
        two fetch idle-regime counters are folded in by *differencing*
        against their last-seen values — exactly the ``end_cycle``
        bookkeeping, valid for any mix of redirect-stalled and
        fetch-gated cycles (and a no-op on SMT windows, where an idle
        cycle picks no thread and moves no machine-level counter) — so
        a run ending on a skip still reconciles.  The window also feeds
        the skip telemetry: total skipped cycles, window count, and a
        power-of-two window-length histogram.
        """
        self.cycles += count
        self.skipped_cycles += count
        self.skip_windows += 1
        bucket = 1 << (count.bit_length() - 1)
        hist = self.skip_length_hist
        hist[bucket] = hist.get(bucket, 0) + 1
        self.rob_occupancy_sum += kernel.rob_count * count
        self.iq_occupancy_sum += kernel.iq_count * count
        self.lsq_occupancy_sum += kernel.lsq_count * count
        thread_rob = self.thread_rob_sum
        for index, thread in enumerate(kernel.threads):
            thread_rob[index] += len(thread.rob_entries) * count
        residency = self.throttle_residency
        for controller in self._throttlers:
            residency[controller._fetch_level] += count
        residency[0] += self._unthrottled * count
        stats = kernel.stats
        value = stats.redirect_stall_cycles
        delta = value - self._last_redirect
        if delta:
            self.redirect_stall_cycles += delta
            self._last_redirect = value
        value = stats.fetch_throttled_cycles
        delta = value - self._last_fetch_throttled
        if delta:
            self.fetch_throttled_cycles += delta
            self._last_fetch_throttled = value

    # ------------------------------------------------------------------
    # Lifecycle and export
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter; called when the measured window opens.

        ``Processor.reset_measurement`` rebinds ``kernel.stats`` to a
        fresh :class:`SimStats`, so the last-seen values reset to zero
        with everything else and the next delta starts clean.
        """
        self.cycles = 0
        self.rob_occupancy_sum = 0
        self.iq_occupancy_sum = 0
        self.lsq_occupancy_sum = 0
        self.fetch_latch_sum = 0
        self.decode_latch_sum = 0
        self.throttle_residency = [0] * len(_LEVEL_NAMES)
        self.thread_rob_sum = [0] * self.nthreads
        self.skipped_cycles = 0
        self.skip_windows = 0
        self.skip_length_hist = {}
        self._pending_writebacks = 0
        self.writeback_drained = 0
        self.writeback_active_cycles = 0
        self.fetched = 0
        self.fetched_wrong_path = 0
        self.fetch_active_cycles = 0
        self.icache_stall_cycles = 0
        self.redirect_stall_cycles = 0
        self.fetch_throttled_cycles = 0
        self.decoded = 0
        self.decode_active_cycles = 0
        self.decode_throttled_cycles = 0
        self.renamed = 0
        self.rename_active_cycles = 0
        self.issued = 0
        self.issued_wrong_path = 0
        self.issue_active_cycles = 0
        self.selection_blocked = 0
        self.committed = 0
        self.commit_active_cycles = 0
        self.squashed_instructions = 0
        self.squash_recoveries = 0
        self._last_fetched = 0
        self._last_fetched_wp = 0
        self._last_icache = 0
        self._last_redirect = 0
        self._last_fetch_throttled = 0
        self._last_decoded = 0
        self._last_decode_throttled = 0
        self._last_renamed = 0
        self._last_issued = 0
        self._last_issued_wp = 0
        self._last_selection_blocked = 0
        self._last_committed = 0
        self._last_squashed = 0
        self._last_squashes = 0

    def snapshot(self) -> Dict:
        """A JSON-safe dict of every counter group (integer sums only,
        so a snapshot is exactly reproducible run to run)."""
        threads: List[Dict] = []
        for index, thread in enumerate(self.kernel.threads):
            threads.append({
                "thread": index,
                "committed": thread.committed,
                "fetched": thread.fetched,
                "fetched_wrong_path": thread.fetched_wrong_path,
                "squashed": thread.squashed,
                "rob_occupancy_sum": self.thread_rob_sum[index],
            })
        return {
            "cycles": self.cycles,
            "stages": {
                "fetch": {
                    "instructions": self.fetched,
                    "wrong_path": self.fetched_wrong_path,
                    "active_cycles": self.fetch_active_cycles,
                    "stall_icache": self.icache_stall_cycles,
                    "stall_redirect": self.redirect_stall_cycles,
                    "stall_throttle": self.fetch_throttled_cycles,
                },
                "decode": {
                    "instructions": self.decoded,
                    "active_cycles": self.decode_active_cycles,
                    "stall_throttle": self.decode_throttled_cycles,
                },
                "rename": {
                    "instructions": self.renamed,
                    "active_cycles": self.rename_active_cycles,
                },
                "issue": {
                    "instructions": self.issued,
                    "wrong_path": self.issued_wrong_path,
                    "active_cycles": self.issue_active_cycles,
                    "selection_blocked": self.selection_blocked,
                },
                "writeback": {
                    "instructions": self.writeback_drained,
                    "active_cycles": self.writeback_active_cycles,
                    "squashed": self.squashed_instructions,
                    "recoveries": self.squash_recoveries,
                },
                "commit": {
                    "instructions": self.committed,
                    "active_cycles": self.commit_active_cycles,
                },
            },
            "occupancy": {
                "rob_sum": self.rob_occupancy_sum,
                "iq_sum": self.iq_occupancy_sum,
                "lsq_sum": self.lsq_occupancy_sum,
                "fetch_latch_sum": self.fetch_latch_sum,
                "decode_latch_sum": self.decode_latch_sum,
            },
            "throttle_residency": {
                name: self.throttle_residency[index]
                for index, name in enumerate(_LEVEL_NAMES)
            },
            "skip": {
                "skipped_cycles": self.skipped_cycles,
                "windows": self.skip_windows,
                # Window lengths bucketed by power of two (key = bucket
                # lower bound); JSON object keys must be strings.
                "length_hist": {
                    str(bucket): self.skip_length_hist[bucket]
                    for bucket in sorted(self.skip_length_hist)
                },
            },
            "threads": threads,
        }
