"""Telemetry: the probe bus, runtime metrics and the export layer.

Three layers, one package:

* :mod:`repro.telemetry.probes` — the **probe bus**: per-stage, per-cycle
  counter groups sampled by ``CycleScheduler.step_instrumented``.  Like
  the sanitizer, instrumentation is chosen once at construction time
  (``Processor._finish_threads``): a run without ``config.telemetry``
  steps through the plain ``step`` and pays nothing, and an instrumented
  run is bit-identical in every simulation result (the ``telemetry``
  config field is excluded from cache fingerprints).
* :mod:`repro.telemetry.events` — the process-local event sink every
  layer publishes through: probe snapshots from the engine, batch and
  progress events from the sweep scheduler, cache statistics, manifests.
* :mod:`repro.telemetry.export` — the ``repro-telemetry/1`` JSONL event
  schema, the deterministic text summary and the Prometheus-style text
  exposition behind ``repro telemetry summary|export|top``.

Support modules: :mod:`repro.telemetry.clock` (the only sanctioned
wall-clock reads — see ``analysis/determinism.py``),
:mod:`repro.telemetry.live` (the stderr live view for long study runs),
:mod:`repro.telemetry.runtime` (per-run manifests) and
:mod:`repro.telemetry.timers` (per-stage wall-time attribution for
``tools/profile_run.py --stage-timers``).

Simulation-reachable modules import the submodules directly (never this
package root), so the determinism checker's reachability set stays
exactly as tight as what the kernel actually uses.
"""

from repro.telemetry.events import SCHEMA, configure, drain, publish, reset
from repro.telemetry.export import (
    counter_totals,
    read_events,
    summarize,
    to_prometheus,
    top_counters,
    validate_events,
    write_events,
)
from repro.telemetry.live import LiveView
from repro.telemetry.probes import ProbeBus
from repro.telemetry.runtime import build_manifest
from repro.telemetry.timers import StageTimers

__all__ = [
    "SCHEMA",
    "LiveView",
    "ProbeBus",
    "StageTimers",
    "build_manifest",
    "configure",
    "counter_totals",
    "drain",
    "publish",
    "read_events",
    "reset",
    "summarize",
    "to_prometheus",
    "top_counters",
    "validate_events",
    "write_events",
]
