"""Per-run manifests: what ran, under which code and configuration.

A manifest is the first event of a ``--telemetry-out`` stream: the
package version, the Python runtime, a digest of the effective
baseline configuration (the same result-relevant field set the cache
fingerprints hash, so two manifests with equal digests describe
comparable simulations), the command and its knobs, and a wall-clock
start stamp (via :mod:`repro.telemetry.clock` — events only, never
results).
"""

from __future__ import annotations

import hashlib
import json
import platform
from typing import Dict, Optional, Sequence

from repro.telemetry.clock import wall_time


def config_digest() -> str:
    """SHA-256 over the baseline config's result-relevant fields."""
    from repro.experiments.engine import _config_items
    from repro.pipeline.config import table3_config

    canonical = json.dumps(
        dict(_config_items(table3_config())),
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_manifest(
    command: str,
    studies: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    instructions: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict:
    """The payload of a ``manifest`` event (see module docstring)."""
    from repro import __version__

    manifest: Dict = {
        "version": __version__,
        "python": platform.python_version(),
        "config_digest": config_digest(),
        "command": command,
        "started_unix": round(wall_time(), 3),
    }
    if studies:
        manifest["studies"] = list(studies)
    if jobs is not None:
        manifest["jobs"] = jobs
    if cache_dir:
        manifest["cache_dir"] = cache_dir
    if instructions is not None:
        manifest["instructions"] = instructions
    if warmup is not None:
        manifest["warmup"] = warmup
    return manifest
