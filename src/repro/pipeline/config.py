"""Processor configuration (the paper's Table 3 plus sweep knobs).

The baseline is an 8-wide out-of-order core with a 14-stage pipeline
(fetch to commit), IBM Power4-style.  Pipeline depth is swept in §5.3.1 by
changing the number of in-order front-end stages and, at the deep end,
the execution and L1 D-cache latencies; :func:`ProcessorConfig.with_depth`
implements that recipe.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

# Back-end stages that always exist: issue, execute, writeback, commit.
_BACKEND_STAGES = 4


def _sanitize_default() -> bool:
    """Default of ``ProcessorConfig.sanitize``: the REPRO_SANITIZE env var.

    The env var (set by the CLI's ``--sanitize`` flag) rather than a plain
    ``False`` default so process-pool workers, which rebuild configs from
    specs, inherit sanitize mode from the parent process.
    """
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def _telemetry_default() -> bool:
    """Default of ``ProcessorConfig.telemetry``: the REPRO_TELEMETRY env
    var, for the same worker-inheritance reason as ``REPRO_SANITIZE``."""
    return os.environ.get("REPRO_TELEMETRY", "") not in ("", "0")


def _cycle_skip_default() -> bool:
    """Default of ``ProcessorConfig.cycle_skip``: on unless REPRO_CYCLE_SKIP
    is set to 0 (the skip-on/skip-off A/B needs both sides in one process;
    env-var based for the same worker-inheritance reason as the others)."""
    return os.environ.get("REPRO_CYCLE_SKIP", "") not in ("0",)


def _run_batch_default() -> bool:
    """Default of ``ProcessorConfig.run_batch``: on unless REPRO_RUN_BATCH
    is set to 0 (the batched/per-instruction A/B needs both sides in one
    process; env-var based for the same worker-inheritance reason as the
    others)."""
    return os.environ.get("REPRO_RUN_BATCH", "") not in ("0",)


def _kernel_default() -> str:
    """Default of ``ProcessorConfig.kernel``: the REPRO_KERNEL env var.

    ``array`` (the default) selects the array-backed stage kernel;
    ``object`` selects the pinned pre-array snapshot
    (:mod:`repro.pipeline.stages.objectkernel`).  Env-var based for the
    same worker-inheritance reason as ``REPRO_SANITIZE``.
    """
    return os.environ.get("REPRO_KERNEL", "") or "array"


@dataclass
class ProcessorConfig:
    """All microarchitectural parameters of the simulated processor."""

    # Widths (Table 3: up to 8 instructions per cycle everywhere).
    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    max_taken_branches_per_cycle: int = 2

    # Pipeline geometry.
    pipeline_depth: int = 14
    redirect_penalty: int = 2  # Table 3: 2 cycles of misprediction penalty

    # Windows.
    rob_size: int = 128
    iq_size: int = 64
    lsq_size: int = 64
    # In-flight capacity of the in-order front-end pipes (fetch + decode).
    # 0 means auto: scale with the front-end depth so a deep pipeline can
    # keep fetching at full width while instructions traverse it — a fixed
    # buffer would silently throttle exactly the deep configurations the
    # paper's Figure 6 sweeps.
    fetch_buffer_size: int = 0

    # Functional units (Table 3).
    int_alu: int = 8
    int_mult: int = 2
    mem_ports: int = 2
    fp_alu: int = 8
    fp_mult: int = 1
    # Miss-status registers: outstanding cache misses the memory system
    # tracks; a fill holds its entry until it returns, squash or not.
    mshr_count: int = 8

    # Extra execution latency (deep-pipeline sweeps add cycles here).
    extra_exec_latency: int = 0
    extra_dcache_latency: int = 0

    # Branch prediction.
    bpred_kind: str = "gshare"  # gshare | bimodal | local2level | hybrid | static
    bpred_size_kb: int = 8
    btb_entries: int = 1024
    btb_ways: int = 2
    ras_depth: int = 32

    # Confidence estimation.
    confidence_kind: str = "bpru"  # bpru | jrs | perfect | none
    confidence_size_kb: int = 8
    jrs_threshold: int = 12

    # Memory hierarchy (Table 3).
    icache_kb: int = 64
    dcache_kb: int = 64
    l1_ways: int = 2
    l2_kb: int = 512
    l2_ways: int = 4
    line_bytes: int = 32
    l1_latency: int = 1
    l2_latency: int = 6
    memory_latency: int = 18
    tlb_entries: int = 128

    # Technology (Table 3: 0.18um, 2.0 V, 1200 MHz).
    frequency_hz: float = 1.2e9

    # Debug: compile pipeline invariant checks into the stage kernel
    # (see repro/pipeline/sanitizer.py).  Never affects results — a
    # sanitized run either produces bit-identical output or raises
    # SanitizerError — so it is excluded from cache fingerprints.
    sanitize: bool = field(default_factory=_sanitize_default)

    # Observability: attach the per-cycle probe bus to the stage kernel
    # (see repro/telemetry/probes.py).  Never affects results — an
    # instrumented run is bit-identical, counters are sampled off the
    # kernel's own statistics — so it is excluded from cache fingerprints.
    telemetry: bool = field(default_factory=_telemetry_default)

    # Stage-kernel representation: "array" (flat latch/completion arrays,
    # cycle-skip fast-forward) or "object" (the pinned pre-array snapshot
    # in repro/pipeline/stages/objectkernel.py).  Never affects results —
    # the kernels are bit-identical (tests/test_kernel_equivalence.py and
    # the 38 golden fingerprints enforce it) — so it is excluded from
    # cache fingerprints like sanitize/telemetry.
    kernel: str = field(default_factory=_kernel_default)

    # Cycle-skip fast-forward (array kernel's next-event engine).  Never
    # affects results — a fast-forwarded run is bit-identical to a
    # stepped one (the kernel-equivalence property and the 38 goldens
    # enforce it) — so it is excluded from cache fingerprints.  Off
    # (REPRO_CYCLE_SKIP=0) exists for the skip-on/skip-off benchmark A/B
    # and for bisecting a suspected skip bug.
    cycle_skip: bool = field(default_factory=_cycle_skip_default)

    # Run-batched front end (array kernel): fetch, rename and commit
    # consume whole precompiled packet runs instead of one instruction
    # at a time.  Never affects results — a batched run is bit-identical
    # to the per-instruction path (the 38 goldens and the
    # kernel-equivalence property enforce it) — so it is excluded from
    # cache fingerprints.  Off (REPRO_RUN_BATCH=0) exists for the
    # batched/per-instruction benchmark A/B and the CI fallback smoke.
    run_batch: bool = field(default_factory=_run_batch_default)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ConfigurationError on inconsistent parameters."""
        if self.pipeline_depth < _BACKEND_STAGES + 2:
            raise ConfigurationError(
                f"pipeline depth must be >= {_BACKEND_STAGES + 2}, "
                f"got {self.pipeline_depth}"
            )
        for name in (
            "fetch_width", "decode_width", "issue_width", "commit_width",
            "rob_size", "iq_size", "lsq_size",
            "int_alu", "int_mult", "mem_ports", "fp_alu", "fp_mult",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.fetch_buffer_size < 0:
            raise ConfigurationError("fetch_buffer_size must be >= 0 (0 = auto)")
        if self.mshr_count <= 0:
            raise ConfigurationError("mshr_count must be positive")
        if self.redirect_penalty < 0:
            raise ConfigurationError("redirect penalty must be non-negative")
        if self.extra_exec_latency < 0 or self.extra_dcache_latency < 0:
            raise ConfigurationError("extra latencies must be non-negative")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.kernel not in ("array", "object"):
            raise ConfigurationError(
                f"kernel must be 'array' or 'object', got {self.kernel!r}"
            )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def front_end_stages(self) -> int:
        """In-order stages from fetch to rename (inclusive of decode)."""
        return self.pipeline_depth - _BACKEND_STAGES

    @property
    def fetch_to_decode_latency(self) -> int:
        """Cycles an instruction spends between fetch and the decode gate."""
        return max(1, self.front_end_stages // 2)

    @property
    def decode_to_rename_latency(self) -> int:
        """Cycles between passing decode and reaching rename/dispatch."""
        return max(1, self.front_end_stages - self.fetch_to_decode_latency)

    @property
    def effective_fetch_buffer(self) -> int:
        """Front-end in-flight capacity (auto-scaled with depth when 0)."""
        if self.fetch_buffer_size:
            return self.fetch_buffer_size
        return self.fetch_width * (self.front_end_stages + 2)

    def with_depth(self, depth: int) -> "ProcessorConfig":
        """Return a copy at a different pipeline depth (paper §5.3.1).

        Depths beyond the 14-stage baseline also lengthen execution and the
        L1 D-cache pipe, one extra cycle per ~6 added stages, matching the
        paper's description of how the deep configurations were built.
        """
        extra = max(0, (depth - 14) // 6)
        return replace(
            self,
            pipeline_depth=depth,
            extra_exec_latency=extra,
            extra_dcache_latency=extra,
        )

    def with_table_sizes(self, total_kb: int) -> "ProcessorConfig":
        """Split a total budget between predictor and estimator (Fig. 7).

        The paper's size sweep compares equal total sizes, half to the
        branch predictor and half to the confidence estimator.
        """
        if total_kb < 2 or total_kb % 2:
            raise ConfigurationError("total size must be an even number of KB >= 2")
        return replace(
            self,
            bpred_size_kb=total_kb // 2,
            confidence_size_kb=total_kb // 2,
        )


def table3_config() -> ProcessorConfig:
    """The paper's baseline configuration (Table 3, 14-stage pipeline)."""
    return ProcessorConfig()
