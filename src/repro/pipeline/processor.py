"""The cycle-level out-of-order processor.

One :class:`Processor` couples a synthetic program to the Table-3
microarchitecture and a speculation controller (baseline, Selective
Throttling, Pipeline Gating or an oracle).  Each cycle runs the stages in
reverse pipeline order::

    commit -> writeback/resolve -> issue/select -> rename/dispatch
           -> decode -> fetch -> power accounting

**Wrong-path execution is real**: the front-end walks the program CFG along
its *predictions*; a misprediction sends it down the wrong target, fetching,
decoding and executing real wrong-path code until the branch resolves at
execute, squashes younger instructions and redirects fetch.  Squashed
instructions carry their per-unit access tallies into the power model's
wasted pool — that is what reproduces the paper's Table 1.

**Hardware threads.** All per-thread state — the front-end cursors, the
branch predictor, confidence estimator, BTB, RAS, the in-order pipes, and
the thread's back-end partition (ROB/IQ/LSQ/renamer) — lives in a
:class:`ThreadContext`.  The :class:`Processor` drives a list of contexts
sharing the functional units, memory hierarchy, power model and cycle
counter; the classic single-program constructor builds exactly one context,
so the baseline machine is the one-thread special case of the same code
path.  :class:`repro.smt.core.SmtProcessor` instantiates several contexts
plus a fetch policy to model an SMT core.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.bpred.base import BranchPredictor
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.gshare import GSharePredictor
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.perceptron import PerceptronPredictor
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.static import StaticPredictor
from repro.bpred.twolevel import LocalTwoLevelPredictor
from repro.confidence.base import ConfidenceEstimator
from repro.confidence.bpru import BPRUEstimator
from repro.confidence.jrs import JRSEstimator
from repro.confidence.perfect import PerfectEstimator
from repro.confidence.selfconf import (
    CounterConfidenceEstimator,
    PerceptronConfidenceEstimator,
)
from repro.core.throttler import NullController, SpeculationController
from repro.errors import ConfigurationError, SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.iq import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.renamer import RegisterRenamer
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.stats import SimStats
from repro.power.model import ClockGatingStyle, PowerModel
from repro.power.units import PowerUnit, UnitPowerTable
from repro.program.cfg import Program
from repro.program.walker import TruePathOracle, WrongPathNavigator

_ICACHE = int(PowerUnit.ICACHE)
_BPRED = int(PowerUnit.BPRED)
_REGFILE = int(PowerUnit.REGFILE)
_RENAME = int(PowerUnit.RENAME)
_WINDOW = int(PowerUnit.WINDOW)
_LSQ = int(PowerUnit.LSQ)
_ALU = int(PowerUnit.ALU)
_DCACHE = int(PowerUnit.DCACHE)
_DCACHE2 = int(PowerUnit.DCACHE2)
_RESULTBUS = int(PowerUnit.RESULTBUS)

# Address-space separation between hardware threads: programs are generated
# over the same synthetic address ranges, so each thread's code and data are
# offset into a private region — two threads must contend for cache sets,
# never alias onto the same lines.  The stride carries a line-aligned,
# non-power-of-2 skew: a pure power-of-2 stride is a multiple of every
# cache's way size, which would map all threads' hottest lines onto the
# same sets and thrash an N>ways mix before a single instruction commits.
# Thread 0's offset is zero, keeping the single-thread machine
# bit-identical to the pre-SMT model.
THREAD_ADDRESS_STRIDE = 0x4000_0000 + 0x2480


def build_predictor(config: ProcessorConfig) -> BranchPredictor:
    """Instantiate the direction predictor named by the configuration."""
    kind = config.bpred_kind
    if kind == "gshare":
        return GSharePredictor(config.bpred_size_kb)
    if kind == "bimodal":
        return BimodalPredictor(config.bpred_size_kb)
    if kind == "local2level":
        return LocalTwoLevelPredictor()
    if kind == "hybrid":
        return HybridPredictor(config.bpred_size_kb)
    if kind == "perceptron":
        return PerceptronPredictor(config.bpred_size_kb)
    if kind == "static":
        return StaticPredictor()
    raise ConfigurationError(f"unknown predictor kind {kind!r}")


def build_estimator(config: ProcessorConfig) -> Optional[ConfidenceEstimator]:
    """Instantiate the confidence estimator named by the configuration."""
    kind = config.confidence_kind
    if kind == "bpru":
        return BPRUEstimator(config.confidence_size_kb)
    if kind == "jrs":
        return JRSEstimator(config.confidence_size_kb, config.jrs_threshold)
    if kind == "perfect":
        return PerfectEstimator()
    if kind == "perceptron-self":
        return PerceptronConfidenceEstimator()
    if kind == "counter-self":
        return CounterConfidenceEstimator()
    if kind == "none":
        return None
    raise ConfigurationError(f"unknown confidence kind {kind!r}")


class ThreadContext:
    """Everything one hardware thread owns.

    Front-end: program, prediction structures, fetch cursors and the two
    in-order pipes.  Back-end partition: renamer, ROB, IQ and LSQ (each
    thread commits in its own program order and recovers its own branch
    mispredictions, so these are private; capacity sharing across threads
    is enforced by the processor when configured).  The per-thread counters
    feed the SMT fairness/throughput metrics and reset with the measured
    window.
    """

    def __init__(
        self,
        thread_id: int,
        config: ProcessorConfig,
        program: Program,
        controller: SpeculationController,
        seed: int,
        rob_size: int,
        iq_size: int,
        lsq_size: int,
        fetch_buffer: int,
    ) -> None:
        self.thread_id = thread_id
        self.program = program
        self.controller = controller
        self.seed = seed
        self.mem_offset = thread_id * THREAD_ADDRESS_STRIDE

        self.bpred = build_predictor(config)
        self.confidence = build_estimator(config)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.oracle = TruePathOracle(program, seed)
        self.navigator = WrongPathNavigator(program, seed)

        # Fetch state.
        self.fetch_mode = "true"
        self.true_index = 0
        self.wp_cursor = None
        self.wp_salt = 0
        self.fetch_stall_until = 0
        self.unresolved_mispredicts = 0
        self.fetch_buffer = fetch_buffer

        # In-order front-end pipes: deques of (ready_cycle, instruction).
        self.fetch_pipe = deque()
        self.decode_pipe = deque()

        # Back-end partition.
        self.renamer = RegisterRenamer()
        self.rob = ReorderBuffer(rob_size)
        self.iq = IssueQueue(iq_size)
        self.lsq = LoadStoreQueue(lsq_size)

        self.last_committed_true_index = 0
        self.commits_since_prune = 0

        # Fetch-gating signal: conditional branches in flight whose
        # confidence label was low (LC/VLC).  SMT fetch policies read it.
        self.lowconf_inflight = 0

        # Measured-window counters (reset with the measurement window).
        self.committed = 0
        self.fetched = 0
        self.fetched_wrong_path = 0
        self.squashed = 0
        self.cond_branches_committed = 0
        self.mispredictions_committed = 0
        self.fetch_cycles = 0
        self.policy_gated_cycles = 0

    @property
    def front_end_occupancy(self) -> int:
        """Instructions currently in the in-order front-end pipes."""
        return len(self.fetch_pipe) + len(self.decode_pipe)

    @property
    def in_flight(self) -> int:
        """ICOUNT-style pre-issue occupancy (pipes + issue queue)."""
        return self.front_end_occupancy + len(self.iq)

    def reset_measurement(self) -> None:
        """Zero the measured-window counters; keep microarchitectural state."""
        self.committed = 0
        self.fetched = 0
        self.fetched_wrong_path = 0
        self.squashed = 0
        self.cond_branches_committed = 0
        self.mispredictions_committed = 0
        self.fetch_cycles = 0
        self.policy_gated_cycles = 0


class Processor:
    """Cycle-level model of the paper's simulated machine.

    The classic constructor builds a one-thread machine around a single
    program — bit-identical to the pre-SMT model.  Subclasses (the SMT
    core) populate ``self.threads`` with several contexts and set
    ``self.fetch_policy`` before simulation.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        program: Program,
        controller: Optional[SpeculationController] = None,
        power_table: Optional[UnitPowerTable] = None,
        clock_gating: ClockGatingStyle = ClockGatingStyle.CC3,
        seed: int = 1,
    ) -> None:
        self._init_shared(config, power_table, clock_gating)
        self.seed = seed
        self.threads: List[ThreadContext] = [
            ThreadContext(
                0,
                config,
                program,
                controller or NullController(),
                seed,
                rob_size=config.rob_size,
                iq_size=config.iq_size,
                lsq_size=config.lsq_size,
                fetch_buffer=config.effective_fetch_buffer,
            )
        ]
        self._finish_threads()

    def _init_shared(
        self,
        config: ProcessorConfig,
        power_table: Optional[UnitPowerTable],
        clock_gating: ClockGatingStyle,
        attribute_threads: bool = False,
    ) -> None:
        """Initialise state shared by every hardware thread."""
        self.config = config
        self.memory = MemoryHierarchy(
            icache_kb=config.icache_kb,
            dcache_kb=config.dcache_kb,
            l1_ways=config.l1_ways,
            l2_kb=config.l2_kb,
            l2_ways=config.l2_ways,
            line_bytes=config.line_bytes,
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
            tlb_entries=config.tlb_entries,
            extra_dcache_latency=config.extra_dcache_latency,
        )
        self._power_table = power_table
        self._clock_gating = clock_gating
        self._attribute_threads = attribute_threads
        self.power = PowerModel(
            power_table, clock_gating, attribute_threads=attribute_threads
        )

        self.cycle = 0
        self._seq = 0
        self._line_shift = config.line_bytes.bit_length() - 1

        self.fu_pool = FunctionalUnitPool(config)
        self._completions: Dict[int, List[DynamicInstruction]] = {}

        self.stats = SimStats()
        # SMT hooks; the single-thread machine leaves them inert.
        self.fetch_policy = None
        self._shared_caps: Optional[Tuple[int, int, int]] = None
        # Optional observer with on_commit(instr, cycle) / on_squash(instr,
        # cycle) callbacks (see repro.tracing); None costs nothing.
        self.observer = None

    def _finish_threads(self) -> None:
        """Derived totals; call after ``self.threads`` is populated."""
        if self._shared_caps is not None:
            # Shared back-end: every thread's ROB is full-size but the
            # dispatch cap bounds total in-flight — occupancy (which
            # drives clock-tree power) is over the *shared* capacity.
            self._total_rob_size = self._shared_caps[0]
        else:
            self._total_rob_size = sum(thread.rob.size for thread in self.threads)

    # ------------------------------------------------------------------
    # Single-thread aliases (the overwhelmingly common configuration)
    # ------------------------------------------------------------------

    @property
    def program(self) -> Program:
        return self.threads[0].program

    @property
    def controller(self) -> SpeculationController:
        return self.threads[0].controller

    @property
    def bpred(self) -> BranchPredictor:
        return self.threads[0].bpred

    @property
    def confidence(self) -> Optional[ConfidenceEstimator]:
        return self.threads[0].confidence

    @property
    def btb(self) -> BranchTargetBuffer:
        return self.threads[0].btb

    @property
    def ras(self) -> ReturnAddressStack:
        return self.threads[0].ras

    @property
    def oracle(self) -> TruePathOracle:
        return self.threads[0].oracle

    @property
    def navigator(self) -> WrongPathNavigator:
        return self.threads[0].navigator

    @property
    def renamer(self) -> RegisterRenamer:
        return self.threads[0].renamer

    @property
    def rob(self) -> ReorderBuffer:
        return self.threads[0].rob

    @property
    def iq(self) -> IssueQueue:
        return self.threads[0].iq

    @property
    def lsq(self) -> LoadStoreQueue:
        return self.threads[0].lsq

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    def run(self, max_instructions: int, warmup_instructions: int = 0) -> SimStats:
        """Simulate until ``max_instructions`` commit in the measured window.

        ``warmup_instructions`` commit first with statistics discarded
        (microarchitectural state — caches, predictor, estimator — is kept,
        as in any sampled simulation methodology).
        """
        if max_instructions <= 0:
            raise SimulationError("max_instructions must be positive")
        if warmup_instructions:
            self._run_until(warmup_instructions)
            self.reset_measurement()
        self._run_until(max_instructions)
        return self.stats

    def reset_measurement(self) -> None:
        """Zero statistics and energy; keep all microarchitectural state."""
        self.stats = SimStats()
        self.power = PowerModel(
            self._power_table, self._clock_gating,
            attribute_threads=self._attribute_threads,
        )
        self.memory.reset_stats()
        for thread in self.threads:
            thread.reset_measurement()

    def _run_until(self, instructions: int) -> None:
        base = self.stats.committed
        target = base + instructions
        limit = self.cycle + instructions * 400 + 100_000
        while self.stats.committed < target:
            self.step()
            if self.cycle > limit:
                raise SimulationError(
                    f"no forward progress: {self.stats.committed - base} of "
                    f"{instructions} instructions after {self.cycle} cycles"
                )

    def step(self) -> None:
        """Advance the machine by one cycle."""
        cycle = self.cycle
        activity = [0] * 11
        self._commit(cycle, activity)
        self._complete(cycle, activity)
        self._issue(cycle, activity)
        self._rename(cycle, activity)
        self._decode(cycle)
        self._fetch(cycle, activity)
        threads = self.threads
        if len(threads) == 1:
            in_flight = len(threads[0].rob)
            occupancy = threads[0].rob.occupancy
        else:
            in_flight = sum(len(thread.rob) for thread in threads)
            occupancy = in_flight / self._total_rob_size
        self.power.end_cycle(activity, occupancy)
        self.power.note_instr_cycles(in_flight)
        self.stats.cycles += 1
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    # Stage: commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int, activity: List[int]) -> None:
        threads = self.threads
        count = len(threads)
        budget = self.config.commit_width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._commit_thread(thread, cycle, activity, budget)

    def _commit_thread(
        self, thread: ThreadContext, cycle: int, activity: List[int], budget: int
    ) -> int:
        stats = self.stats
        rob = thread.rob
        committed = 0
        while committed < budget:
            head = rob.head()
            if head is None or not head.completed:
                break
            rob.pop_head()
            head.commit_cycle = cycle
            tally = head.unit_accesses
            if head.phys_dest >= 0:
                activity[_REGFILE] += 1
                tally[_REGFILE] += 1
            opcode = head.opcode
            if opcode is Opcode.STORE:
                result = self.memory.store(head.mem_address)
                activity[_DCACHE] += 1
                tally[_DCACHE] += 1
                if not result.l1_hit:
                    activity[_DCACHE2] += 1
                    tally[_DCACHE2] += 1
                thread.lsq.release()
            elif opcode is Opcode.LOAD:
                thread.lsq.release()
            elif head.is_cond_branch:
                self._commit_branch(thread, head, activity)
            self.power.credit_committed(head, cycle)
            if self.observer is not None:
                self.observer.on_commit(head, cycle)
            stats.committed += 1
            thread.committed += 1
            committed += 1
            if head.true_index >= 0:
                thread.last_committed_true_index = head.true_index
        thread.commits_since_prune += committed
        if thread.commits_since_prune >= 8192:
            thread.oracle.prune_before(thread.last_committed_true_index)
            thread.commits_since_prune = 0
        return committed

    def _commit_branch(
        self, thread: ThreadContext, instr: DynamicInstruction, activity: List[int]
    ) -> None:
        stats = self.stats
        stats.cond_branches_committed += 1
        thread.cond_branches_committed += 1
        correct = not instr.mispredicted
        if not correct:
            stats.mispredictions_committed += 1
            thread.mispredictions_committed += 1
        thread.bpred.train(instr.pc, instr.actual_taken, instr.bpred_snapshot)
        activity[_BPRED] += 1
        instr.unit_accesses[_BPRED] += 1
        if thread.confidence is not None:
            thread.confidence.train(
                instr.pc, correct, instr.bpred_snapshot, taken=instr.actual_taken
            )
            if instr.confidence is not None:
                stats.confidence.record(instr.confidence, correct)
        if instr.actual_taken and instr.actual_target >= 0:
            target_address = thread.program.block(instr.actual_target).address
            thread.btb.update(instr.pc, target_address)

    # ------------------------------------------------------------------
    # Stage: writeback / branch resolution
    # ------------------------------------------------------------------

    def _complete(self, cycle: int, activity: List[int]) -> None:
        events = self._completions.pop(cycle, None)
        if not events:
            return
        if len(events) > 1:
            events.sort(key=lambda instruction: instruction.seq)
        threads = self.threads
        for instr in events:
            if instr.squashed:
                continue
            thread = threads[instr.thread_id]
            instr.completed = True
            instr.complete_cycle = cycle
            tally = instr.unit_accesses
            if instr.phys_dest >= 0:
                thread.renamer.mark_completed(instr.phys_dest)
                activity[_RESULTBUS] += 1
                tally[_RESULTBUS] += 1
                woken = thread.iq.wakeup(instr.phys_dest)
                if woken:
                    activity[_WINDOW] += 1
                    tally[_WINDOW] += 1
            if instr.is_cond_branch:
                if instr.lowconf:
                    instr.lowconf = False
                    thread.lowconf_inflight -= 1
                thread.controller.on_branch_resolved(instr)
                if instr.mispredicted:
                    self._recover(thread, instr, cycle)

    def _recover(
        self, thread: ThreadContext, branch: DynamicInstruction, cycle: int
    ) -> None:
        """Squash the thread's younger instructions and redirect its fetch."""
        stats = self.stats
        stats.squashes += 1
        # Remove every younger instruction of this thread, youngest first.
        for instr in thread.rob.squash_younger(branch.seq):
            self._squash_instr(thread, instr, cycle, in_backend=True)
        thread.iq.squash_younger(branch.seq)
        for _, instr in thread.fetch_pipe:
            self._squash_instr(thread, instr, cycle, in_backend=False)
        thread.fetch_pipe.clear()
        for _, instr in thread.decode_pipe:
            self._squash_instr(thread, instr, cycle, in_backend=False)
        thread.decode_pipe.clear()

        # Architectural repair.
        thread.renamer.restore(branch.rename_checkpoint)
        thread.bpred.restore(branch.bpred_snapshot, branch.actual_taken)
        thread.ras.restore(branch.ras_checkpoint)

        # Redirect fetch down the branch's actual path.
        if branch.resume_mode == "true":
            thread.fetch_mode = "true"
            thread.true_index = branch.resume_true_index
            thread.wp_cursor = None
        else:
            thread.fetch_mode = "wrong"
            thread.wp_cursor = branch.resume_wp_cursor
        thread.fetch_stall_until = cycle + self.config.redirect_penalty
        thread.unresolved_mispredicts -= 1
        if thread.unresolved_mispredicts < 0:
            raise SimulationError("unresolved misprediction count underflow")

    def _squash_instr(
        self,
        thread: ThreadContext,
        instr: DynamicInstruction,
        cycle: int,
        in_backend: bool,
    ) -> None:
        instr.squashed = True
        stats = self.stats
        stats.squashed += 1
        thread.squashed += 1
        self.power.credit_squashed(instr, cycle)
        if self.observer is not None:
            self.observer.on_squash(instr, cycle)
        if instr.is_cond_branch:
            if instr.lowconf:
                instr.lowconf = False
                thread.lowconf_inflight -= 1
            thread.controller.on_branch_squashed(instr)
            # A mispredicted branch that already resolved was discounted at
            # resolution; only still-outstanding ones are discounted here.
            if instr.mispredicted and not instr.completed:
                thread.unresolved_mispredicts -= 1
        if not in_backend:
            return
        tag = instr.phys_dest
        if tag >= 0:
            thread.renamer.forget(tag)
            thread.iq.forget_tag(tag)
        if not instr.issued:
            thread.iq.note_squashed(instr)
        if instr.is_load or instr.is_store:
            thread.lsq.release()

    # ------------------------------------------------------------------
    # Stage: issue / select
    # ------------------------------------------------------------------

    def _issue(self, cycle: int, activity: List[int]) -> None:
        self.fu_pool.new_cycle(cycle)
        threads = self.threads
        count = len(threads)
        budget = self.config.issue_width
        stats = self.stats
        extra_exec = self.config.extra_exec_latency
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            controller = thread.controller

            def blocks(
                instruction: DynamicInstruction, controller=controller
            ) -> bool:
                blocked = controller.blocks_selection(instruction)
                if blocked:
                    stats.selection_blocked += 1
                return blocked

            selected = thread.iq.select(budget, self.fu_pool, blocks)
            if not selected:
                continue
            budget -= len(selected)
            for instr in selected:
                instr.issue_cycle = cycle
                tally = instr.unit_accesses
                activity[_WINDOW] += 1
                tally[_WINDOW] += 1
                activity[_ALU] += 1
                tally[_ALU] += 1
                latency = instr.static.latency + extra_exec
                opcode = instr.opcode
                if opcode is Opcode.LOAD:
                    result = self.memory.load(instr.mem_address)
                    activity[_DCACHE] += 1
                    tally[_DCACHE] += 1
                    if not result.l1_hit:
                        activity[_DCACHE2] += 1
                        tally[_DCACHE2] += 1
                        # The miss occupies an MSHR until the fill returns;
                        # squashing the load does not recall the fill.
                        self.fu_pool.hold_mshr(cycle + result.latency)
                    latency += result.latency
                    instr.mem_latency = result.latency
                if instr.is_load or instr.is_store:
                    activity[_LSQ] += 1
                    tally[_LSQ] += 1
                stats.issued += 1
                if instr.on_wrong_path:
                    stats.issued_wrong_path += 1
                self._completions.setdefault(cycle + latency, []).append(instr)

    # ------------------------------------------------------------------
    # Stage: rename / dispatch
    # ------------------------------------------------------------------

    def _rename(self, cycle: int, activity: List[int]) -> None:
        threads = self.threads
        count = len(threads)
        budget = self.config.decode_width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._rename_thread(thread, cycle, activity, budget)

    def _shared_backend_full(self, is_mem: bool) -> bool:
        """In shared-back-end mode, is a *total* structural cap exhausted?"""
        caps = self._shared_caps
        if caps is None:
            return False
        rob_cap, iq_cap, lsq_cap = caps
        threads = self.threads
        if sum(len(thread.rob) for thread in threads) >= rob_cap:
            return True
        if sum(len(thread.iq) for thread in threads) >= iq_cap:
            return True
        if is_mem and sum(len(thread.lsq) for thread in threads) >= lsq_cap:
            return True
        return False

    def _rename_thread(
        self, thread: ThreadContext, cycle: int, activity: List[int], budget: int
    ) -> int:
        pipe = thread.decode_pipe
        rob = thread.rob
        iq = thread.iq
        lsq = thread.lsq
        renamer = thread.renamer
        stats = self.stats
        renamed = 0
        while renamed < budget and pipe:
            ready_cycle, instr = pipe[0]
            if ready_cycle > cycle:
                break
            if instr.squashed:
                pipe.popleft()
                continue
            is_mem = instr.is_load or instr.is_store
            if rob.full or iq.full or (is_mem and lsq.full):
                break
            if self._shared_backend_full(is_mem):
                break
            pipe.popleft()
            instr.rename_cycle = cycle
            waits = renamer.rename(instr)
            tally = instr.unit_accesses
            activity[_RENAME] += 1
            tally[_RENAME] += 1
            source_reads = len(instr.static.sources)
            if source_reads:
                activity[_REGFILE] += source_reads
                tally[_REGFILE] += source_reads
            activity[_WINDOW] += 1
            tally[_WINDOW] += 1
            if instr.is_cond_branch:
                instr.rename_checkpoint = renamer.checkpoint()
            rob.push(instr)
            if is_mem:
                lsq.allocate(instr)
                activity[_LSQ] += 1
                tally[_LSQ] += 1
            iq.dispatch(instr, waits)
            stats.renamed += 1
            renamed += 1
        return renamed

    # ------------------------------------------------------------------
    # Stage: decode
    # ------------------------------------------------------------------

    def _decode(self, cycle: int) -> None:
        threads = self.threads
        count = len(threads)
        budget = self.config.decode_width
        throttled = False
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            moved, thread_throttled = self._decode_thread(thread, cycle, budget)
            budget -= moved
            throttled = throttled or thread_throttled
        if throttled:
            self.stats.decode_throttled_cycles += 1

    def _decode_thread(
        self, thread: ThreadContext, cycle: int, budget: int
    ) -> Tuple[int, bool]:
        pipe = thread.fetch_pipe
        out = thread.decode_pipe
        controller = thread.controller
        stats = self.stats
        latency = self.config.decode_to_rename_latency
        moved = 0
        throttled = False
        while moved < budget and pipe:
            ready_cycle, instr = pipe[0]
            if ready_cycle > cycle:
                break
            if instr.squashed:
                pipe.popleft()
                continue
            if controller.blocks_decode(cycle, instr):
                throttled = True
                break
            pipe.popleft()
            instr.decode_cycle = cycle
            out.append((cycle + latency, instr))
            stats.decoded += 1
            moved += 1
        return moved, throttled

    # ------------------------------------------------------------------
    # Stage: fetch
    # ------------------------------------------------------------------

    def _fetch(self, cycle: int, activity: List[int]) -> None:
        threads = self.threads
        if len(threads) == 1:
            self._fetch_thread(threads[0], cycle, activity)
            return
        if self.fetch_policy is None:
            raise SimulationError("a multi-thread processor needs a fetch policy")
        thread = self.fetch_policy.pick(self, cycle)
        if thread is None:
            return
        self._fetch_thread(thread, cycle, activity)

    def _fetch_thread(
        self, thread: ThreadContext, cycle: int, activity: List[int]
    ) -> None:
        stats = self.stats
        if cycle < thread.fetch_stall_until:
            stats.redirect_stall_cycles += 1
            return
        controller = thread.controller
        if not controller.fetch_allowed(cycle):
            stats.fetch_throttled_cycles += 1
            return
        if controller.blocks_wrong_path_fetch and thread.fetch_mode == "wrong":
            # Oracle fetch: wait at the misprediction until resolution.
            return
        capacity = thread.fetch_buffer - thread.front_end_occupancy
        if capacity <= 0:
            return

        config = self.config
        width = min(config.fetch_width, capacity)
        max_taken = config.max_taken_branches_per_cycle
        decode_latency = config.fetch_to_decode_latency
        oracle = thread.oracle
        navigator = thread.navigator
        line_shift = self._line_shift
        mem_offset = thread.mem_offset
        thread_id = thread.thread_id
        thread.fetch_cycles += 1

        fetched = 0
        taken_branches = 0
        current_line = -1
        while fetched < width:
            on_true = thread.fetch_mode == "true"
            if on_true:
                record = oracle.get(thread.true_index)
                static = record.static
                actual_taken = record.taken
                actual_target = record.target_block
                mem_address = record.mem_address
                next_cursor = None
            else:
                (static, actual_taken, actual_target,
                 next_cursor, mem_address) = navigator.fetch_one(thread.wp_cursor)

            line = (static.address + mem_offset) >> line_shift
            if line != current_line:
                result = self.memory.fetch(static.address + mem_offset)
                if not result.l1_hit:
                    activity[_ICACHE] += 1
                    activity[_DCACHE2] += 1
                    thread.fetch_stall_until = cycle + result.latency - 1
                    stats.icache_stall_cycles += 1
                    break
                current_line = line

            instr = DynamicInstruction(self._seq, static)
            self._seq += 1
            instr.thread_id = thread_id
            instr.unit_accesses = [0] * 11
            instr.fetch_cycle = cycle
            instr.on_wrong_path = not on_true
            instr.mem_address = mem_address + mem_offset if mem_address else 0
            if on_true:
                instr.true_index = thread.true_index
            activity[_ICACHE] += 1
            instr.unit_accesses[_ICACHE] += 1

            stop_after = False
            if static.is_branch:
                stop_after = self._fetch_branch(
                    thread, instr, actual_taken, actual_target, next_cursor,
                    on_true, activity,
                )
                if instr.predicted_taken:
                    taken_branches += 1
            else:
                if on_true:
                    thread.true_index += 1
                else:
                    thread.wp_cursor = next_cursor

            thread.fetch_pipe.append((cycle + decode_latency, instr))
            stats.fetched += 1
            thread.fetched += 1
            if instr.on_wrong_path:
                stats.fetched_wrong_path += 1
                thread.fetched_wrong_path += 1
            fetched += 1
            if stop_after or taken_branches >= max_taken:
                break

    def _fetch_branch(
        self,
        thread: ThreadContext,
        instr: DynamicInstruction,
        actual_taken: bool,
        actual_target: int,
        next_cursor,
        on_true: bool,
        activity: List[int],
    ) -> bool:
        """Handle a control instruction at fetch.  Returns True to stop the
        fetch group after this instruction (BTB bubble, oracle stall, or a
        divergence onto the wrong path)."""
        stats = self.stats
        instr.actual_taken = actual_taken
        instr.actual_target = actual_target
        tally = instr.unit_accesses
        activity[_BPRED] += 1
        tally[_BPRED] += 1
        opcode = instr.opcode
        stop_after = False

        if instr.is_cond_branch:
            stats.cond_branches_fetched += 1
            prediction = thread.bpred.predict(instr.pc)
            instr.predicted_taken = prediction.taken
            instr.bpred_snapshot = prediction.snapshot
            instr.mispredicted = prediction.taken != actual_taken
            instr.ras_checkpoint = thread.ras.checkpoint()
            if thread.confidence is not None:
                thread.confidence.set_actual(actual_taken)
                level = thread.confidence.estimate(
                    instr.pc, prediction, thread.bpred,
                    update_state=not instr.on_wrong_path,
                )
                instr.confidence = level
                if level.is_low:
                    instr.lowconf = True
                    thread.lowconf_inflight += 1
                thread.controller.on_branch_fetched(instr, level)
            if prediction.taken and thread.btb.lookup(instr.pc) is None:
                # Taken prediction without a cached target: one-cycle bubble.
                stop_after = True
            self._advance_after_cond(thread, instr, on_true, next_cursor)
            if instr.mispredicted:
                thread.unresolved_mispredicts += 1
                if thread.controller.blocks_wrong_path_fetch:
                    stop_after = True
        else:
            # Unconditional control: never mispredicts in this model.
            instr.predicted_taken = True
            instr.ras_checkpoint = thread.ras.checkpoint()
            if opcode is Opcode.CALL:
                thread.ras.push(instr.pc + 4)
            elif opcode is Opcode.RET:
                thread.ras.pop()
            thread.btb.update(instr.pc, 0 if actual_target < 0
                              else thread.program.block(actual_target).address)
            if on_true:
                thread.true_index += 1
            else:
                thread.wp_cursor = next_cursor
        return stop_after

    def _advance_after_cond(
        self,
        thread: ThreadContext,
        instr: DynamicInstruction,
        on_true: bool,
        next_cursor,
    ) -> None:
        """Advance the fetch cursor along the *predicted* direction and
        store the recovery cursor for the *actual* direction."""
        block = thread.program.block(instr.static.block_id)
        predicted_target = block.taken_target if instr.predicted_taken else block.fall_target

        if on_true:
            resume_index = thread.true_index + 1
            instr.resume_mode = "true"
            instr.resume_true_index = resume_index
            if instr.mispredicted:
                # Diverge onto the wrong path at the predicted target.
                thread.wp_salt += 1
                thread.fetch_mode = "wrong"
                thread.wp_cursor = thread.navigator.start_cursor(
                    predicted_target, thread.wp_salt * 8191 + instr.seq
                )
                thread.true_index = resume_index
            else:
                thread.true_index = resume_index
        else:
            instr.resume_mode = "wrong"
            instr.resume_wp_cursor = next_cursor
            if instr.mispredicted:
                # Redirect this wrong path along its own predicted direction.
                _, _, stack, step = next_cursor
                thread.wp_cursor = (predicted_target, 0, stack, step)
            else:
                thread.wp_cursor = next_cursor
