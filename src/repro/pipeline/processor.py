"""The cycle-level out-of-order processor.

One :class:`Processor` couples a synthetic program to the Table-3
microarchitecture and a speculation controller (baseline, Selective
Throttling, Pipeline Gating or an oracle).  Each cycle runs the stages in
reverse pipeline order::

    commit -> writeback/resolve -> issue/select -> rename/dispatch
           -> decode -> fetch -> power accounting

**Wrong-path execution is real**: the front-end walks the program CFG along
its *predictions*; a misprediction sends it down the wrong target, fetching,
decoding and executing real wrong-path code until the branch resolves at
execute, squashes younger instructions and redirects fetch.  Squashed
instructions carry their per-unit access tallies into the power model's
wasted pool — that is what reproduces the paper's Table 1.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.bpred.base import BranchPredictor
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.gshare import GSharePredictor
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.perceptron import PerceptronPredictor
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.static import StaticPredictor
from repro.bpred.twolevel import LocalTwoLevelPredictor
from repro.confidence.base import ConfidenceEstimator
from repro.confidence.bpru import BPRUEstimator
from repro.confidence.jrs import JRSEstimator
from repro.confidence.perfect import PerfectEstimator
from repro.confidence.selfconf import (
    CounterConfidenceEstimator,
    PerceptronConfidenceEstimator,
)
from repro.core.throttler import NullController, SpeculationController
from repro.errors import ConfigurationError, SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.iq import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.renamer import RegisterRenamer
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.stats import SimStats
from repro.power.model import ClockGatingStyle, PowerModel
from repro.power.units import PowerUnit, UnitPowerTable
from repro.program.cfg import Program
from repro.program.walker import TruePathOracle, WrongPathNavigator

_ICACHE = int(PowerUnit.ICACHE)
_BPRED = int(PowerUnit.BPRED)
_REGFILE = int(PowerUnit.REGFILE)
_RENAME = int(PowerUnit.RENAME)
_WINDOW = int(PowerUnit.WINDOW)
_LSQ = int(PowerUnit.LSQ)
_ALU = int(PowerUnit.ALU)
_DCACHE = int(PowerUnit.DCACHE)
_DCACHE2 = int(PowerUnit.DCACHE2)
_RESULTBUS = int(PowerUnit.RESULTBUS)


def build_predictor(config: ProcessorConfig) -> BranchPredictor:
    """Instantiate the direction predictor named by the configuration."""
    kind = config.bpred_kind
    if kind == "gshare":
        return GSharePredictor(config.bpred_size_kb)
    if kind == "bimodal":
        return BimodalPredictor(config.bpred_size_kb)
    if kind == "local2level":
        return LocalTwoLevelPredictor()
    if kind == "hybrid":
        return HybridPredictor(config.bpred_size_kb)
    if kind == "perceptron":
        return PerceptronPredictor(config.bpred_size_kb)
    if kind == "static":
        return StaticPredictor()
    raise ConfigurationError(f"unknown predictor kind {kind!r}")


def build_estimator(config: ProcessorConfig) -> Optional[ConfidenceEstimator]:
    """Instantiate the confidence estimator named by the configuration."""
    kind = config.confidence_kind
    if kind == "bpru":
        return BPRUEstimator(config.confidence_size_kb)
    if kind == "jrs":
        return JRSEstimator(config.confidence_size_kb, config.jrs_threshold)
    if kind == "perfect":
        return PerfectEstimator()
    if kind == "perceptron-self":
        return PerceptronConfidenceEstimator()
    if kind == "counter-self":
        return CounterConfidenceEstimator()
    if kind == "none":
        return None
    raise ConfigurationError(f"unknown confidence kind {kind!r}")


class Processor:
    """Cycle-level model of the paper's simulated machine."""

    def __init__(
        self,
        config: ProcessorConfig,
        program: Program,
        controller: Optional[SpeculationController] = None,
        power_table: Optional[UnitPowerTable] = None,
        clock_gating: ClockGatingStyle = ClockGatingStyle.CC3,
        seed: int = 1,
    ) -> None:
        self.config = config
        self.program = program
        self.controller = controller or NullController()
        self.seed = seed

        self.bpred = build_predictor(config)
        self.confidence = build_estimator(config)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_depth)
        self.memory = MemoryHierarchy(
            icache_kb=config.icache_kb,
            dcache_kb=config.dcache_kb,
            l1_ways=config.l1_ways,
            l2_kb=config.l2_kb,
            l2_ways=config.l2_ways,
            line_bytes=config.line_bytes,
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
            tlb_entries=config.tlb_entries,
            extra_dcache_latency=config.extra_dcache_latency,
        )
        self._power_table = power_table
        self._clock_gating = clock_gating
        self.power = PowerModel(power_table, clock_gating)

        self.oracle = TruePathOracle(program, seed)
        self.navigator = WrongPathNavigator(program, seed)

        # Fetch state.
        self.cycle = 0
        self._seq = 0
        self._fetch_mode = "true"
        self._true_index = 0
        self._wp_cursor = None
        self._wp_salt = 0
        self._fetch_stall_until = 0
        self._unresolved_mispredicts = 0
        self._line_shift = config.line_bytes.bit_length() - 1

        # In-order front-end pipes: deques of (ready_cycle, instruction).
        self._fetch_pipe = deque()
        self._decode_pipe = deque()

        # Back end.
        self.renamer = RegisterRenamer()
        self.rob = ReorderBuffer(config.rob_size)
        self.iq = IssueQueue(config.iq_size)
        self.lsq = LoadStoreQueue(config.lsq_size)
        self.fu_pool = FunctionalUnitPool(config)
        self._completions: Dict[int, List[DynamicInstruction]] = {}

        self.stats = SimStats()
        self._last_committed_true_index = 0
        self._commits_since_prune = 0
        # Optional observer with on_commit(instr, cycle) / on_squash(instr,
        # cycle) callbacks (see repro.tracing); None costs nothing.
        self.observer = None

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    def run(self, max_instructions: int, warmup_instructions: int = 0) -> SimStats:
        """Simulate until ``max_instructions`` commit in the measured window.

        ``warmup_instructions`` commit first with statistics discarded
        (microarchitectural state — caches, predictor, estimator — is kept,
        as in any sampled simulation methodology).
        """
        if max_instructions <= 0:
            raise SimulationError("max_instructions must be positive")
        if warmup_instructions:
            self._run_until(warmup_instructions)
            self.reset_measurement()
        self._run_until(max_instructions)
        return self.stats

    def reset_measurement(self) -> None:
        """Zero statistics and energy; keep all microarchitectural state."""
        self.stats = SimStats()
        self.power = PowerModel(self._power_table, self._clock_gating)
        self.memory.reset_stats()

    def _run_until(self, instructions: int) -> None:
        base = self.stats.committed
        target = base + instructions
        limit = self.cycle + instructions * 400 + 100_000
        while self.stats.committed < target:
            self.step()
            if self.cycle > limit:
                raise SimulationError(
                    f"no forward progress: {self.stats.committed - base} of "
                    f"{instructions} instructions after {self.cycle} cycles"
                )

    def step(self) -> None:
        """Advance the machine by one cycle."""
        cycle = self.cycle
        activity = [0] * 11
        self._commit(cycle, activity)
        self._complete(cycle, activity)
        self._issue(cycle, activity)
        self._rename(cycle, activity)
        self._decode(cycle)
        self._fetch(cycle, activity)
        self.power.end_cycle(activity, self.rob.occupancy)
        self.power.note_instr_cycles(len(self.rob))
        self.stats.cycles += 1
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    # Stage: commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int, activity: List[int]) -> None:
        stats = self.stats
        rob = self.rob
        committed = 0
        while committed < self.config.commit_width:
            head = rob.head()
            if head is None or not head.completed:
                break
            rob.pop_head()
            head.commit_cycle = cycle
            tally = head.unit_accesses
            if head.phys_dest >= 0:
                activity[_REGFILE] += 1
                tally[_REGFILE] += 1
            opcode = head.opcode
            if opcode is Opcode.STORE:
                result = self.memory.store(head.mem_address)
                activity[_DCACHE] += 1
                tally[_DCACHE] += 1
                if not result.l1_hit:
                    activity[_DCACHE2] += 1
                    tally[_DCACHE2] += 1
                self.lsq.release()
            elif opcode is Opcode.LOAD:
                self.lsq.release()
            elif head.is_cond_branch:
                self._commit_branch(head, activity)
            self.power.credit_committed(head, cycle)
            if self.observer is not None:
                self.observer.on_commit(head, cycle)
            stats.committed += 1
            committed += 1
            if head.true_index >= 0:
                self._last_committed_true_index = head.true_index
        self._commits_since_prune += committed
        if self._commits_since_prune >= 8192:
            self.oracle.prune_before(self._last_committed_true_index)
            self._commits_since_prune = 0

    def _commit_branch(self, instr: DynamicInstruction, activity: List[int]) -> None:
        stats = self.stats
        stats.cond_branches_committed += 1
        correct = not instr.mispredicted
        if not correct:
            stats.mispredictions_committed += 1
        self.bpred.train(instr.pc, instr.actual_taken, instr.bpred_snapshot)
        activity[_BPRED] += 1
        instr.unit_accesses[_BPRED] += 1
        if self.confidence is not None:
            self.confidence.train(
                instr.pc, correct, instr.bpred_snapshot, taken=instr.actual_taken
            )
            if instr.confidence is not None:
                stats.confidence.record(instr.confidence, correct)
        if instr.actual_taken and instr.actual_target >= 0:
            target_address = self.program.block(instr.actual_target).address
            self.btb.update(instr.pc, target_address)

    # ------------------------------------------------------------------
    # Stage: writeback / branch resolution
    # ------------------------------------------------------------------

    def _complete(self, cycle: int, activity: List[int]) -> None:
        events = self._completions.pop(cycle, None)
        if not events:
            return
        if len(events) > 1:
            events.sort(key=lambda instruction: instruction.seq)
        for instr in events:
            if instr.squashed:
                continue
            instr.completed = True
            instr.complete_cycle = cycle
            tally = instr.unit_accesses
            if instr.phys_dest >= 0:
                self.renamer.mark_completed(instr.phys_dest)
                activity[_RESULTBUS] += 1
                tally[_RESULTBUS] += 1
                woken = self.iq.wakeup(instr.phys_dest)
                if woken:
                    activity[_WINDOW] += 1
                    tally[_WINDOW] += 1
            if instr.is_cond_branch:
                self.controller.on_branch_resolved(instr)
                if instr.mispredicted:
                    self._recover(instr, cycle)

    def _recover(self, branch: DynamicInstruction, cycle: int) -> None:
        """Squash younger instructions and redirect fetch after ``branch``."""
        stats = self.stats
        stats.squashes += 1
        # Remove every younger instruction, youngest first.
        for instr in self.rob.squash_younger(branch.seq):
            self._squash_instr(instr, cycle, in_backend=True)
        self.iq.squash_younger(branch.seq)
        for _, instr in self._fetch_pipe:
            self._squash_instr(instr, cycle, in_backend=False)
        self._fetch_pipe.clear()
        for _, instr in self._decode_pipe:
            self._squash_instr(instr, cycle, in_backend=False)
        self._decode_pipe.clear()

        # Architectural repair.
        self.renamer.restore(branch.rename_checkpoint)
        self.bpred.restore(branch.bpred_snapshot, branch.actual_taken)
        self.ras.restore(branch.ras_checkpoint)

        # Redirect fetch down the branch's actual path.
        if branch.resume_mode == "true":
            self._fetch_mode = "true"
            self._true_index = branch.resume_true_index
            self._wp_cursor = None
        else:
            self._fetch_mode = "wrong"
            self._wp_cursor = branch.resume_wp_cursor
        self._fetch_stall_until = cycle + self.config.redirect_penalty
        self._unresolved_mispredicts -= 1
        if self._unresolved_mispredicts < 0:
            raise SimulationError("unresolved misprediction count underflow")

    def _squash_instr(
        self, instr: DynamicInstruction, cycle: int, in_backend: bool
    ) -> None:
        instr.squashed = True
        stats = self.stats
        stats.squashed += 1
        self.power.credit_squashed(instr, cycle)
        if self.observer is not None:
            self.observer.on_squash(instr, cycle)
        if instr.is_cond_branch:
            self.controller.on_branch_squashed(instr)
            # A mispredicted branch that already resolved was discounted at
            # resolution; only still-outstanding ones are discounted here.
            if instr.mispredicted and not instr.completed:
                self._unresolved_mispredicts -= 1
        if not in_backend:
            return
        tag = instr.phys_dest
        if tag >= 0:
            self.renamer.forget(tag)
            self.iq.forget_tag(tag)
        if not instr.issued:
            self.iq.note_squashed(instr)
        if instr.is_load or instr.is_store:
            self.lsq.release()

    # ------------------------------------------------------------------
    # Stage: issue / select
    # ------------------------------------------------------------------

    def _issue(self, cycle: int, activity: List[int]) -> None:
        self.fu_pool.new_cycle(cycle)
        controller = self.controller
        stats = self.stats

        def blocks(instruction: DynamicInstruction) -> bool:
            blocked = controller.blocks_selection(instruction)
            if blocked:
                stats.selection_blocked += 1
            return blocked

        selected = self.iq.select(self.config.issue_width, self.fu_pool, blocks)
        if not selected:
            return
        extra_exec = self.config.extra_exec_latency
        for instr in selected:
            instr.issue_cycle = cycle
            tally = instr.unit_accesses
            activity[_WINDOW] += 1
            tally[_WINDOW] += 1
            activity[_ALU] += 1
            tally[_ALU] += 1
            latency = instr.static.latency + extra_exec
            opcode = instr.opcode
            if opcode is Opcode.LOAD:
                result = self.memory.load(instr.mem_address)
                activity[_DCACHE] += 1
                tally[_DCACHE] += 1
                if not result.l1_hit:
                    activity[_DCACHE2] += 1
                    tally[_DCACHE2] += 1
                    # The miss occupies an MSHR until the fill returns;
                    # squashing the load does not recall the fill.
                    self.fu_pool.hold_mshr(cycle + result.latency)
                latency += result.latency
                instr.mem_latency = result.latency
            if instr.is_load or instr.is_store:
                activity[_LSQ] += 1
                tally[_LSQ] += 1
            stats.issued += 1
            if instr.on_wrong_path:
                stats.issued_wrong_path += 1
            self._completions.setdefault(cycle + latency, []).append(instr)

    # ------------------------------------------------------------------
    # Stage: rename / dispatch
    # ------------------------------------------------------------------

    def _rename(self, cycle: int, activity: List[int]) -> None:
        pipe = self._decode_pipe
        rob = self.rob
        iq = self.iq
        lsq = self.lsq
        stats = self.stats
        renamed = 0
        width = self.config.decode_width
        while renamed < width and pipe:
            ready_cycle, instr = pipe[0]
            if ready_cycle > cycle:
                break
            if instr.squashed:
                pipe.popleft()
                continue
            is_mem = instr.is_load or instr.is_store
            if rob.full or iq.full or (is_mem and lsq.full):
                break
            pipe.popleft()
            instr.rename_cycle = cycle
            waits = self.renamer.rename(instr)
            tally = instr.unit_accesses
            activity[_RENAME] += 1
            tally[_RENAME] += 1
            source_reads = len(instr.static.sources)
            if source_reads:
                activity[_REGFILE] += source_reads
                tally[_REGFILE] += source_reads
            activity[_WINDOW] += 1
            tally[_WINDOW] += 1
            if instr.is_cond_branch:
                instr.rename_checkpoint = self.renamer.checkpoint()
            rob.push(instr)
            if is_mem:
                lsq.allocate(instr)
                activity[_LSQ] += 1
                tally[_LSQ] += 1
            iq.dispatch(instr, waits)
            stats.renamed += 1
            renamed += 1

    # ------------------------------------------------------------------
    # Stage: decode
    # ------------------------------------------------------------------

    def _decode(self, cycle: int) -> None:
        pipe = self._fetch_pipe
        out = self._decode_pipe
        controller = self.controller
        stats = self.stats
        latency = self.config.decode_to_rename_latency
        moved = 0
        width = self.config.decode_width
        throttled = False
        while moved < width and pipe:
            ready_cycle, instr = pipe[0]
            if ready_cycle > cycle:
                break
            if instr.squashed:
                pipe.popleft()
                continue
            if controller.blocks_decode(cycle, instr):
                throttled = True
                break
            pipe.popleft()
            instr.decode_cycle = cycle
            out.append((cycle + latency, instr))
            stats.decoded += 1
            moved += 1
        if throttled:
            stats.decode_throttled_cycles += 1

    # ------------------------------------------------------------------
    # Stage: fetch
    # ------------------------------------------------------------------

    def _fetch(self, cycle: int, activity: List[int]) -> None:
        stats = self.stats
        if cycle < self._fetch_stall_until:
            stats.redirect_stall_cycles += 1
            return
        controller = self.controller
        if not controller.fetch_allowed(cycle):
            stats.fetch_throttled_cycles += 1
            return
        if controller.blocks_wrong_path_fetch and self._fetch_mode == "wrong":
            # Oracle fetch: wait at the misprediction until resolution.
            return
        buffered = len(self._fetch_pipe) + len(self._decode_pipe)
        capacity = self.config.effective_fetch_buffer - buffered
        if capacity <= 0:
            return

        config = self.config
        width = min(config.fetch_width, capacity)
        max_taken = config.max_taken_branches_per_cycle
        decode_latency = config.fetch_to_decode_latency
        oracle = self.oracle
        navigator = self.navigator
        line_shift = self._line_shift

        fetched = 0
        taken_branches = 0
        current_line = -1
        while fetched < width:
            on_true = self._fetch_mode == "true"
            if on_true:
                record = oracle.get(self._true_index)
                static = record.static
                actual_taken = record.taken
                actual_target = record.target_block
                mem_address = record.mem_address
                next_cursor = None
            else:
                (static, actual_taken, actual_target,
                 next_cursor, mem_address) = navigator.fetch_one(self._wp_cursor)

            line = static.address >> line_shift
            if line != current_line:
                result = self.memory.fetch(static.address)
                if not result.l1_hit:
                    activity[_ICACHE] += 1
                    activity[_DCACHE2] += 1
                    self._fetch_stall_until = cycle + result.latency - 1
                    stats.icache_stall_cycles += 1
                    break
                current_line = line

            instr = DynamicInstruction(self._seq, static)
            self._seq += 1
            instr.unit_accesses = [0] * 11
            instr.fetch_cycle = cycle
            instr.on_wrong_path = not on_true
            instr.mem_address = mem_address
            if on_true:
                instr.true_index = self._true_index
            activity[_ICACHE] += 1
            instr.unit_accesses[_ICACHE] += 1

            stop_after = False
            if static.is_branch:
                stop_after = self._fetch_branch(
                    instr, actual_taken, actual_target, next_cursor,
                    on_true, activity,
                )
                if instr.predicted_taken:
                    taken_branches += 1
            else:
                if on_true:
                    self._true_index += 1
                else:
                    self._wp_cursor = next_cursor

            self._fetch_pipe.append((cycle + decode_latency, instr))
            stats.fetched += 1
            if instr.on_wrong_path:
                stats.fetched_wrong_path += 1
            fetched += 1
            if stop_after or taken_branches >= max_taken:
                break

    def _fetch_branch(
        self,
        instr: DynamicInstruction,
        actual_taken: bool,
        actual_target: int,
        next_cursor,
        on_true: bool,
        activity: List[int],
    ) -> bool:
        """Handle a control instruction at fetch.  Returns True to stop the
        fetch group after this instruction (BTB bubble, oracle stall, or a
        divergence onto the wrong path)."""
        stats = self.stats
        instr.actual_taken = actual_taken
        instr.actual_target = actual_target
        tally = instr.unit_accesses
        activity[_BPRED] += 1
        tally[_BPRED] += 1
        opcode = instr.opcode
        stop_after = False

        if instr.is_cond_branch:
            stats.cond_branches_fetched += 1
            prediction = self.bpred.predict(instr.pc)
            instr.predicted_taken = prediction.taken
            instr.bpred_snapshot = prediction.snapshot
            instr.mispredicted = prediction.taken != actual_taken
            instr.ras_checkpoint = self.ras.checkpoint()
            if self.confidence is not None:
                self.confidence.set_actual(actual_taken)
                level = self.confidence.estimate(
                    instr.pc, prediction, self.bpred,
                    update_state=not instr.on_wrong_path,
                )
                instr.confidence = level
                self.controller.on_branch_fetched(instr, level)
            if prediction.taken and self.btb.lookup(instr.pc) is None:
                # Taken prediction without a cached target: one-cycle bubble.
                stop_after = True
            self._advance_after_cond(instr, on_true, next_cursor)
            if instr.mispredicted:
                self._unresolved_mispredicts += 1
                stop_after = True if self.controller.blocks_wrong_path_fetch else stop_after
        else:
            # Unconditional control: never mispredicts in this model.
            instr.predicted_taken = True
            instr.ras_checkpoint = self.ras.checkpoint()
            if opcode is Opcode.CALL:
                self.ras.push(instr.pc + 4)
            elif opcode is Opcode.RET:
                self.ras.pop()
            self.btb.update(instr.pc, 0 if actual_target < 0
                            else self.program.block(actual_target).address)
            if on_true:
                self._true_index += 1
            else:
                self._wp_cursor = next_cursor
        return stop_after

    def _advance_after_cond(
        self, instr: DynamicInstruction, on_true: bool, next_cursor
    ) -> None:
        """Advance the fetch cursor along the *predicted* direction and
        store the recovery cursor for the *actual* direction."""
        block = self.program.block(instr.static.block_id)
        predicted_target = block.taken_target if instr.predicted_taken else block.fall_target

        if on_true:
            resume_index = self._true_index + 1
            instr.resume_mode = "true"
            instr.resume_true_index = resume_index
            if instr.mispredicted:
                # Diverge onto the wrong path at the predicted target.
                self._wp_salt += 1
                self._fetch_mode = "wrong"
                self._wp_cursor = self.navigator.start_cursor(
                    predicted_target, self._wp_salt * 8191 + instr.seq
                )
                self._true_index = resume_index
            else:
                self._true_index = resume_index
        else:
            instr.resume_mode = "wrong"
            instr.resume_wp_cursor = next_cursor
            if instr.mispredicted:
                # Redirect this wrong path along its own predicted direction.
                _, _, stack, step = next_cursor
                self._wp_cursor = (predicted_target, 0, stack, step)
            else:
                self._wp_cursor = next_cursor
