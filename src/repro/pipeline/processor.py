"""The cycle-level out-of-order processor kernel.

One :class:`Processor` couples synthetic programs to the Table-3
microarchitecture and a speculation controller (baseline, Selective
Throttling, Pipeline Gating or an oracle).  The per-cycle loop is a
**stage pipeline**: five components from :mod:`repro.pipeline.stages`
(fetch, decode+rename, select/issue, execute/writeback, commit+recover)
with explicit latch interfaces, driven in reverse pipeline order by a
:class:`~repro.pipeline.stages.scheduler.CycleScheduler`::

    commit -> writeback/resolve -> issue/select -> rename/dispatch
           -> decode -> fetch -> power accounting

**Wrong-path execution is real**: the front-end walks the program CFG along
its *predictions*; a misprediction sends it down the wrong target, fetching,
decoding and executing real wrong-path code until the branch resolves at
execute, squashes younger instructions and redirects fetch.  Squashed
instructions carry their per-unit access tallies into the power model's
wasted pool — that is what reproduces the paper's Table 1.

**Hardware threads.** All per-thread state — the front-end cursors, the
branch predictor, confidence estimator, BTB, RAS, the in-order latches, and
the thread's back-end partition (ROB/IQ/LSQ/renamer) — lives in a
:class:`ThreadContext`.  The kernel drives a list of contexts sharing the
functional units, memory hierarchy, power model and cycle counter; the
classic single-program constructor builds exactly one context, so the
baseline machine is the one-thread instantiation of the same kernel.
:class:`repro.smt.core.SmtProcessor` instantiates several contexts plus a
fetch policy to model an SMT core.

Occupancy that other components need every cycle — total ROB/IQ/LSQ
entries across threads (the shared-capacity caps of an SMT core, and the
ROB occupancy that drives clock-tree power) — is maintained
**incrementally** on the kernel (``rob_count``/``iq_count``/``lsq_count``)
by the stages that move instructions, instead of re-summing the threads'
structures every cycle.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.bpred.base import BranchPredictor
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.btb import BranchTargetBuffer
from repro.bpred.gshare import GSharePredictor
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.perceptron import PerceptronPredictor
from repro.bpred.ras import ReturnAddressStack
from repro.bpred.static import StaticPredictor
from repro.bpred.twolevel import LocalTwoLevelPredictor
from repro.confidence.base import ConfidenceEstimator
from repro.confidence.bpru import BPRUEstimator
from repro.confidence.jrs import JRSEstimator
from repro.confidence.perfect import PerfectEstimator
from repro.confidence.selfconf import (
    CounterConfidenceEstimator,
    PerceptronConfidenceEstimator,
)
from repro.core.throttler import NullController, SpeculationController
from repro.errors import ConfigurationError, SimulationError
from repro.frontend.supply import CompiledSupply, InstructionSupply
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.arrays import CompletionWheel, LatchArray, completion_span
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.iq import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.renamer import RegisterRenamer
from repro.pipeline.resources import FunctionalUnitPool
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.stages.latch import CompletionLatch, PipeLatch
from repro.pipeline.stages.scheduler import CycleScheduler
from repro.pipeline.stats import SimStats
from repro.power.model import ClockGatingStyle, PowerModel
from repro.power.units import UnitPowerTable
from repro.program.cfg import Program
from repro.telemetry.probes import ProbeBus

# Address-space separation between hardware threads: programs are generated
# over the same synthetic address ranges, so each thread's code and data are
# offset into a private region — two threads must contend for cache sets,
# never alias onto the same lines.  The stride carries a line-aligned,
# non-power-of-2 skew: a pure power-of-2 stride is a multiple of every
# cache's way size, which would map all threads' hottest lines onto the
# same sets and thrash an N>ways mix before a single instruction commits.
# Thread 0's offset is zero, keeping the single-thread machine
# bit-identical to the pre-SMT model.
THREAD_ADDRESS_STRIDE = 0x4000_0000 + 0x2480


def build_predictor(config: ProcessorConfig) -> BranchPredictor:
    """Instantiate the direction predictor named by the configuration."""
    kind = config.bpred_kind
    if kind == "gshare":
        return GSharePredictor(config.bpred_size_kb)
    if kind == "bimodal":
        return BimodalPredictor(config.bpred_size_kb)
    if kind == "local2level":
        return LocalTwoLevelPredictor()
    if kind == "hybrid":
        return HybridPredictor(config.bpred_size_kb)
    if kind == "perceptron":
        return PerceptronPredictor(config.bpred_size_kb)
    if kind == "static":
        return StaticPredictor()
    raise ConfigurationError(f"unknown predictor kind {kind!r}")


def build_estimator(config: ProcessorConfig) -> Optional[ConfidenceEstimator]:
    """Instantiate the confidence estimator named by the configuration."""
    kind = config.confidence_kind
    if kind == "bpru":
        return BPRUEstimator(config.confidence_size_kb)
    if kind == "jrs":
        return JRSEstimator(config.confidence_size_kb, config.jrs_threshold)
    if kind == "perfect":
        return PerfectEstimator()
    if kind == "perceptron-self":
        return PerceptronConfidenceEstimator()
    if kind == "counter-self":
        return CounterConfidenceEstimator()
    if kind == "none":
        return None
    raise ConfigurationError(f"unknown confidence kind {kind!r}")


_BASE = SpeculationController


class ThreadContext:
    """Everything one hardware thread owns.

    Front-end: program, prediction structures, fetch cursors and the two
    in-order latches.  Back-end partition: renamer, ROB, IQ and LSQ (each
    thread commits in its own program order and recovers its own branch
    mispredictions, so these are private; capacity sharing across threads
    is enforced by the kernel's shared caps when configured).  The
    per-thread counters feed the SMT fairness/throughput metrics and reset
    with the measured window.

    The ``ctrl_*`` flags cache which :class:`SpeculationController` hooks
    the thread's controller actually overrides, so the stage hot loops
    skip the no-op base-class calls of the unthrottled baseline entirely.

    Slotted: the fetch cursors and measured counters are touched every
    cycle by the stage kernel.
    """

    __slots__ = (
        "thread_id", "program", "controller", "seed", "mem_offset",
        "bpred", "confidence", "btb", "ras", "supply",
        "ctrl_gates_fetch", "ctrl_blocks_decode", "ctrl_blocks_selection",
        "ctrl_has_fetch_hook", "ctrl_has_resolve_hook",
        "ctrl_has_squash_hook", "ctrl_blocks_wp_fetch",
        "fetch_mode", "true_index", "wp_cursor", "wp_packet", "wp_pos",
        "wp_template", "run_queue",
        "wp_salt", "fetch_stall_until", "unresolved_mispredicts",
        "fetch_buffer", "fetch_latch", "decode_latch", "fetch_entries",
        "decode_entries", "renamer", "rob", "rob_entries", "iq", "lsq",
        "last_committed_true_index", "commits_since_prune",
        "lowconf_inflight", "committed", "fetched", "fetched_wrong_path",
        "squashed", "cond_branches_committed", "mispredictions_committed",
        "fetch_cycles", "policy_gated_cycles",
    )

    def __init__(
        self,
        thread_id: int,
        config: ProcessorConfig,
        program: Program,
        controller: SpeculationController,
        seed: int,
        rob_size: int,
        iq_size: int,
        lsq_size: int,
        fetch_buffer: int,
        supply: Optional[InstructionSupply] = None,
    ) -> None:
        self.thread_id = thread_id
        self.program = program
        self.controller = controller
        self.seed = seed
        self.mem_offset = thread_id * THREAD_ADDRESS_STRIDE

        self.bpred = build_predictor(config)
        self.confidence = build_estimator(config)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_depth)
        # The front-end instruction source: pre-lowered block packets by
        # default; a pre-built LiveSupply or TraceSupply may be injected
        # (trace replay, supply-parity profiling).
        self.supply = supply if supply is not None else CompiledSupply(program, seed)

        # Controller capability flags (see class docstring).
        ctrl_type = type(controller)
        self.ctrl_gates_fetch = ctrl_type.fetch_allowed is not _BASE.fetch_allowed
        self.ctrl_blocks_decode = (
            ctrl_type.blocks_decode is not _BASE.blocks_decode
        )
        self.ctrl_blocks_selection = (
            ctrl_type.blocks_selection is not _BASE.blocks_selection
        )
        self.ctrl_has_fetch_hook = (
            ctrl_type.on_branch_fetched is not _BASE.on_branch_fetched
        )
        self.ctrl_has_resolve_hook = (
            ctrl_type.on_branch_resolved is not _BASE.on_branch_resolved
        )
        self.ctrl_has_squash_hook = (
            ctrl_type.on_branch_squashed is not _BASE.on_branch_squashed
        )
        # Constant per controller instance (oracle-fetch mode).
        self.ctrl_blocks_wp_fetch = controller.blocks_wrong_path_fetch

        # Fetch state.  On the wrong path the thread consumes one supply
        # packet at a time: ``wp_packet``/``wp_pos`` hold the in-progress
        # packet (``wp_cursor`` is the continuation once it drains).
        # Whoever re-points ``wp_cursor`` outside the fetch loop (branch
        # recovery) must clear ``wp_packet``.
        self.fetch_mode = "true"
        self.true_index = 0
        self.wp_cursor = None
        self.wp_packet = None
        self.wp_pos = 0
        # Run batching (array kernel): the template of the in-progress
        # wrong-path packet, and the queue of (first_seq, count, mem_count,
        # src_count) run descriptors fetch pushed for rename to consume.
        # Descriptors only ever name latch-resident instructions; branch
        # recovery squashes the latches wholesale and clears the queue.
        self.wp_template = None
        self.run_queue = deque()
        self.wp_salt = 0
        self.fetch_stall_until = 0
        self.unresolved_mispredicts = 0
        self.fetch_buffer = fetch_buffer

        # In-order front-end latches (fetch->decode, decode->rename),
        # built to match the configured stage-kernel representation: flat
        # instrs/stamps columns for the array kernel, per-instruction
        # deques for the pinned object kernel.  The backing containers
        # are mutated in place and never rebound, so the stage hot loops
        # alias them directly.  ``fetch_entries``/``decode_entries`` stay
        # the public iteration/len view either way (probes, tests).
        if config.kernel == "object":
            self.fetch_latch = PipeLatch()
            self.decode_latch = PipeLatch()
            self.fetch_entries = self.fetch_latch.entries
            self.decode_entries = self.decode_latch.entries
        else:
            self.fetch_latch = LatchArray()
            self.decode_latch = LatchArray()
            self.fetch_entries = self.fetch_latch
            self.decode_entries = self.decode_latch

        # Back-end partition.
        self.renamer = RegisterRenamer()
        self.rob = ReorderBuffer(rob_size)
        self.rob_entries = self.rob.entries  # stable deque, aliased hot
        self.iq = IssueQueue(iq_size)
        self.lsq = LoadStoreQueue(lsq_size)

        self.last_committed_true_index = 0
        self.commits_since_prune = 0

        # Fetch-gating signal: conditional branches in flight whose
        # confidence label was low (LC/VLC).  SMT fetch policies read it.
        self.lowconf_inflight = 0

        # Measured-window counters (reset with the measurement window).
        self.committed = 0
        self.fetched = 0
        self.fetched_wrong_path = 0
        self.squashed = 0
        self.cond_branches_committed = 0
        self.mispredictions_committed = 0
        self.fetch_cycles = 0
        self.policy_gated_cycles = 0

    @property
    def front_end_occupancy(self) -> int:
        """Instructions currently in the in-order front-end latches."""
        return len(self.fetch_latch) + len(self.decode_latch)

    @property
    def in_flight(self) -> int:
        """ICOUNT-style pre-issue occupancy (latches + issue queue)."""
        return self.front_end_occupancy + self.iq.count

    def reset_measurement(self) -> None:
        """Zero the measured-window counters; keep microarchitectural state."""
        self.committed = 0
        self.fetched = 0
        self.fetched_wrong_path = 0
        self.squashed = 0
        self.cond_branches_committed = 0
        self.mispredictions_committed = 0
        self.fetch_cycles = 0
        self.policy_gated_cycles = 0


class Processor:
    """Cycle-level model of the paper's simulated machine.

    The classic constructor builds a one-thread machine around a single
    program — bit-identical to the pre-refactor monolithic core (the
    golden-fingerprint sweep in ``tests/test_stage_kernel_parity.py``
    enforces it).  Subclasses (the SMT core) populate ``self.threads``
    with several contexts and set ``self.fetch_policy`` before calling
    :meth:`_finish_threads`, which instantiates the stage scheduler.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        program: Program,
        controller: Optional[SpeculationController] = None,
        power_table: Optional[UnitPowerTable] = None,
        clock_gating: ClockGatingStyle = ClockGatingStyle.CC3,
        seed: int = 1,
        supply: Optional[InstructionSupply] = None,
    ) -> None:
        self._init_shared(config, power_table, clock_gating)
        self.seed = seed
        self.threads: List[ThreadContext] = [
            ThreadContext(
                0,
                config,
                program,
                controller or NullController(),
                seed,
                rob_size=config.rob_size,
                iq_size=config.iq_size,
                lsq_size=config.lsq_size,
                fetch_buffer=config.effective_fetch_buffer,
                supply=supply,
            )
        ]
        self._finish_threads()

    def _init_shared(
        self,
        config: ProcessorConfig,
        power_table: Optional[UnitPowerTable],
        clock_gating: ClockGatingStyle,
        attribute_threads: bool = False,
    ) -> None:
        """Initialise state shared by every hardware thread."""
        self.config = config
        self.memory = MemoryHierarchy(
            icache_kb=config.icache_kb,
            dcache_kb=config.dcache_kb,
            l1_ways=config.l1_ways,
            l2_kb=config.l2_kb,
            l2_ways=config.l2_ways,
            line_bytes=config.line_bytes,
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
            tlb_entries=config.tlb_entries,
            extra_dcache_latency=config.extra_dcache_latency,
        )
        self._power_table = power_table
        self._clock_gating = clock_gating
        self._attribute_threads = attribute_threads
        self.power = PowerModel(
            power_table, clock_gating, attribute_threads=attribute_threads
        )

        self.cycle = 0
        # Global fetch-order sequence (tags, select order, squash ages).
        self.seq = 0

        self.fu_pool = FunctionalUnitPool(config)
        # Execute -> writeback latch: a power-of-2 timing ring for the
        # array kernel, the original dict of buckets for the pinned
        # object kernel.
        if config.kernel == "object":
            self.completions = CompletionLatch()
        else:
            self.completions = CompletionWheel(
                completion_span(config, self.memory.tlb.miss_penalty)
            )

        # Incremental occupancy: total ROB/IQ/LSQ entries over all threads,
        # updated by the stages at dispatch/issue/commit/squash.
        self.rob_count = 0
        self.iq_count = 0
        self.lsq_count = 0

        self.stats = SimStats()
        # SMT hooks; the single-thread machine leaves them inert.
        self.fetch_policy = None
        self.shared_caps: Optional[Tuple[int, int, int]] = None
        # Optional observer with on_commit(instr, cycle) / on_squash(instr,
        # cycle) callbacks (see repro.tracing); None costs nothing.
        self.observer = None
        # The telemetry probe bus; built in _finish_threads when
        # config.telemetry is set, None otherwise (and then never read:
        # only the instrumented steppers touch it).
        self.probes = None

    def _finish_threads(self) -> None:
        """Derived totals and the stage kernel; call once ``self.threads``
        is populated."""
        if self.shared_caps is not None:
            # Shared back-end: every thread's ROB is full-size but the
            # dispatch cap bounds total in-flight — occupancy (which
            # drives clock-tree power) is over the *shared* capacity.
            self.total_rob_size = self.shared_caps[0]
        else:
            self.total_rob_size = sum(thread.rob.size for thread in self.threads)
        if self.config.kernel == "object":
            # The pinned pre-array snapshot (A/B benchmarking and the
            # kernel-equivalence tests); lazy import keeps it off the
            # default path entirely.
            from repro.pipeline.stages.objectkernel import ObjectCycleScheduler

            self.scheduler = ObjectCycleScheduler(self)
        else:
            self.scheduler = CycleScheduler(self)
        # Sanitize/telemetry dispatch is chosen once here, so the
        # per-cycle loops carry no mode branch and a run with both
        # modes off costs nothing extra.
        if self.config.telemetry:
            self.probes = ProbeBus(self)
            self._step = (
                self.scheduler.step_instrumented_sanitized
                if self.config.sanitize
                else self.scheduler.step_instrumented
            )
        else:
            self._step = (
                self.scheduler.step_sanitized
                if self.config.sanitize
                else self.scheduler.step
            )

    # ------------------------------------------------------------------
    # Single-thread aliases (the overwhelmingly common configuration)
    # ------------------------------------------------------------------

    @property
    def program(self) -> Program:
        return self.threads[0].program

    @property
    def controller(self) -> SpeculationController:
        return self.threads[0].controller

    @property
    def bpred(self) -> BranchPredictor:
        return self.threads[0].bpred

    @property
    def confidence(self) -> Optional[ConfidenceEstimator]:
        return self.threads[0].confidence

    @property
    def btb(self) -> BranchTargetBuffer:
        return self.threads[0].btb

    @property
    def ras(self) -> ReturnAddressStack:
        return self.threads[0].ras

    @property
    def supply(self) -> InstructionSupply:
        """Thread 0's instruction supply (true path + wrong-path packets).

        Exposes the seed oracle's true-path surface (``get`` /
        ``prune_before``), so trace recorders and calibration code that
        used to take the oracle run on it unchanged.
        """
        return self.threads[0].supply

    @property
    def renamer(self) -> RegisterRenamer:
        return self.threads[0].renamer

    @property
    def rob(self) -> ReorderBuffer:
        return self.threads[0].rob

    @property
    def iq(self) -> IssueQueue:
        return self.threads[0].iq

    @property
    def lsq(self) -> LoadStoreQueue:
        return self.threads[0].lsq

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    def run(self, max_instructions: int, warmup_instructions: int = 0) -> SimStats:
        """Simulate until ``max_instructions`` commit in the measured window.

        ``warmup_instructions`` commit first with statistics discarded
        (microarchitectural state — caches, predictor, estimator — is kept,
        as in any sampled simulation methodology).
        """
        if max_instructions <= 0:
            raise SimulationError("max_instructions must be positive")
        if warmup_instructions:
            self._run_until(warmup_instructions)
            self.reset_measurement()
        self._run_until(max_instructions)
        return self.stats

    def reset_measurement(self) -> None:
        """Zero statistics and energy; keep all microarchitectural state."""
        self.stats = SimStats()
        self.power = PowerModel(
            self._power_table, self._clock_gating,
            attribute_threads=self._attribute_threads,
        )
        self.memory.reset_stats()
        for thread in self.threads:
            thread.reset_measurement()
        if self.probes is not None:
            self.probes.reset()

    def _run_until(self, instructions: int) -> None:
        stats = self.stats
        base = stats.committed
        target = base + instructions
        limit = self.cycle + instructions * 400 + 100_000
        step = self._step
        while stats.committed < target:
            step()
            if self.cycle > limit:
                raise SimulationError(
                    f"no forward progress: {stats.committed - base} of "
                    f"{instructions} instructions after {self.cycle} cycles"
                )

    def step(self) -> None:
        """Advance the machine by one cycle."""
        self._step()
