"""Cycle-level out-of-order pipeline model (the Wattch/sim-outorder stand-in).

The :class:`~repro.pipeline.processor.Processor` wires the Table-3
microarchitecture: an 8-wide front-end of configurable depth, rename with
per-branch checkpoints, a wakeup/select issue queue honouring the no-select
bit, a ROB/LSQ back-end, full wrong-path fetch and execution, and per-cycle
power accounting.
"""

from repro.pipeline.config import ProcessorConfig, table3_config
from repro.pipeline.processor import Processor
from repro.pipeline.stats import SimStats

__all__ = ["ProcessorConfig", "table3_config", "Processor", "SimStats"]
