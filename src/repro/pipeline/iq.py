"""Issue queue: wakeup and select with the no-select bit.

Dispatch inserts renamed instructions with their pending source tags;
completion broadcasts a tag, waking dependents (CAM-style wakeup, the left
half of the paper's Figure 2).  Select walks ready instructions oldest
first and issues up to the machine width, honouring functional-unit slots
and asking the speculation controller whether an instruction's request
signal is suppressed — the paper's no-select bit (Figure 2 right).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.pipeline.resources import FunctionalUnitPool


class IssueQueue:
    """Out-of-order window between dispatch and execute."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SimulationError("issue queue size must be positive")
        self.size = size
        self._count = 0
        # Ready, unissued instructions in arrival (~program) order.
        self._ready: List[DynamicInstruction] = []
        # Tag -> instructions waiting on it.
        self._waiters: Dict[int, List[DynamicInstruction]] = {}
        self.wakeup_broadcasts = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        """True when dispatch must stall."""
        return self._count >= self.size

    def dispatch(self, instruction: DynamicInstruction, wait_tags) -> None:
        """Insert a renamed instruction with its pending source tags."""
        if self.full:
            raise SimulationError("dispatch into a full issue queue")
        self._count += 1
        pending = 0
        for tag in wait_tags:
            pending += 1
            self._waiters.setdefault(tag, []).append(instruction)
        instruction.ready_sources = pending
        if pending == 0:
            self._ready.append(instruction)

    def wakeup(self, tag: int) -> int:
        """Broadcast a completed tag; returns the number of comparisons."""
        waiters = self._waiters.pop(tag, None)
        if not waiters:
            return 0
        woken = 0
        for instruction in waiters:
            if instruction.squashed or instruction.issued:
                continue
            instruction.ready_sources -= 1
            if instruction.ready_sources == 0:
                self._ready.append(instruction)
            woken += 1
        self.wakeup_broadcasts += 1
        return woken

    def select(
        self,
        issue_width: int,
        fu_pool: FunctionalUnitPool,
        blocks_selection: Callable[[DynamicInstruction], bool],
    ) -> List[DynamicInstruction]:
        """Pick up to ``issue_width`` ready instructions, oldest first."""
        ready = self._ready
        if not ready:
            return []
        ready.sort(key=lambda instruction: instruction.seq)
        selected: List[DynamicInstruction] = []
        survivors: List[DynamicInstruction] = []
        for instruction in ready:
            if instruction.squashed or instruction.issued:
                continue
            if len(selected) >= issue_width:
                survivors.append(instruction)
                continue
            if blocks_selection(instruction):
                survivors.append(instruction)
                continue
            if not fu_pool.try_claim(instruction.op_class):
                survivors.append(instruction)
                continue
            instruction.issued = True
            self._count -= 1
            selected.append(instruction)
        self._ready = survivors
        return selected

    def squash_younger(self, seq: int) -> None:
        """Drop every queued instruction younger than ``seq``.

        Entries are removed lazily from the waiter lists (their ``squashed``
        flag makes wakeup skip them); the ready list and the occupancy count
        are repaired eagerly.
        """
        kept_ready = [
            instruction
            for instruction in self._ready
            if instruction.seq <= seq and not instruction.squashed
        ]
        self._ready = kept_ready

    def note_squashed(self, instruction: DynamicInstruction) -> None:
        """Account the removal of one squashed, unissued instruction."""
        if not instruction.issued:
            self._count -= 1
            if self._count < 0:
                raise SimulationError("issue queue count went negative")

    def forget_tag(self, tag: int) -> None:
        """Drop the waiter list of a squashed producer."""
        self._waiters.pop(tag, None)
