"""Issue queue: wakeup and select with the no-select bit.

Dispatch inserts renamed instructions with their pending source tags;
completion broadcasts a tag, waking dependents (CAM-style wakeup, the left
half of the paper's Figure 2).  Select walks ready instructions oldest
first and issues up to the machine width, honouring functional-unit slots
and asking the speculation controller whether an instruction's request
signal is suppressed — the paper's no-select bit (Figure 2 right).
"""

from __future__ import annotations

from operator import attrgetter
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.pipeline.resources import FunctionalUnitPool

_BY_SEQ = attrgetter("seq")


class IssueQueue:
    """Out-of-order window between dispatch and execute."""

    __slots__ = ("size", "count", "ready_list", "waiters",
                 "wakeup_broadcasts", "ready_sorted")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SimulationError("issue queue size must be positive")
        self.size = size
        # The queue state is public: the rename/dispatch and select/issue
        # stage hot loops manipulate it in place (with this class's
        # methods as the reference semantics for every mutation).
        # Occupancy.
        self.count = 0
        # Ready, unissued instructions in arrival (~program) order.
        self.ready_list: List[DynamicInstruction] = []
        # True while ``ready_list`` is known to be in ascending fetch
        # order.  Dispatch appends are seq-monotonic and select rebuilds
        # the list in sorted order, so only a wakeup (which may ready an
        # *older* waiter) can unsort it — select then skips its per-cycle
        # sort whenever the flag still holds.
        self.ready_sorted = True
        # Tag -> instructions waiting on it.
        self.waiters: Dict[int, List[DynamicInstruction]] = {}
        self.wakeup_broadcasts = 0

    def __len__(self) -> int:
        return self.count

    @property
    def full(self) -> bool:
        """True when dispatch must stall."""
        return self.count >= self.size

    def dispatch(self, instruction: DynamicInstruction, wait_tags) -> None:
        """Insert a renamed instruction with its pending source tags."""
        if self.count >= self.size:
            raise SimulationError("dispatch into a full issue queue")
        self.count += 1
        pending = 0
        waiters = self.waiters
        for tag in wait_tags:
            pending += 1
            bucket = waiters.get(tag)
            if bucket is None:
                waiters[tag] = [instruction]
            else:
                bucket.append(instruction)
        instruction.ready_sources = pending
        if pending == 0:
            self.ready_list.append(instruction)
            # The pipeline's inlined dispatch appends in fetch order and
            # keeps the sorted flag; this standalone API accepts any
            # order, so stay conservative.
            self.ready_sorted = False

    def wakeup(self, tag: int) -> int:
        """Broadcast a completed tag; returns the number of comparisons."""
        waiters = self.waiters.pop(tag, None)
        if not waiters:
            return 0
        woken = 0
        ready = self.ready_list
        for instruction in waiters:
            if instruction.squashed or instruction.issued:
                continue
            instruction.ready_sources -= 1
            if instruction.ready_sources == 0:
                ready.append(instruction)
                self.ready_sorted = False
            woken += 1
        self.wakeup_broadcasts += 1
        return woken

    def select(
        self,
        issue_width: int,
        fu_pool: FunctionalUnitPool,
        blocks_selection: Optional[Callable[[DynamicInstruction], bool]] = None,
    ) -> List[DynamicInstruction]:
        """Pick up to ``issue_width`` ready instructions, oldest first.

        ``blocks_selection`` is the controller's no-select hook; ``None``
        means no controller suppresses request signals (the baseline), so
        the per-instruction call is skipped entirely.
        """
        ready = self.ready_list
        if not ready:
            return []
        if not self.ready_sorted and len(ready) > 1:
            ready.sort(key=_BY_SEQ)
        self.ready_sorted = True
        try_claim_code = fu_pool.try_claim_code
        selected: List[DynamicInstruction] = []
        survivors: List[DynamicInstruction] = []
        for instruction in ready:
            if instruction.squashed or instruction.issued:
                continue
            if len(selected) >= issue_width:
                survivors.append(instruction)
                continue
            if blocks_selection is not None and blocks_selection(instruction):
                survivors.append(instruction)
                continue
            if not try_claim_code(instruction.static.fu_code):
                survivors.append(instruction)
                continue
            instruction.issued = True
            self.count -= 1
            selected.append(instruction)
        self.ready_list = survivors
        return selected

    def squash_younger(self, seq: int) -> None:
        """Drop every queued instruction younger than ``seq``.

        Entries are removed lazily from the waiter lists (their ``squashed``
        flag makes wakeup skip them); the ready list and the occupancy count
        are repaired eagerly.
        """
        kept_ready = [
            instruction
            for instruction in self.ready_list
            if instruction.seq <= seq and not instruction.squashed
        ]
        self.ready_list = kept_ready

    def note_squashed(self, instruction: DynamicInstruction) -> None:
        """Account the removal of one squashed, unissued instruction."""
        if not instruction.issued:
            self.count -= 1
            if self.count < 0:
                raise SimulationError("issue queue count went negative")

    def forget_tag(self, tag: int) -> None:
        """Drop the waiter list of a squashed producer."""
        self.waiters.pop(tag, None)
