"""Issue queue: wakeup and select with the no-select bit.

Dispatch inserts renamed instructions with their pending source tags;
completion broadcasts a tag, waking dependents (CAM-style wakeup, the left
half of the paper's Figure 2).  Select walks ready instructions oldest
first and issues up to the machine width, honouring functional-unit slots
and asking the speculation controller whether an instruction's request
signal is suppressed — the paper's no-select bit (Figure 2 right).
"""

from __future__ import annotations

from operator import attrgetter
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.pipeline.resources import FunctionalUnitPool

_BY_SEQ = attrgetter("seq")


class IssueQueue:
    """Out-of-order window between dispatch and execute."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SimulationError("issue queue size must be positive")
        self.size = size
        # The queue state is public: the rename/dispatch and select/issue
        # stage hot loops manipulate it in place (with this class's
        # methods as the reference semantics for every mutation).
        # Occupancy.
        self.count = 0
        # Ready, unissued instructions in arrival (~program) order.
        self.ready_list: List[DynamicInstruction] = []
        # Tag -> instructions waiting on it.
        self.waiters: Dict[int, List[DynamicInstruction]] = {}
        self.wakeup_broadcasts = 0

    def __len__(self) -> int:
        return self.count

    @property
    def full(self) -> bool:
        """True when dispatch must stall."""
        return self.count >= self.size

    def dispatch(self, instruction: DynamicInstruction, wait_tags) -> None:
        """Insert a renamed instruction with its pending source tags."""
        if self.count >= self.size:
            raise SimulationError("dispatch into a full issue queue")
        self.count += 1
        pending = 0
        waiters = self.waiters
        for tag in wait_tags:
            pending += 1
            bucket = waiters.get(tag)
            if bucket is None:
                waiters[tag] = [instruction]
            else:
                bucket.append(instruction)
        instruction.ready_sources = pending
        if pending == 0:
            self.ready_list.append(instruction)

    def wakeup(self, tag: int) -> int:
        """Broadcast a completed tag; returns the number of comparisons."""
        waiters = self.waiters.pop(tag, None)
        if not waiters:
            return 0
        woken = 0
        ready = self.ready_list
        for instruction in waiters:
            if instruction.squashed or instruction.issued:
                continue
            instruction.ready_sources -= 1
            if instruction.ready_sources == 0:
                ready.append(instruction)
            woken += 1
        self.wakeup_broadcasts += 1
        return woken

    def select(
        self,
        issue_width: int,
        fu_pool: FunctionalUnitPool,
        blocks_selection: Optional[Callable[[DynamicInstruction], bool]] = None,
    ) -> List[DynamicInstruction]:
        """Pick up to ``issue_width`` ready instructions, oldest first.

        ``blocks_selection`` is the controller's no-select hook; ``None``
        means no controller suppresses request signals (the baseline), so
        the per-instruction call is skipped entirely.
        """
        ready = self.ready_list
        if not ready:
            return []
        if len(ready) > 1:
            ready.sort(key=_BY_SEQ)
        try_claim_code = fu_pool.try_claim_code
        selected: List[DynamicInstruction] = []
        survivors: List[DynamicInstruction] = []
        for instruction in ready:
            if instruction.squashed or instruction.issued:
                continue
            if len(selected) >= issue_width:
                survivors.append(instruction)
                continue
            if blocks_selection is not None and blocks_selection(instruction):
                survivors.append(instruction)
                continue
            if not try_claim_code(instruction.static.fu_code):
                survivors.append(instruction)
                continue
            instruction.issued = True
            self.count -= 1
            selected.append(instruction)
        self.ready_list = survivors
        return selected

    def squash_younger(self, seq: int) -> None:
        """Drop every queued instruction younger than ``seq``.

        Entries are removed lazily from the waiter lists (their ``squashed``
        flag makes wakeup skip them); the ready list and the occupancy count
        are repaired eagerly.
        """
        kept_ready = [
            instruction
            for instruction in self.ready_list
            if instruction.seq <= seq and not instruction.squashed
        ]
        self.ready_list = kept_ready

    def note_squashed(self, instruction: DynamicInstruction) -> None:
        """Account the removal of one squashed, unissued instruction."""
        if not instruction.issued:
            self.count -= 1
            if self.count < 0:
                raise SimulationError("issue queue count went negative")

    def forget_tag(self, tag: int) -> None:
        """Drop the waiter list of a squashed producer."""
        self.waiters.pop(tag, None)
