"""Functional-unit issue slots and miss-status registers.

Units are fully pipelined (SimpleScalar's defaults for everything the
SPECint workloads exercise), so the per-cycle constraint is issue slots per
class: 8 integer ALUs, 2 integer multipliers, 2 memory ports, 8 FP adders,
1 FP multiplier (Table 3).

Cache misses additionally occupy a miss-status register (MSHR) until the
fill returns, and a squash does **not** cancel an in-flight fill — exactly
like real hardware.  This is the channel through which wrong-path loads
"waste resources and may delay the execution of correct ones" (paper §3):
a wrong-path load that misses to memory holds an MSHR for tens of cycles
after the branch resolved, stalling true-path loads issued after recovery.

The select loop claims slots through :meth:`try_claim_code` with the
instruction's precomputed ``fu_code`` (see :mod:`repro.isa.opcodes`): an
int-indexed list instead of an enum-keyed dict, because this is one of the
hottest calls in the simulator.  :meth:`try_claim` remains as the
enum-friendly wrapper.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from repro.isa.opcodes import (
    FU_MEM_READ,
    FU_MEM_WRITE,
    NUM_FU_CODES,
    OpClass,
    fu_code_of,
)
from repro.pipeline.config import ProcessorConfig


class FunctionalUnitPool:
    """Per-cycle issue slots by operation class, plus the MSHR ledger."""

    __slots__ = (
        "_capacity", "_code_capacity", "_code_available",
        "_mem_capacity", "_mem_available", "_mshr_count", "_mshr_release",
    )

    def __init__(self, config: ProcessorConfig) -> None:
        self._capacity: Dict[OpClass, int] = {
            OpClass.INT_ALU: config.int_alu,
            OpClass.INT_MULT: config.int_mult,
            OpClass.MEM_READ: config.mem_ports,
            OpClass.MEM_WRITE: config.mem_ports,
            OpClass.FP_ALU: config.fp_alu,
            OpClass.FP_MULT: config.fp_mult,
            # Branches resolve on the integer ALUs.
            OpClass.BRANCH: config.int_alu,
            OpClass.NOP: config.issue_width,
        }
        # Issue slots indexed by fu code (branches fold into INT_ALU's
        # entry via fu_code_of; the two memory codes share _mem_available).
        self._code_capacity: List[int] = [0] * NUM_FU_CODES
        for op_class, slots in self._capacity.items():
            self._code_capacity[fu_code_of(op_class)] = slots
        self._code_available: List[int] = list(self._code_capacity)
        # Loads and stores share the memory ports.
        self._mem_capacity = config.mem_ports
        self._mem_available = config.mem_ports
        self._mshr_count = config.mshr_count
        self._mshr_release: List[int] = []  # fill-completion cycles (heap)

    def new_cycle(self, cycle: int = 0) -> None:
        """Refresh all slots at the start of a cycle; retire finished fills.

        The availability list is refreshed *in place*, so hot-loop
        aliases of ``_code_available`` stay valid across cycles.
        """
        self._code_available[:] = self._code_capacity
        self._mem_available = self._mem_capacity
        release = self._mshr_release
        if release:
            while release and release[0] <= cycle:
                heapq.heappop(release)

    def try_claim_code(self, code: int) -> bool:
        """Claim one slot of precomputed fu code ``code``; False if none."""
        if code == FU_MEM_READ:
            if self._mem_available <= 0:
                return False
            if len(self._mshr_release) >= self._mshr_count:
                return False  # a new load could miss; no MSHR to receive it
            self._mem_available -= 1
            return True
        if code == FU_MEM_WRITE:
            if self._mem_available <= 0:
                return False
            self._mem_available -= 1
            return True
        available = self._code_available
        if available[code] <= 0:
            return False
        available[code] -= 1
        return True

    def try_claim(self, op_class: OpClass) -> bool:
        """Claim one slot of ``op_class``; False if none remain."""
        return self.try_claim_code(fu_code_of(op_class))

    @property
    def mshr_free(self) -> bool:
        """True while at least one miss-status register is available."""
        return len(self._mshr_release) < self._mshr_count

    @property
    def mshr_busy_count(self) -> int:
        """Number of outstanding fills."""
        return len(self._mshr_release)

    def hold_mshr(self, until_cycle: int) -> None:
        """Occupy one MSHR until ``until_cycle`` (a miss left for fill).

        Fills outlive squashes: the pipeline calls this for wrong-path
        misses too, and nothing ever cancels an allocated entry early.
        """
        heapq.heappush(self._mshr_release, until_cycle)

    def capacity(self, op_class: OpClass) -> int:
        """Total slots per cycle for a class."""
        return self._capacity[op_class]
