"""Flat array state for the stage kernel ("array" kernel representation).

The default stage kernel keeps its hot per-cycle state in flat parallel
columns instead of per-instruction attribute traffic:

* :class:`LatchArray` — a front-end latch as two parallel lists
  (``instrs``, ``stamps``) plus a ``head`` index.  The producing stage
  appends an instruction and its ready-cycle stamp; the consuming stage
  advances ``head`` past elapsed stamps (en bloc where it can) instead of
  popping a deque entry at a time, and compacts the columns when the
  consumed prefix grows.  The stamp lives in the latch, not on the
  instruction, so moving a whole fetch packet is two C-level ``extend``
  calls.
* :class:`CompletionWheel` — the execute→writeback latch as a power-of-2
  ring of buckets indexed by ``cycle & mask``.  Scheduling a completion
  is one masked index instead of a dict probe, and the writeback drain
  rebinds one ring slot.  Latencies beyond the ring horizon (impossible
  under the shipped configurations — the ring is sized from the worst
  static + memory latency — but kept correct anyway) fall back to the
  ``far_buckets`` dict.
* :func:`materialize_tally` — the array kernel stores *no* per-unit
  access tally on in-flight instructions.  An instruction's tally is a
  pure function of its static flags and a few dynamic bits (``issued``,
  ``completed``, ``woke``, ``dcache_missed``, ``phys_dest``), so the two
  cold paths that need one (per-thread energy attribution at retirement,
  and backend squash accounting) reconstruct it on demand.  The
  reconstruction mirrors, unit by unit, exactly the increments the
  object kernel performs in its stage loops, so the accumulated floats
  are bit-identical.

Slot recycling: a latch slot is "recycled" by the head index — consumed
entries are left in place until the columns either drain completely
(``clear``, the common case: a latch usually empties every cycle) or the
dead prefix passes :data:`COMPACT_THRESHOLD` and is deleted in one slice
operation.  Ring buckets are recycled by rebinding the drained slot to a
fresh list.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instruction import DynamicInstruction
from repro.power.units import NUM_UNITS, PowerUnit

_ICACHE = int(PowerUnit.ICACHE)
_BPRED = int(PowerUnit.BPRED)
_REGFILE = int(PowerUnit.REGFILE)
_RENAME = int(PowerUnit.RENAME)
_WINDOW = int(PowerUnit.WINDOW)
_LSQ = int(PowerUnit.LSQ)
_ALU = int(PowerUnit.ALU)
_DCACHE = int(PowerUnit.DCACHE)
_DCACHE2 = int(PowerUnit.DCACHE2)
_RESULTBUS = int(PowerUnit.RESULTBUS)

# Dead-prefix length beyond which a latch compacts without a full drain
# (a latch almost always drains completely instead; see ``advance``).
COMPACT_THRESHOLD = 512


class LatchArray:
    """A front-end latch as parallel ``instrs``/``stamps`` columns.

    Contract (mirrors :class:`~repro.pipeline.stages.latch.PipeLatch`):
    the producer appends ``instrs[i]`` and its ready cycle ``stamps[i]``
    together; stamps are monotonically non-decreasing from ``head`` to
    the tail (single producer, constant latency), so the consumer may
    take the longest prefix with ``stamps[i] <= now`` in one scan; only
    squash recovery clears the latch wholesale.
    """

    __slots__ = ("instrs", "stamps", "head")

    def __init__(self) -> None:
        self.instrs: List[DynamicInstruction] = []
        self.stamps: List[int] = []
        self.head = 0

    def __len__(self) -> int:
        return len(self.instrs) - self.head

    def __bool__(self) -> bool:
        return len(self.instrs) > self.head

    def __iter__(self):
        return iter(self.instrs[self.head:])

    def __getitem__(self, index: int) -> DynamicInstruction:
        return self.instrs[self.head + index]

    def iter_with_stamps(self):
        """Yield ``(instr, ready_cycle)`` pairs, head to tail.

        The shared latch-inspection protocol: the sanitizer verifies
        stamp monotonicity through this iterator on both latch kinds
        without knowing where the stamp is stored.
        """
        head = self.head
        return zip(self.instrs[head:], self.stamps[head:])

    def advance(self, head: int) -> None:
        """Commit the consumer's new head index and recycle dead slots."""
        instrs = self.instrs
        if head == len(instrs):
            instrs.clear()
            self.stamps.clear()
            self.head = 0
        elif head >= COMPACT_THRESHOLD:
            del instrs[:head]
            del self.stamps[:head]
            self.head = 0
        else:
            self.head = head

    def clear(self) -> None:
        """Drop every entry (squash recovery)."""
        self.instrs.clear()
        self.stamps.clear()
        self.head = 0


class CompletionWheel:
    """The execute→writeback latch as a power-of-2 timing ring.

    ``buckets[cycle & mask]`` holds the instructions completing at
    ``cycle``; the attribute keeps the ``buckets`` name so the stage
    contract checker (CON001) maps accesses to the ``completions``
    surface for both latch kinds.  Ring validity: the issue stage only
    schedules ``latency <= mask`` into the ring (longer latencies — none
    under shipped configurations — go to ``far_buckets``), and writeback
    drains a slot at exactly its cycle, so a slot never holds two live
    cycles at once and a non-empty slot within the horizon identifies
    its event cycle exactly (the cycle-skip scan relies on this).
    """

    __slots__ = ("buckets", "mask", "far_buckets")

    def __init__(self, span: int) -> None:
        size = 1
        while size <= span:
            size <<= 1
        self.buckets: List[List[DynamicInstruction]] = [
            [] for _ in range(size)
        ]
        self.mask = size - 1
        self.far_buckets: Dict[int, List[DynamicInstruction]] = {}

    def __len__(self) -> int:
        # Cold probe/debug API (tests and ground-truth recomputation,
        # never a stage tick) — allowlisted from HOT002's sum() ban with
        # a scoped entry in repro/analysis/hotpath.py.
        return sum(map(len, self.buckets)) + sum(
            map(len, self.far_buckets.values())
        )

    def pending_at(self, cycle: int) -> int:
        """Instructions scheduled to complete at ``cycle`` (probe API)."""
        count = len(self.buckets[cycle & self.mask])
        if self.far_buckets:
            far = self.far_buckets.get(cycle)
            if far is not None:
                count += len(far)
        return count


def completion_span(config, miss_penalty: int) -> int:
    """Worst completion latency the issue stage can schedule.

    Static opcode latency (12 for DIV) plus the deep-pipeline extra, a
    full L1→TLB-miss→L2→memory load walk, and the deep-pipeline D-cache
    extra; a margin absorbs future opcode additions.  The wheel rounds
    this up to a power of two (128 for the paper's Table 3 baseline).
    """
    return (
        12
        + config.extra_exec_latency
        + config.l1_latency
        + miss_penalty
        + config.l2_latency
        + config.memory_latency
        + config.extra_dcache_latency
        + 8
    )


def materialize_tally(
    instr: DynamicInstruction,
    in_backend: bool,
    at_commit: bool = False,
    store_miss: bool = False,
) -> List[int]:
    """Reconstruct an instruction's per-unit access tally from its flags.

    Mirrors the object kernel's per-stage increments exactly:

    * fetch — one I-cache access for everyone, one predictor access for
      any control instruction;
    * rename/dispatch (backend residents only) — one rename port, one
      regfile read per source, one window write, one LSQ allocate for
      memory ops;
    * issue (``issued``) — one window read, one ALU slot, and for loads
      one D-cache access (plus an L2 access if ``dcache_missed``) and a
      second LSQ access (stores pay their second LSQ access at issue
      too);
    * writeback (``completed``) — one result-bus broadcast when a
      physical destination exists, one window wakeup write when the
      broadcast woke dependents (``woke``);
    * commit (``at_commit``) — one regfile write when a destination
      exists, the store's D-cache access (plus L2 on ``store_miss``) and
      the committed conditional branch's predictor training access.

    Front-end latch residents (``in_backend=False``) reduce to the
    fetch-time shape.  The caller is responsible for passing flags
    consistent with the instruction's pipeline position.
    """
    tally = [0] * NUM_UNITS
    tally[_ICACHE] = 1
    static = instr.static
    if static.is_branch:
        tally[_BPRED] = 1
    if not in_backend:
        return tally
    issued = instr.issued
    tally[_REGFILE] = len(static.sources)
    tally[_RENAME] = 1
    window = 1
    if issued:
        window += 1
    if instr.woke:
        window += 1
    tally[_WINDOW] = window
    if static.is_mem:
        tally[_LSQ] = 2 if issued else 1
    if issued:
        tally[_ALU] = 1
        if static.is_load:
            tally[_DCACHE] = 1
            if instr.dcache_missed:
                tally[_DCACHE2] = 1
    if instr.completed and instr.phys_dest >= 0:
        tally[_RESULTBUS] = 1
    if at_commit:
        if instr.phys_dest >= 0:
            tally[_REGFILE] += 1
        if static.is_store:
            tally[_DCACHE] += 1
            if store_miss:
                tally[_DCACHE2] = 1
        elif static.is_cond_branch:
            tally[_BPRED] += 1
    return tally
