"""Runtime pipeline invariant checks (sanitize mode).

When ``ProcessorConfig.sanitize`` is set the kernel steps through
:meth:`~repro.pipeline.stages.scheduler.CycleScheduler.step_sanitized`,
which calls :func:`check_invariants` after every stage tick and
:func:`check_cycle_end` when the cycle closes.  Each check recomputes a
ground truth from the pipeline structures themselves and compares it to
the incremental bookkeeping the hot loops maintain:

* ``rob-occupancy`` — the kernel's incremental ``rob_count`` equals the
  total entries across the threads' reorder buffers.
* ``iq-occupancy`` — each thread's issue-queue ``count`` (and the
  kernel's ``iq_count`` total) equals the number of dispatched,
  not-yet-issued instructions resident in that thread's ROB.
* ``lsq-occupancy`` — each thread's ``lsq.occupied`` (and the kernel's
  ``lsq_count`` total) equals the number of memory operations resident
  in that thread's ROB.
* ``renamer-free-list`` — a thread's pending-tag set is exactly the
  physical destinations of its uncompleted ROB entries: no tag leaks
  when its producer completes, commits or is squashed (tag-space
  conservation, the unbounded-tag analogue of free-list conservation).
* ``latch-monotone`` — ready stamps never decrease from head to tail of
  a front-end latch (entries are stamped before insertion and drain in
  order); read through the latch's ``iter_with_stamps`` protocol, which
  covers both the array kernel's stamp column and the object kernel's
  on-instruction stamp.
* ``latch-order`` — sequence numbers strictly increase within a latch.
* ``energy-ledger`` — with per-thread attribution on, the per-thread
  retirement ledger sums back to the shared totals: wasted joules to
  the per-unit wasted pool, committed/squashed counts to the kernel
  statistics.

A violation raises :class:`~repro.errors.SanitizerError` naming the
invariant, the stage after which it was detected, and the cycle.  The
checks are deliberately simple re-summations — O(in-flight
instructions) per stage tick — and live behind the construction-time
dispatch in ``Processor._finish_threads``, so a run without sanitize
mode never pays for them.
"""

from __future__ import annotations

import math

from repro.errors import SanitizerError

# Different summation order (per-unit pools vs per-instruction ledger)
# accumulates different rounding; identical bookkeeping agrees to many
# more digits than this.
_REL_TOL = 1e-9
_ABS_TOL = 1e-15


def _fail(invariant: str, stage: str, cycle: int, detail: str) -> None:
    raise SanitizerError(
        f"invariant '{invariant}' violated after stage '{stage}' "
        f"at cycle {cycle}: {detail}"
    )


def check_invariants(kernel, stage: str, cycle: int) -> None:
    """Verify the structural invariants; called after every stage tick."""
    rob_total = 0
    iq_total = 0
    lsq_total = 0
    for thread in kernel.threads:
        entries = thread.rob_entries
        rob_total += len(entries)

        unissued = 0
        mem_ops = 0
        pending = set()
        for instr in entries:
            if not instr.issued:
                unissued += 1
            if instr.static.is_mem:
                mem_ops += 1
            if instr.phys_dest >= 0 and not instr.completed:
                pending.add(instr.phys_dest)

        iq_count = thread.iq.count
        if iq_count != unissued:
            _fail(
                "iq-occupancy", stage, cycle,
                f"thread {thread.thread_id}: iq.count={iq_count} but the "
                f"ROB holds {unissued} dispatched, unissued instructions",
            )
        iq_total += iq_count

        occupied = thread.lsq.occupied
        if occupied != mem_ops:
            _fail(
                "lsq-occupancy", stage, cycle,
                f"thread {thread.thread_id}: lsq.occupied={occupied} but "
                f"the ROB holds {mem_ops} memory operations",
            )
        lsq_total += occupied

        tags = thread.renamer.pending_tags
        if tags != pending:
            stale = sorted(tags - pending)[:5]
            lost = sorted(pending - tags)[:5]
            _fail(
                "renamer-free-list", stage, cycle,
                f"thread {thread.thread_id}: pending tags disagree with "
                f"the ROB's uncompleted destinations "
                f"(stale={stale}, lost={lost})",
            )

        _check_latch(thread, thread.fetch_latch, "fetch", stage, cycle)
        _check_latch(thread, thread.decode_latch, "decode", stage, cycle)

    if rob_total != kernel.rob_count:
        _fail(
            "rob-occupancy", stage, cycle,
            f"incremental rob_count={kernel.rob_count} but the threads' "
            f"reorder buffers hold {rob_total} entries",
        )
    if iq_total != kernel.iq_count:
        _fail(
            "iq-occupancy", stage, cycle,
            f"incremental iq_count={kernel.iq_count} but the threads' "
            f"issue queues hold {iq_total} entries",
        )
    if lsq_total != kernel.lsq_count:
        _fail(
            "lsq-occupancy", stage, cycle,
            f"incremental lsq_count={kernel.lsq_count} but the threads' "
            f"load/store queues hold {lsq_total} entries",
        )


def _check_latch(thread, latch, latch_name: str, stage: str, cycle: int) -> None:
    # ``iter_with_stamps`` is the shared latch-inspection protocol: the
    # array latch keeps the ready stamp in its own column, the object
    # latch on the instruction; the sanitizer checks both without
    # knowing which.
    last_ready = -1
    last_seq = -1
    for instr, ready in latch.iter_with_stamps():
        if ready < last_ready:
            _fail(
                "latch-monotone", stage, cycle,
                f"thread {thread.thread_id} {latch_name} latch: "
                f"latch_ready drops from {last_ready} to {ready} at "
                f"seq {instr.seq}",
            )
        if instr.seq <= last_seq:
            _fail(
                "latch-order", stage, cycle,
                f"thread {thread.thread_id} {latch_name} latch: seq "
                f"{instr.seq} does not increase past {last_seq}",
            )
        last_ready = ready
        last_seq = instr.seq


def check_cycle_end(kernel, cycle: int) -> None:
    """Verify the cross-structure totals once per cycle, after power
    integration (the per-thread energy ledger only updates at retirement,
    so once per cycle is as often as it can drift)."""
    power = kernel.power
    if not power.attribute_threads:
        return
    ledger = power._thread_ledger
    wasted_joules = 0.0
    committed = 0
    squashed = 0
    for entry in ledger.values():
        wasted_joules += entry[1]
        committed += entry[2]
        squashed += entry[3]
    pool = sum(power.wasted_energy)
    if not math.isclose(wasted_joules, pool, rel_tol=_REL_TOL, abs_tol=_ABS_TOL):
        _fail(
            "energy-ledger", "cycle-end", cycle,
            f"thread ledgers sum to {wasted_joules!r} wasted joules but "
            f"the per-unit wasted pool holds {pool!r}",
        )
    stats = kernel.stats
    if committed != stats.committed:
        _fail(
            "energy-ledger", "cycle-end", cycle,
            f"thread ledgers account {committed} committed instructions "
            f"but the kernel counted {stats.committed}",
        )
    if squashed != stats.squashed:
        _fail(
            "energy-ledger", "cycle-end", cycle,
            f"thread ledgers account {squashed} squashed instructions "
            f"but the kernel counted {stats.squashed}",
        )
