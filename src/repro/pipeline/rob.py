"""Reorder buffer: a bounded FIFO of in-flight instructions."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction


class ReorderBuffer:
    """In-order window of every renamed, uncommitted instruction."""

    __slots__ = ("size", "entries")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SimulationError("ROB size must be positive")
        self.size = size
        # The in-order window itself.  Public: the commit and dispatch
        # stages peek/pop/append it directly (the per-cycle hot path), with
        # the capacity check done at the call site.
        self.entries: Deque[DynamicInstruction] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        """True when dispatch must stall."""
        return len(self.entries) >= self.size

    @property
    def occupancy(self) -> float:
        """Fill fraction (drives clock-tree power)."""
        return len(self.entries) / self.size

    def head(self) -> Optional[DynamicInstruction]:
        """Oldest instruction, or None when empty."""
        return self.entries[0] if self.entries else None

    def push(self, instruction: DynamicInstruction) -> None:
        """Append at the tail (program order)."""
        if len(self.entries) >= self.size:
            raise SimulationError("push into a full ROB")
        self.entries.append(instruction)

    def pop_head(self) -> DynamicInstruction:
        """Commit the oldest instruction."""
        if not self.entries:
            raise SimulationError("pop from an empty ROB")
        return self.entries.popleft()

    def squash_younger(self, seq: int) -> List[DynamicInstruction]:
        """Remove and return every instruction younger than ``seq``."""
        squashed: List[DynamicInstruction] = []
        entries = self.entries
        while entries and entries[-1].seq > seq:
            squashed.append(entries.pop())
        return squashed

    def __iter__(self):
        return iter(self.entries)
