"""Per-run simulation statistics."""

from __future__ import annotations

from repro.confidence.metrics import ConfidenceMatrix


class SimStats:
    """Counters accumulated during one measured simulation window.

    Slotted: several counters are incremented every cycle by the stage
    kernel, and slot stores skip the instance-dict machinery.
    """

    __slots__ = (
        "cycles",
        "fetched",
        "fetched_wrong_path",
        "decoded",
        "renamed",
        "issued",
        "issued_wrong_path",
        "committed",
        "squashed",
        "cond_branches_fetched",
        "cond_branches_committed",
        "mispredictions_committed",
        "squashes",
        "fetch_throttled_cycles",
        "decode_throttled_cycles",
        "selection_blocked",
        "icache_stall_cycles",
        "redirect_stall_cycles",
        "confidence",
    )

    def __init__(self) -> None:
        self.cycles = 0
        # Instruction flow.
        self.fetched = 0
        self.fetched_wrong_path = 0
        self.decoded = 0
        self.renamed = 0
        self.issued = 0
        self.issued_wrong_path = 0
        self.committed = 0
        self.squashed = 0
        # Branches.
        self.cond_branches_fetched = 0
        self.cond_branches_committed = 0
        self.mispredictions_committed = 0
        self.squashes = 0
        # Throttling.
        self.fetch_throttled_cycles = 0
        self.decode_throttled_cycles = 0
        self.selection_blocked = 0
        # Fetch stalls.
        self.icache_stall_cycles = 0
        self.redirect_stall_cycles = 0
        # Confidence quality.
        self.confidence = ConfidenceMatrix()

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def branch_miss_rate(self) -> float:
        """Misprediction rate over committed conditional branches."""
        if self.cond_branches_committed == 0:
            return 0.0
        return self.mispredictions_committed / self.cond_branches_committed

    @property
    def wrong_path_fetch_fraction(self) -> float:
        """Fraction of fetched instructions that were wrong-path."""
        return self.fetched_wrong_path / self.fetched if self.fetched else 0.0

    def as_dict(self) -> dict:
        """Flat summary for printing and results storage."""
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "fetched": self.fetched,
            "fetched_wrong_path": self.fetched_wrong_path,
            "squashed": self.squashed,
            "cond_branches": self.cond_branches_committed,
            "miss_rate": self.branch_miss_rate,
            "spec": self.confidence.spec(),
            "pvn": self.confidence.pvn(),
        }
