"""Register renaming with per-branch checkpoints.

Physical tags are the global sequence numbers of producing instructions
(an unbounded tag space — the ROB bounds live instances, so no free-list is
needed).  The map from architectural register to tag is checkpointed by
every conditional branch at rename and restored wholesale on a squash,
which is the classic checkpoint-repair recovery scheme.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.isa.instruction import DynamicInstruction
from repro.isa.registers import NUM_ARCH_REGS, REG_ZERO

# Tag meaning "architectural value, always ready".
ARCH_READY_TAG = -1


class RegisterRenamer:
    """Arch-reg -> producing-tag map with checkpoint/restore."""

    __slots__ = ("_map", "pending_tags")

    def __init__(self) -> None:
        self._map: List[int] = [ARCH_READY_TAG] * NUM_ARCH_REGS
        # Tags whose producer has not completed yet.
        self.pending_tags: Set[int] = set()

    def rename(self, instruction: DynamicInstruction) -> Tuple[int, ...]:
        """Rename one instruction; returns the tags its sources wait on.

        Sets ``phys_sources``/``phys_dest`` on the instruction and returns
        only the *pending* source tags (the wakeup set).
        """
        static = instruction.static
        sources = []
        waits = []
        for reg in static.sources:
            tag = self._map[reg]
            sources.append(tag)
            if tag in self.pending_tags:
                waits.append(tag)
        instruction.phys_sources = tuple(sources)
        if static.dest is not None and static.dest != REG_ZERO:
            tag = instruction.seq
            self._map[static.dest] = tag
            instruction.phys_dest = tag
            self.pending_tags.add(tag)
        return tuple(waits)

    def checkpoint(self) -> List[int]:
        """Capture the current map (taken after renaming a branch)."""
        return self._map.copy()

    def restore(self, checkpoint: List[int]) -> None:
        """Restore a checkpoint after a misprediction squash."""
        self._map = checkpoint.copy()

    def mark_completed(self, tag: int) -> None:
        """A producer finished; its tag is now ready."""
        self.pending_tags.discard(tag)

    def forget(self, tag: int) -> None:
        """Remove a squashed producer's tag."""
        self.pending_tags.discard(tag)

    def is_pending(self, tag: int) -> bool:
        """True while a tag's producer has not completed."""
        return tag in self.pending_tags
