"""Decode and rename/dispatch: the in-order middle of the machine.

One stage component covers the two in-order phases between the fetch latch
and the out-of-order back-end.  Per cycle (reverse pipeline order, so
rename drains the decode latch before decode refills it):

* **rename/dispatch** — pull decoded instructions whose latch delay has
  elapsed, rename their registers, take a map checkpoint at conditional
  branches, and allocate ROB/IQ/LSQ entries, stalling on any structural
  hazard (per-thread partition or the shared-capacity caps of an SMT core
  in ``shared`` mode — tracked by the kernel's incremental occupancy
  counters, not a per-cycle rescan);
* **decode** — pull fetched instructions through the decode gate, where a
  speculation controller may hold instructions younger than a throttling
  branch (the paper's decode throttling), and hand them to the decode
  latch with the configured decode→rename delay.

Both latches are :class:`~repro.pipeline.arrays.LatchArray` columns:
rename walks ``instrs``/``stamps`` by head index, and the decode move —
which touches no per-instruction state unless gated or observed — takes
the whole elapsed-stamp run en bloc with a ``bisect`` on the stamp
column and two list ``extend`` calls.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.isa.registers import REG_ZERO as _REG_ZERO
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_REGFILE = int(PowerUnit.REGFILE)
_RENAME = int(PowerUnit.RENAME)
_WINDOW = int(PowerUnit.WINDOW)
_LSQ = int(PowerUnit.LSQ)


class DecodeRenameStage(Stage):
    """Decode gate plus rename/dispatch into the back-end."""

    name = "decode-rename"

    # Latch surfaces this stage may touch (CON001): drains the fetch
    # latch into the decode latch, then renames/dispatches into every
    # back-end structure.
    CONTRACT = {
        "reads": (),
        "writes": (
            "fetch_latch", "decode_latch", "rob", "iq", "lsq", "renamer",
        ),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self.width = kernel.config.decode_width
        self.decode_to_rename_latency = kernel.config.decode_to_rename_latency
        # Run batching: consume fetch's per-run descriptors with one
        # structural check per run (see repro/frontend/supply.py).
        self._run_batch = kernel.config.run_batch
        # Cycle of the last counted decode throttle (one count per cycle
        # however many threads stall).
        self._throttled_cycle = -1

    def tick(self, cycle: int, activity) -> None:
        threads = self.kernel.threads
        count = len(threads)
        if count == 1:
            # Skip the stage calls outright on latch-empty cycles (the
            # head/len probe is two C-level loads, no method call).
            thread = threads[0]
            decode_latch = thread.decode_latch
            if decode_latch.head < len(decode_latch.instrs):
                self._rename_thread(thread, cycle, activity, self.width)
            fetch_latch = thread.fetch_latch
            if fetch_latch.head < len(fetch_latch.instrs):
                self._decode_thread(thread, cycle, self.width)
            return
        budget = self.width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._rename_thread(thread, cycle, activity, budget)
        budget = self.width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._decode_thread(thread, cycle, budget)

    # ------------------------------------------------------------------
    # Rename / dispatch
    # ------------------------------------------------------------------

    def _rename_thread(self, thread, cycle: int, activity, budget: int) -> int:
        kernel = self.kernel
        latch = thread.decode_latch
        instrs = latch.instrs
        stamps = latch.stamps
        head = latch.head
        tail = len(instrs)
        if head == tail:
            return 0
        rob = thread.rob
        rob_entries = rob.entries
        iq = thread.iq
        iq_start = iq.count
        iq_ready = iq.ready_list
        iq_waiters = iq.waiters
        lsq = thread.lsq
        lsq_start = lsq.occupied
        lsq_size = lsq.size
        # One fused structural limit: the while-condition folds the ROB,
        # IQ and width bounds (each renamed instruction consumes exactly
        # one entry of each); only the LSQ check stays per-instruction.
        limit = rob.size - len(rob_entries)
        iq_space = iq.size - iq_start
        if iq_space < limit:
            limit = iq_space
        if budget < limit:
            limit = budget
        renamer = thread.renamer
        # Stable for the whole tick: ``restore`` (which rebinds the map)
        # only runs during writeback recovery, never mid-rename.
        rmap = renamer._map
        pending_tags = renamer.pending_tags
        shared_caps = kernel.shared_caps
        has_shared_caps = shared_caps is not None
        append_rob = rob_entries.append
        append_ready = iq_ready.append
        stamp = kernel.observer is not None
        run_queue = thread.run_queue if self._run_batch else None
        # The head of the descriptor queue, peeked once per consumed
        # descriptor rather than on every latch head.
        next_run_seq = run_queue[0][0] if run_queue else -1
        renamed = 0
        mem_renamed = 0
        regfile_reads = 0
        while renamed < limit and head < tail:
            if stamps[head] > cycle:
                break
            instr = instrs[head]
            if next_run_seq == instr.seq:
                # Run batch: the latch head starts a straight-line run
                # fetch described with (first_seq, count, mem_count,
                # src_count).  One structural check admits the whole run;
                # any failure (run split across latches or budget, shared
                # caps, LSQ pressure) pops the descriptor and renames
                # per-instruction below.  Descriptors always name
                # latch-resident, unsquashed instructions: recovery
                # squashes the latches wholesale and clears the queue.
                first_seq, count, mem_count, src_count = run_queue.popleft()
                next_run_seq = run_queue[0][0] if run_queue else -1
                end = head + count
                if (
                    count <= limit - renamed
                    and end <= tail
                    and stamps[end - 1] <= cycle
                    and not has_shared_caps
                    and lsq_start + mem_renamed + mem_count <= lsq_size
                ):
                    run_instrs = instrs[head:end]
                    for instr in run_instrs:
                        if stamp:
                            instr.rename_cycle = cycle
                        instr.issued = False
                        instr.completed = False
                        instr.woke = False
                        static = instr.static
                        static_sources = static.sources
                        waits = None
                        if static_sources:
                            for reg in static_sources:
                                tag = rmap[reg]
                                if tag in pending_tags:
                                    if waits is None:
                                        waits = [tag]
                                    else:
                                        waits.append(tag)
                        dest = static.dest
                        if dest is not None and dest != _REG_ZERO:
                            tag = instr.seq
                            rmap[dest] = tag
                            instr.phys_dest = tag
                            pending_tags.add(tag)
                        else:
                            instr.phys_dest = -1
                        pending = 0
                        if waits is not None:
                            for tag in waits:
                                pending += 1
                                bucket = iq_waiters.get(tag)
                                if bucket is None:
                                    iq_waiters[tag] = [instr]
                                else:
                                    bucket.append(instr)
                        instr.ready_sources = pending
                        if pending == 0:
                            append_ready(instr)
                    rob_entries.extend(run_instrs)
                    head = end
                    renamed += count
                    if mem_count:
                        lsq.occupied += mem_count
                        mem_renamed += mem_count
                    regfile_reads += src_count
                    continue
            if instr.squashed:
                head += 1
                continue
            static = instr.static
            is_mem = static.is_mem
            if is_mem and lsq_start + mem_renamed >= lsq_size:
                break
            if has_shared_caps:
                # The kernel counters are batch-updated after the loop, so
                # add this loop's own allocations to see the live totals.
                if (
                    kernel.rob_count + renamed >= shared_caps[0]
                    or kernel.iq_count + renamed >= shared_caps[1]
                    or (is_mem and kernel.lsq_count + mem_renamed >= shared_caps[2])
                ):
                    break
            head += 1
            if stamp:
                instr.rename_cycle = cycle
            # Back-end slots (issue/completion state, physical dest) are
            # first read after dispatch, so they are stamped here rather
            # than on every fetched instruction (wrong-path work squashed
            # in the front-end latches never pays for them).
            instr.issued = False
            instr.completed = False
            instr.woke = False

            # Rename (RegisterRenamer.rename, inlined): map sources to
            # producing tags, collect the still-pending ones as the wakeup
            # set, and claim the destination.  ``phys_sources`` is not
            # materialised here — nothing in the pipeline reads it (the
            # standalone RegisterRenamer.rename keeps setting it).
            static_sources = static.sources
            waits = None
            if static_sources:
                for reg in static_sources:
                    tag = rmap[reg]
                    if tag in pending_tags:
                        if waits is None:
                            waits = [tag]
                        else:
                            waits.append(tag)
                regfile_reads += len(static_sources)
            dest = static.dest
            if dest is not None and dest != _REG_ZERO:
                tag = instr.seq
                rmap[dest] = tag
                instr.phys_dest = tag
                pending_tags.add(tag)
            else:
                instr.phys_dest = -1

            if static.is_cond_branch:
                instr.rename_checkpoint = rmap.copy()
            append_rob(instr)
            if is_mem:
                lsq.occupied += 1
                mem_renamed += 1

            # Dispatch (IssueQueue.dispatch, inlined): park behind pending
            # source tags, or go straight to the ready list.
            pending = 0
            if waits is not None:
                for tag in waits:
                    pending += 1
                    bucket = iq_waiters.get(tag)
                    if bucket is None:
                        iq_waiters[tag] = [instr]
                    else:
                        bucket.append(instr)
            instr.ready_sources = pending
            if pending == 0:
                append_ready(instr)
            renamed += 1
        latch.advance(head)
        if renamed:
            activity[_RENAME] += renamed
            activity[_WINDOW] += renamed
            if regfile_reads:
                activity[_REGFILE] += regfile_reads
            if mem_renamed:
                activity[_LSQ] += mem_renamed
            iq.count = iq_start + renamed
            kernel.stats.renamed += renamed
            kernel.rob_count += renamed
            kernel.iq_count += renamed
            kernel.lsq_count += mem_renamed
        return renamed

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------

    def _decode_thread(self, thread, cycle: int, budget: int) -> int:
        latch = thread.fetch_latch
        instrs = latch.instrs
        head = latch.head
        tail = len(instrs)
        if head == tail:
            return 0
        stamps = latch.stamps
        kernel = self.kernel
        out = thread.decode_latch
        ready_cycle = cycle + self.decode_to_rename_latency
        gated = thread.ctrl_blocks_decode
        stamp = kernel.observer is not None
        limit = head + budget
        if limit > tail:
            limit = tail
        if not gated and not stamp:
            # En-bloc fast path: the elapsed-stamp prefix moves in two
            # list extends.  Stamps are monotone (single producer at a
            # constant latency), so the common whole-window case is one
            # tail comparison and anything else one bisect.  Squashed
            # entries cannot be resident: recovery marks and clears both
            # latches in the same call, before this stage runs.
            if stamps[limit - 1] <= cycle:
                end = limit
            else:
                end = bisect_right(stamps, cycle, head, limit)
            moved = end - head
            if moved:
                out.instrs.extend(instrs[head:end])
                out.stamps.extend([ready_cycle] * moved)
                latch.advance(end)
                kernel.stats.decoded += moved
            return moved
        controller = thread.controller
        out_instrs = out.instrs
        out_stamps = out.stamps
        moved = 0
        while moved < budget and head < tail:
            if stamps[head] > cycle:
                break
            instr = instrs[head]
            if instr.squashed:
                head += 1
                continue
            if gated and controller.blocks_decode(cycle, instr):
                # Count a throttled cycle once, whichever thread stalls.
                if self._throttled_cycle != cycle:
                    self._throttled_cycle = cycle
                    kernel.stats.decode_throttled_cycles += 1
                break
            head += 1
            if stamp:
                instr.decode_cycle = cycle
            out_instrs.append(instr)
            out_stamps.append(ready_cycle)
            moved += 1
        latch.advance(head)
        if moved:
            kernel.stats.decoded += moved
        return moved
