"""Decode and rename/dispatch: the in-order middle of the machine.

One stage component covers the two in-order phases between the fetch latch
and the out-of-order back-end.  Per cycle (reverse pipeline order, so
rename drains the decode latch before decode refills it):

* **rename/dispatch** — pull decoded instructions whose latch delay has
  elapsed, rename their registers, take a map checkpoint at conditional
  branches, and allocate ROB/IQ/LSQ entries, stalling on any structural
  hazard (per-thread partition or the shared-capacity caps of an SMT core
  in ``shared`` mode — tracked by the kernel's incremental occupancy
  counters, not a per-cycle rescan);
* **decode** — pull fetched instructions through the decode gate, where a
  speculation controller may hold instructions younger than a throttling
  branch (the paper's decode throttling), and hand them to the decode
  latch with the configured decode→rename delay.
"""

from __future__ import annotations

from repro.isa.registers import REG_ZERO as _REG_ZERO
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_REGFILE = int(PowerUnit.REGFILE)
_RENAME = int(PowerUnit.RENAME)
_WINDOW = int(PowerUnit.WINDOW)
_LSQ = int(PowerUnit.LSQ)


class DecodeRenameStage(Stage):
    """Decode gate plus rename/dispatch into the back-end."""

    name = "decode-rename"

    # Latch surfaces this stage may touch (CON001): drains the fetch
    # latch into the decode latch, then renames/dispatches into every
    # back-end structure.
    CONTRACT = {
        "reads": (),
        "writes": (
            "fetch_latch", "decode_latch", "rob", "iq", "lsq", "renamer",
        ),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self.width = kernel.config.decode_width
        self.decode_to_rename_latency = kernel.config.decode_to_rename_latency
        # Cycle of the last counted decode throttle (one count per cycle
        # however many threads stall).
        self._throttled_cycle = -1

    def tick(self, cycle: int, activity) -> None:
        threads = self.kernel.threads
        count = len(threads)
        if count == 1:
            # Skip the stage calls outright on latch-empty cycles.
            thread = threads[0]
            if thread.decode_entries:
                self._rename_thread(thread, cycle, activity, self.width)
            if thread.fetch_entries:
                self._decode_thread(thread, cycle, self.width)
            return
        budget = self.width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._rename_thread(thread, cycle, activity, budget)
        budget = self.width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._decode_thread(thread, cycle, budget)

    # ------------------------------------------------------------------
    # Rename / dispatch
    # ------------------------------------------------------------------

    def _rename_thread(self, thread, cycle: int, activity, budget: int) -> int:
        kernel = self.kernel
        pipe = thread.decode_entries
        if not pipe:
            return 0
        rob = thread.rob
        rob_entries = rob.entries
        iq = thread.iq
        iq_start = iq.count
        iq_ready = iq.ready_list
        iq_waiters = iq.waiters
        lsq = thread.lsq
        lsq_start = lsq.occupied
        lsq_size = lsq.size
        # One fused structural limit: the while-condition folds the ROB,
        # IQ and width bounds (each renamed instruction consumes exactly
        # one entry of each); only the LSQ check stays per-instruction.
        limit = rob.size - len(rob_entries)
        iq_space = iq.size - iq_start
        if iq_space < limit:
            limit = iq_space
        if budget < limit:
            limit = budget
        renamer = thread.renamer
        # Stable for the whole tick: ``restore`` (which rebinds the map)
        # only runs during writeback recovery, never mid-rename.
        rmap = renamer._map
        pending_tags = renamer.pending_tags
        shared_caps = kernel.shared_caps
        has_shared_caps = shared_caps is not None
        popleft = pipe.popleft
        append_rob = rob_entries.append
        append_ready = iq_ready.append
        stamp = kernel.observer is not None
        renamed = 0
        mem_renamed = 0
        regfile_reads = 0
        while renamed < limit and pipe:
            instr = pipe[0]
            if instr.latch_ready > cycle:
                break
            if instr.squashed:
                popleft()
                continue
            static = instr.static
            is_mem = static.is_mem
            if is_mem and lsq_start + mem_renamed >= lsq_size:
                break
            if has_shared_caps:
                # The kernel counters are batch-updated after the loop, so
                # add this loop's own allocations to see the live totals.
                if (
                    kernel.rob_count + renamed >= shared_caps[0]
                    or kernel.iq_count + renamed >= shared_caps[1]
                    or (is_mem and kernel.lsq_count + mem_renamed >= shared_caps[2])
                ):
                    break
            popleft()
            if stamp:
                instr.rename_cycle = cycle
            # Back-end slots (issue/completion state, physical dest) are
            # first read after dispatch, so they are stamped here rather
            # than on every fetched instruction (wrong-path work squashed
            # in the front-end latches never pays for them).
            instr.issued = False
            instr.completed = False

            # Rename (RegisterRenamer.rename, inlined): map sources to
            # producing tags, collect the still-pending ones as the wakeup
            # set, and claim the destination.  ``phys_sources`` is not
            # materialised here — nothing in the pipeline reads it (the
            # standalone RegisterRenamer.rename keeps setting it).
            static_sources = static.sources
            waits = None
            if static_sources:
                for reg in static_sources:
                    tag = rmap[reg]
                    if tag in pending_tags:
                        if waits is None:
                            waits = [tag]
                        else:
                            waits.append(tag)
            dest = static.dest
            if dest is not None and dest != _REG_ZERO:
                tag = instr.seq
                rmap[dest] = tag
                instr.phys_dest = tag
                pending_tags.add(tag)
            else:
                instr.phys_dest = -1

            tally = instr.unit_accesses
            tally[_RENAME] += 1
            source_reads = len(static_sources)
            if source_reads:
                regfile_reads += source_reads
                tally[_REGFILE] += source_reads
            tally[_WINDOW] += 1
            if static.is_cond_branch:
                instr.rename_checkpoint = rmap.copy()
            append_rob(instr)
            if is_mem:
                lsq.occupied += 1
                mem_renamed += 1
                tally[_LSQ] += 1

            # Dispatch (IssueQueue.dispatch, inlined): park behind pending
            # source tags, or go straight to the ready list.
            pending = 0
            if waits is not None:
                for tag in waits:
                    pending += 1
                    bucket = iq_waiters.get(tag)
                    if bucket is None:
                        iq_waiters[tag] = [instr]
                    else:
                        bucket.append(instr)
            instr.ready_sources = pending
            if pending == 0:
                append_ready(instr)
            renamed += 1
        if renamed:
            activity[_RENAME] += renamed
            activity[_WINDOW] += renamed
            if regfile_reads:
                activity[_REGFILE] += regfile_reads
            if mem_renamed:
                activity[_LSQ] += mem_renamed
            iq.count = iq_start + renamed
            kernel.stats.renamed += renamed
            kernel.rob_count += renamed
            kernel.iq_count += renamed
            kernel.lsq_count += mem_renamed
        return renamed

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------

    def _decode_thread(self, thread, cycle: int, budget: int) -> int:
        pipe = thread.fetch_entries
        if not pipe:
            return 0
        kernel = self.kernel
        out_append = thread.decode_entries.append
        popleft = pipe.popleft
        ready_cycle = cycle + self.decode_to_rename_latency
        gated = thread.ctrl_blocks_decode
        controller = thread.controller
        stamp = kernel.observer is not None
        moved = 0
        while moved < budget and pipe:
            instr = pipe[0]
            if instr.latch_ready > cycle:
                break
            if instr.squashed:
                popleft()
                continue
            if gated and controller.blocks_decode(cycle, instr):
                # Count a throttled cycle once, whichever thread stalls.
                if self._throttled_cycle != cycle:
                    self._throttled_cycle = cycle
                    kernel.stats.decode_throttled_cycles += 1
                break
            popleft()
            if stamp:
                instr.decode_cycle = cycle
            instr.latch_ready = ready_cycle
            out_append(instr)
            moved += 1
        if moved:
            kernel.stats.decoded += moved
        return moved
