"""The cycle scheduler: drives the stage components through one cycle.

Stages run in reverse pipeline order — commit, writeback, select/issue,
rename+decode, fetch — so that results written back this cycle are
visible to commit next cycle, issue slots freed by writeback are not
reused in the same cycle, and latch entries move at most one stage per
cycle.  After the last stage the scheduler closes the cycle: the per-unit
activity array is integrated by the power model (clock-tree power driven
by ROB occupancy from the kernel's incremental counter — no per-cycle
rescan of the threads), and the cycle counter advances.

**Cycle-skip fast-forward (the next-event engine).**  When the whole
machine is provably inert — every thread's latch columns empty, no ready
instruction, no completed ROB head, and nothing due out of the
completion wheel this cycle — every stage tick is a no-op and the cycle
close is the power model's idle accumulation.  The scheduler then jumps
to the earliest *event* that could make any stage do work again, and
closes the skipped stretch in one batch.  Two event sources compose:

* **wheel events** — the next non-empty completion-ring slot (a scan
  bounded by the wheel horizon identifies its cycle exactly; far-bucket
  events clamp from above);
* **fetch reopen events** — per thread, the first cycle its fetch could
  run: the end of a redirect/I-cache stall, the controller's next
  fetch-gate slot (``SpeculationController.next_active_cycle``, an O(1)
  wheel probe for the bandwidth-level throttles, "never without a hook"
  for pipeline gating and the oracle's wrong-path wait), and — on an SMT
  core under the confidence-gating policy — the thread's bandwidth-level
  duty cycle.

The batch bookkeeping reuses the per-cycle arithmetic (the power model
loops its own ``end_cycle``; the stall/throttle counters and controller
side effects advance in closed form through
``SpeculationController.close_gated_window``), so a fast-forwarded run
is bit-identical to a stepped one — on single-thread *and* SMT cores,
gated or not.  ``ProcessorConfig.cycle_skip`` (REPRO_CYCLE_SKIP=0)
disables the engine for A/B measurement; results are identical either
way.

The scheduler holds the stage components as plain attributes, so tests
and future scenarios can wrap or replace a single stage without touching
the kernel.
"""

from __future__ import annotations

from repro.core.levels import ACTIVE_WHEEL_MASKS, NEVER_ACTIVE
from repro.pipeline.sanitizer import check_cycle_end, check_invariants
from repro.pipeline.stages.commit import CommitRecoverStage
from repro.pipeline.stages.decode_rename import DecodeRenameStage
from repro.pipeline.stages.execute_writeback import ExecuteWritebackStage
from repro.pipeline.stages.fetch import FetchStage
from repro.pipeline.stages.select_issue import SelectIssueStage
from repro.power.units import NUM_UNITS

_POPCOUNT = tuple(bin(value).count("1") for value in range(16))


def _wheel_count(mask: int, start: int, count: int) -> int:
    """Active cycles among ``count`` cycles from ``start`` under a 4-cycle
    wheel ``mask``: whole periods contribute the mask's popcount, the
    remainder is a phase probe per cycle."""
    if mask == 0 or count <= 0:
        return 0
    if mask == 0b1111:
        return count
    full, rem = divmod(count, 4)
    total = full * _POPCOUNT[mask]
    for offset in range(rem):
        if (mask >> ((start + offset) & 3)) & 1:
            total += 1
    return total


class CycleScheduler:
    """Owns the five stage components and advances them one cycle at a time."""

    __slots__ = (
        "kernel", "total_rob_size",
        "commit", "writeback", "issue", "decode_rename", "fetch",
        "stages",
        "_solo", "_solo_gates", "_solo_oracle", "_smt_skip",
        "_threads", "_conf_policy", "_ring", "_mask", "_far",
    )

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        # Constant once the kernel's threads are final (the kernel builds
        # its scheduler last).
        self.total_rob_size = kernel.total_rob_size
        self.commit = CommitRecoverStage(kernel)
        self.writeback = ExecuteWritebackStage(kernel, recovery=self.commit)
        self.issue = SelectIssueStage(kernel)
        self.decode_rename = DecodeRenameStage(kernel)
        self.fetch = FetchStage(kernel)
        # Reverse pipeline order, the order ``step`` runs them in.  The
        # stage objects stay plain attributes and ``step`` dispatches
        # through them each cycle, so tests and scenarios may wrap or
        # replace a single stage (or its ``tick``) at any time.
        self.stages = (
            self.commit,
            self.writeback,
            self.issue,
            self.decode_rename,
            self.fetch,
        )
        # Fast-forward state.  The entry gates below are the per-cycle
        # hot path, so the solo thread and its controller capability
        # flags are cached as slots.
        completions = kernel.completions
        self._ring = completions.buckets
        self._mask = completions.mask
        self._far = completions.far_buckets
        threads = kernel.threads
        self._threads = threads
        enabled = kernel.config.cycle_skip
        if len(threads) == 1:
            self._solo = threads[0] if enabled else None
            self._smt_skip = False
        else:
            self._solo = None
            self._smt_skip = enabled
        solo = self._solo
        self._solo_gates = solo is not None and solo.ctrl_gates_fetch
        self._solo_oracle = solo is not None and solo.ctrl_blocks_wp_fetch
        # The confidence-gating SMT policy adds a per-thread duty-cycle
        # gate (and a per-thread gated-cycle counter) on top of the
        # controllers; every other policy is a pure function of frozen
        # thread state and the cycle number, so arbitration is invariant
        # across a skipped window by construction.
        # Imported here, not at module top: repro.smt pulls the processor
        # module back in, and the scheduler is imported while that module
        # is still initialising.  Construction happens long after.
        from repro.smt.policies import ConfidenceGatingPolicy

        policy = kernel.fetch_policy
        self._conf_policy = (
            policy if isinstance(policy, ConfidenceGatingPolicy) else None
        )

    # ------------------------------------------------------------------
    # Cycle-skip fast-forward
    # ------------------------------------------------------------------

    def _next_fetch_cycle(self, thread, cycle: int) -> int:
        """First cycle ``>= cycle`` the thread's fetch could do work,
        with all gate state frozen (guaranteed by window quiescence).

        Mirrors the fetch eligibility checks in order: redirect/I-cache
        stall, the controller's fetch gate, and — under the confidence-
        gating SMT policy — the thread's bandwidth-level duty cycle.  An
        oracle-parked thread (wrong-path wait) reopens only on a wheel
        event, never by the clock alone.
        """
        if thread.ctrl_blocks_wp_fetch and thread.fetch_mode == "wrong":
            return NEVER_ACTIVE
        candidate = thread.fetch_stall_until
        if candidate < cycle:
            candidate = cycle
        gates = thread.ctrl_gates_fetch
        controller = thread.controller
        policy = self._conf_policy
        if policy is None:
            if gates:
                return controller.next_active_cycle(candidate)
            return candidate
        level_mask = ACTIVE_WHEEL_MASKS[policy.level_for(thread.lowconf_inflight)]
        # Both gates are (at most) 4-cycle wheels, so a common active
        # phase, if one exists, is found within one period from any
        # starting point; 8 probes cover a checked candidate per pair.
        for _ in range(8):
            if gates:
                at = controller.next_active_cycle(candidate)
                if at >= NEVER_ACTIVE:
                    return NEVER_ACTIVE
                if at != candidate:
                    candidate = at
                    continue
            if (level_mask >> (candidate & 3)) & 1:
                return candidate
            candidate += 1
        return NEVER_ACTIVE

    def _try_skip(self, cycle: int) -> int:
        """Plan and close one fast-forward window; 0 when any stage might
        do work before the next event.

        The quiescence guards prove every stage is a no-op: empty latch
        columns (rename and decode idle), empty ready lists (select/issue
        idle — the deferred FU-pool refresh is observable only through
        claims), uncompleted ROB heads (commit idle) and an empty wheel
        slot at the current cycle (writeback idle) — for *every* thread,
        which on an SMT core is exactly the machine-wide inertness the
        shared wheel and fetch port require.
        """
        threads = self._threads
        for thread in threads:
            if thread.fetch_latch.instrs or thread.decode_latch.instrs:
                return 0
            if thread.iq.ready_list:
                return 0
            entries = thread.rob_entries
            if entries and entries[0].completed:
                return 0
        ring = self._ring
        mask = self._mask
        if ring[cycle & mask]:
            return 0
        far = self._far
        if far and cycle in far:
            return 0
        # The earliest cycle any thread's fetch could run again bounds
        # the window; a thread already fetchable means no window at all.
        next_fetch = NEVER_ACTIVE
        for thread in threads:
            at = self._next_fetch_cycle(thread, cycle)
            if at <= cycle:
                return 0
            if at < next_fetch:
                next_fetch = at
        # The wheel event scan: within the horizon a non-empty ring slot
        # identifies its event cycle exactly (issue never schedules past
        # ``mask`` cycles out); far-bucket events clamp from above.
        limit = next_fetch
        bound = cycle + mask
        if limit > bound:
            limit = bound
        end = cycle + 1
        while end < limit and not ring[end & mask]:
            end += 1
        if far:
            for key in far:
                if cycle < key < end:
                    end = key
        count = end - cycle
        self._close_window(cycle, count)
        return count

    def _probe_active_mask(self, controller, start: int) -> int:
        """The controller's fetch-gate schedule as a 4-cycle wheel mask,
        observed through side-effect-free ``next_active_cycle`` probes
        (valid across a window: gate state is frozen while no hook
        fires)."""
        active_mask = 0
        for offset in range(4):
            at = start + offset
            if controller.next_active_cycle(at) == at:
                active_mask |= 1 << (at & 3)
        return active_mask

    def _close_window(self, cycle: int, count: int) -> None:
        """Close ``count`` skipped cycles in one batch, bit-identical to
        stepping them: constant occupancy, zero activity, and the
        per-cycle stall/throttle accounting of every thread's fetch
        regime (stall counters, gating-controller side effects, SMT
        policy gated-cycle counters) advanced in closed form."""
        kernel = self.kernel
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_idle_cycles(in_flight / self.total_rob_size, count)
        power.total_instr_cycles += in_flight * count
        stats = kernel.stats
        end = cycle + count
        solo = self._solo
        if solo is not None:
            # Single-thread fetch counts its own idle regimes, in check
            # order: a redirect/I-cache stall cycle bumps the redirect
            # counter and never consults the controller; past the stall
            # a gating controller is consulted (and counts a throttled
            # cycle) every cycle.
            stalled = min(end, solo.fetch_stall_until) - cycle
            if stalled > 0:
                stats.redirect_stall_cycles += stalled
            else:
                stalled = 0
            if self._solo_gates:
                probed = count - stalled
                if probed:
                    if self._solo_oracle and solo.fetch_mode == "wrong":
                        # Unreachable with the shipped controllers (the
                        # oracle never gates fetch) but kept exact: only
                        # the gate's inactive cycles count as throttled;
                        # its active cycles fall through to the silent
                        # wrong-path wait.
                        start = cycle + stalled
                        active = self._probe_active_mask(solo.controller, start)
                        throttled = probed - _wheel_count(active, start, probed)
                    else:
                        throttled = probed
                    if throttled:
                        stats.fetch_throttled_cycles += throttled
                        solo.controller.close_gated_window(throttled)
        else:
            # SMT: an idle cycle picks no thread, so the machine-level
            # stall counters stay untouched (exactly as stepped); what
            # must advance are the per-thread side effects of the
            # arbitration probes — the policy consults every non-stalled
            # thread's fetch gate each cycle (front-end latches are
            # empty across the window, so the buffer check never trips).
            policy = self._conf_policy
            for thread in self._threads:
                start = thread.fetch_stall_until
                if start < cycle:
                    start = cycle
                probed = end - start
                if probed <= 0:
                    continue
                if thread.ctrl_gates_fetch:
                    controller = thread.controller
                    active_mask = self._probe_active_mask(controller, start)
                    gated = probed - _wheel_count(active_mask, start, probed)
                    if gated:
                        controller.close_gated_window(gated)
                else:
                    active_mask = 0b1111
                if policy is not None and not (
                    thread.ctrl_blocks_wp_fetch and thread.fetch_mode == "wrong"
                ):
                    # Eligible but duty-cycle-gated: the policy counts
                    # the thread as policy-gated on cycles its gate is
                    # open but its bandwidth level is inactive.
                    level_mask = ACTIVE_WHEEL_MASKS[
                        policy.level_for(thread.lowconf_inflight)
                    ]
                    gated_by_level = _wheel_count(
                        active_mask & ~level_mask & 0b1111, start, probed
                    )
                    if gated_by_level:
                        thread.policy_gated_cycles += gated_by_level
        stats.cycles += count
        kernel.cycle = end

    # ------------------------------------------------------------------
    # The four step variants (construction-time dispatch)
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the machine by one cycle."""
        kernel = self.kernel
        cycle = kernel.cycle
        solo = self._solo
        if solo is not None:
            if (
                cycle < solo.fetch_stall_until
                or (self._solo_gates
                    and not solo.fetch_latch.instrs
                    and not solo.decode_latch.instrs
                    and solo.controller.next_active_cycle(cycle) != cycle)
                or (self._solo_oracle and solo.fetch_mode == "wrong")
            ):
                if self._try_skip(cycle):
                    return
        elif self._smt_skip:
            if self._try_skip(cycle):
                return
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        self.writeback.tick(cycle, activity)
        self.issue.tick(cycle, activity)
        self.decode_rename.tick(cycle, activity)
        self.fetch.tick(cycle, activity)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1

    def step_sanitized(self) -> None:
        """``step`` with invariant checks after every stage tick.

        The kernel binds its ``_step`` to this method instead of ``step``
        when ``config.sanitize`` is set (see ``Processor._finish_threads``)
        — the plain ``step`` carries no sanitize branch, so runs without
        the mode pay nothing.  The stage sequence and the cycle close
        mirror ``step`` exactly; a sanitized run is bit-identical or
        raises :class:`~repro.errors.SanitizerError`.  A fast-forwarded
        stretch is checked once at its last cycle — the structures are
        untouched across the batch, so one check covers every cycle of
        it.
        """
        kernel = self.kernel
        cycle = kernel.cycle
        solo = self._solo
        if solo is not None:
            if (
                cycle < solo.fetch_stall_until
                or (self._solo_gates
                    and not solo.fetch_latch.instrs
                    and not solo.decode_latch.instrs
                    and solo.controller.next_active_cycle(cycle) != cycle)
                or (self._solo_oracle and solo.fetch_mode == "wrong")
            ):
                count = self._try_skip(cycle)
                if count:
                    check_invariants(kernel, "fast-forward", cycle + count - 1)
                    check_cycle_end(kernel, cycle + count - 1)
                    return
        elif self._smt_skip:
            count = self._try_skip(cycle)
            if count:
                check_invariants(kernel, "fast-forward", cycle + count - 1)
                check_cycle_end(kernel, cycle + count - 1)
                return
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        check_invariants(kernel, self.commit.name, cycle)
        self.writeback.tick(cycle, activity)
        check_invariants(kernel, self.writeback.name, cycle)
        self.issue.tick(cycle, activity)
        check_invariants(kernel, self.issue.name, cycle)
        self.decode_rename.tick(cycle, activity)
        check_invariants(kernel, self.decode_rename.name, cycle)
        self.fetch.tick(cycle, activity)
        check_invariants(kernel, self.fetch.name, cycle)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        check_cycle_end(kernel, cycle)

    def step_instrumented(self) -> None:
        """``step`` bracketed by the probe bus's per-cycle sampling.

        Chosen by ``Processor._finish_threads`` when ``config.telemetry``
        is set — the same construction-time dispatch as the sanitizer, so
        the plain ``step`` carries no telemetry branch.  The bus samples
        occupancy at cycle top and differences the kernel's statistics at
        cycle bottom (see :class:`repro.telemetry.probes.ProbeBus`); it
        never writes simulation state, so an instrumented run is
        bit-identical to an uninstrumented one.  A fast-forwarded stretch
        is sampled once and scaled (``ProbeBus.idle_cycles``) — every
        per-cycle sample is constant across it, and the stall/throttle
        counters the window advanced are folded in by differencing.
        """
        kernel = self.kernel
        probes = kernel.probes
        cycle = kernel.cycle
        solo = self._solo
        if solo is not None:
            if (
                cycle < solo.fetch_stall_until
                or (self._solo_gates
                    and not solo.fetch_latch.instrs
                    and not solo.decode_latch.instrs
                    and solo.controller.next_active_cycle(cycle) != cycle)
                or (self._solo_oracle and solo.fetch_mode == "wrong")
            ):
                count = self._try_skip(cycle)
                if count:
                    probes.idle_cycles(kernel, count)
                    return
        elif self._smt_skip:
            count = self._try_skip(cycle)
            if count:
                probes.idle_cycles(kernel, count)
                return
        probes.begin_cycle(kernel, cycle)
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        self.writeback.tick(cycle, activity)
        self.issue.tick(cycle, activity)
        self.decode_rename.tick(cycle, activity)
        self.fetch.tick(cycle, activity)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        probes.end_cycle(kernel)

    def step_instrumented_sanitized(self) -> None:
        """Probe sampling plus invariant checks (telemetry + sanitize)."""
        kernel = self.kernel
        probes = kernel.probes
        cycle = kernel.cycle
        solo = self._solo
        if solo is not None:
            if (
                cycle < solo.fetch_stall_until
                or (self._solo_gates
                    and not solo.fetch_latch.instrs
                    and not solo.decode_latch.instrs
                    and solo.controller.next_active_cycle(cycle) != cycle)
                or (self._solo_oracle and solo.fetch_mode == "wrong")
            ):
                count = self._try_skip(cycle)
                if count:
                    probes.idle_cycles(kernel, count)
                    check_invariants(kernel, "fast-forward", cycle + count - 1)
                    check_cycle_end(kernel, cycle + count - 1)
                    return
        elif self._smt_skip:
            count = self._try_skip(cycle)
            if count:
                probes.idle_cycles(kernel, count)
                check_invariants(kernel, "fast-forward", cycle + count - 1)
                check_cycle_end(kernel, cycle + count - 1)
                return
        probes.begin_cycle(kernel, cycle)
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        check_invariants(kernel, self.commit.name, cycle)
        self.writeback.tick(cycle, activity)
        check_invariants(kernel, self.writeback.name, cycle)
        self.issue.tick(cycle, activity)
        check_invariants(kernel, self.issue.name, cycle)
        self.decode_rename.tick(cycle, activity)
        check_invariants(kernel, self.decode_rename.name, cycle)
        self.fetch.tick(cycle, activity)
        check_invariants(kernel, self.fetch.name, cycle)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        probes.end_cycle(kernel)
        check_cycle_end(kernel, cycle)
