"""The cycle scheduler: drives the stage components through one cycle.

Stages run in reverse pipeline order — commit, writeback, select/issue,
rename+decode, fetch — so that results written back this cycle are
visible to commit next cycle, issue slots freed by writeback are not
reused in the same cycle, and latch entries move at most one stage per
cycle.  After the last stage the scheduler closes the cycle: the per-unit
activity array is integrated by the power model (clock-tree power driven
by ROB occupancy from the kernel's incremental counter — no per-cycle
rescan of the threads), and the cycle counter advances.

The scheduler holds the stage components as plain attributes, so tests
and future scenarios can wrap or replace a single stage without touching
the kernel.
"""

from __future__ import annotations

from repro.pipeline.sanitizer import check_cycle_end, check_invariants
from repro.pipeline.stages.commit import CommitRecoverStage
from repro.pipeline.stages.decode_rename import DecodeRenameStage
from repro.pipeline.stages.execute_writeback import ExecuteWritebackStage
from repro.pipeline.stages.fetch import FetchStage
from repro.pipeline.stages.select_issue import SelectIssueStage
from repro.power.units import NUM_UNITS


class CycleScheduler:
    """Owns the five stage components and advances them one cycle at a time."""

    __slots__ = (
        "kernel", "total_rob_size",
        "commit", "writeback", "issue", "decode_rename", "fetch",
        "stages",
    )

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        # Constant once the kernel's threads are final (the kernel builds
        # its scheduler last).
        self.total_rob_size = kernel.total_rob_size
        self.commit = CommitRecoverStage(kernel)
        self.writeback = ExecuteWritebackStage(kernel, recovery=self.commit)
        self.issue = SelectIssueStage(kernel)
        self.decode_rename = DecodeRenameStage(kernel)
        self.fetch = FetchStage(kernel)
        # Reverse pipeline order, the order ``step`` runs them in.  The
        # stage objects stay plain attributes and ``step`` dispatches
        # through them each cycle, so tests and scenarios may wrap or
        # replace a single stage (or its ``tick``) at any time.
        self.stages = (
            self.commit,
            self.writeback,
            self.issue,
            self.decode_rename,
            self.fetch,
        )

    def step(self) -> None:
        """Advance the machine by one cycle."""
        kernel = self.kernel
        cycle = kernel.cycle
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        self.writeback.tick(cycle, activity)
        self.issue.tick(cycle, activity)
        self.decode_rename.tick(cycle, activity)
        self.fetch.tick(cycle, activity)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1

    def step_sanitized(self) -> None:
        """``step`` with invariant checks after every stage tick.

        The kernel binds its ``_step`` to this method instead of ``step``
        when ``config.sanitize`` is set (see ``Processor._finish_threads``)
        — the plain ``step`` carries no sanitize branch, so runs without
        the mode pay nothing.  The stage sequence and the cycle close
        mirror ``step`` exactly; a sanitized run is bit-identical or
        raises :class:`~repro.errors.SanitizerError`.
        """
        kernel = self.kernel
        cycle = kernel.cycle
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        check_invariants(kernel, self.commit.name, cycle)
        self.writeback.tick(cycle, activity)
        check_invariants(kernel, self.writeback.name, cycle)
        self.issue.tick(cycle, activity)
        check_invariants(kernel, self.issue.name, cycle)
        self.decode_rename.tick(cycle, activity)
        check_invariants(kernel, self.decode_rename.name, cycle)
        self.fetch.tick(cycle, activity)
        check_invariants(kernel, self.fetch.name, cycle)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        check_cycle_end(kernel, cycle)

    def step_instrumented(self) -> None:
        """``step`` bracketed by the probe bus's per-cycle sampling.

        Chosen by ``Processor._finish_threads`` when ``config.telemetry``
        is set — the same construction-time dispatch as the sanitizer, so
        the plain ``step`` carries no telemetry branch.  The bus samples
        occupancy at cycle top and differences the kernel's statistics at
        cycle bottom (see :class:`repro.telemetry.probes.ProbeBus`); it
        never writes simulation state, so an instrumented run is
        bit-identical to an uninstrumented one.
        """
        kernel = self.kernel
        probes = kernel.probes
        cycle = kernel.cycle
        probes.begin_cycle(kernel, cycle)
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        self.writeback.tick(cycle, activity)
        self.issue.tick(cycle, activity)
        self.decode_rename.tick(cycle, activity)
        self.fetch.tick(cycle, activity)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        probes.end_cycle(kernel)

    def step_instrumented_sanitized(self) -> None:
        """Probe sampling plus invariant checks (telemetry + sanitize)."""
        kernel = self.kernel
        probes = kernel.probes
        cycle = kernel.cycle
        probes.begin_cycle(kernel, cycle)
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        check_invariants(kernel, self.commit.name, cycle)
        self.writeback.tick(cycle, activity)
        check_invariants(kernel, self.writeback.name, cycle)
        self.issue.tick(cycle, activity)
        check_invariants(kernel, self.issue.name, cycle)
        self.decode_rename.tick(cycle, activity)
        check_invariants(kernel, self.decode_rename.name, cycle)
        self.fetch.tick(cycle, activity)
        check_invariants(kernel, self.fetch.name, cycle)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        probes.end_cycle(kernel)
        check_cycle_end(kernel, cycle)
