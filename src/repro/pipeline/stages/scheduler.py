"""The cycle scheduler: drives the stage components through one cycle.

Stages run in reverse pipeline order — commit, writeback, select/issue,
rename+decode, fetch — so that results written back this cycle are
visible to commit next cycle, issue slots freed by writeback are not
reused in the same cycle, and latch entries move at most one stage per
cycle.  After the last stage the scheduler closes the cycle: the per-unit
activity array is integrated by the power model (clock-tree power driven
by ROB occupancy from the kernel's incremental counter — no per-cycle
rescan of the threads), and the cycle counter advances.

**Cycle-skip fast-forward.**  On a single-thread machine a long D-cache
or redirect stall leaves the whole pipeline provably inert: both
front-end latch columns empty, no ready instruction, the ROB head not
completed, and nothing due out of the completion wheel this cycle.
Every stage tick is then a no-op and the cycle close is the power
model's idle accumulation — so the scheduler scans the wheel for the
next event (a non-empty ring slot within the horizon identifies its
cycle exactly), advances the statistics, power residency and throttle
residency for the whole stretch in closed form, and jumps.  The batch
bookkeeping reuses the per-cycle arithmetic (the power model loops its
own ``end_cycle``), so a fast-forwarded run is bit-identical to a
stepped one.  The skip arms only while fetch cannot run: during a
fetch stall (``fetch_stall_until``), or — for the oracle controller,
which waits at a misprediction instead of fetching wrong-path work —
while the thread sits on the wrong path.

The scheduler holds the stage components as plain attributes, so tests
and future scenarios can wrap or replace a single stage without touching
the kernel.
"""

from __future__ import annotations

from repro.pipeline.sanitizer import check_cycle_end, check_invariants
from repro.pipeline.stages.commit import CommitRecoverStage
from repro.pipeline.stages.decode_rename import DecodeRenameStage
from repro.pipeline.stages.execute_writeback import ExecuteWritebackStage
from repro.pipeline.stages.fetch import FetchStage
from repro.pipeline.stages.select_issue import SelectIssueStage
from repro.power.units import NUM_UNITS


class CycleScheduler:
    """Owns the five stage components and advances them one cycle at a time."""

    __slots__ = (
        "kernel", "total_rob_size",
        "commit", "writeback", "issue", "decode_rename", "fetch",
        "stages",
        "_solo", "_oracle_skip", "_ring", "_mask", "_far",
    )

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        # Constant once the kernel's threads are final (the kernel builds
        # its scheduler last).
        self.total_rob_size = kernel.total_rob_size
        self.commit = CommitRecoverStage(kernel)
        self.writeback = ExecuteWritebackStage(kernel, recovery=self.commit)
        self.issue = SelectIssueStage(kernel)
        self.decode_rename = DecodeRenameStage(kernel)
        self.fetch = FetchStage(kernel)
        # Reverse pipeline order, the order ``step`` runs them in.  The
        # stage objects stay plain attributes and ``step`` dispatches
        # through them each cycle, so tests and scenarios may wrap or
        # replace a single stage (or its ``tick``) at any time.
        self.stages = (
            self.commit,
            self.writeback,
            self.issue,
            self.decode_rename,
            self.fetch,
        )
        # Fast-forward state: single-thread machines only (an SMT core's
        # fetch arbitration and shared-cap interplay make per-cycle
        # inertness thread-coupled, and its stalls overlap anyway).
        completions = kernel.completions
        self._ring = completions.buckets
        self._mask = completions.mask
        self._far = completions.far_buckets
        threads = kernel.threads
        if len(threads) == 1:
            self._solo = threads[0]
            # The oracle-wait skip must not bypass a fetch-gating
            # controller: gating is consulted (and counts a throttled
            # cycle) before the wrong-path check in the fetch stage.
            self._oracle_skip = (
                self._solo.ctrl_blocks_wp_fetch
                and not self._solo.ctrl_gates_fetch
            )
        else:
            self._solo = None
            self._oracle_skip = False

    # ------------------------------------------------------------------
    # Cycle-skip fast-forward
    # ------------------------------------------------------------------

    def _try_fast_forward(self, thread, cycle: int, limit: int) -> int:
        """Idle-cycle count to jump, or 0 when any stage might do work.

        The caller established that fetch cannot run before ``limit``.
        The remaining guards prove every other stage is a no-op: empty
        latch columns (rename and decode idle), an empty ready list
        (select/issue idle — the deferred FU-pool refresh is observable
        only through claims), an uncompleted ROB head (commit idle) and
        an empty wheel slot at the current cycle (writeback idle).  The
        scan then runs to the next wheel event: within the horizon a
        non-empty ring slot identifies its event cycle exactly (issue
        never schedules past ``mask`` cycles out), and any far-bucket
        event bounds the jump from above.
        """
        if thread.fetch_latch.instrs or thread.decode_latch.instrs:
            return 0
        if thread.iq.ready_list:
            return 0
        entries = thread.rob_entries
        if entries and entries[0].completed:
            return 0
        ring = self._ring
        mask = self._mask
        if ring[cycle & mask]:
            return 0
        far = self._far
        if far and cycle in far:
            return 0
        bound = cycle + mask
        if limit > bound:
            limit = bound
        end = cycle + 1
        while end < limit and not ring[end & mask]:
            end += 1
        if far:
            for key in far:
                if cycle < key < end:
                    end = key
        return end - cycle

    def _fast_forward(self, cycle: int, count: int, stalled: bool) -> None:
        """Close ``count`` idle cycles in one batch (bit-identical to
        stepping them: constant occupancy, zero activity, and — on a
        fetch stall — the per-cycle redirect-stall count)."""
        kernel = self.kernel
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_idle_cycles(in_flight / self.total_rob_size, count)
        power.total_instr_cycles += in_flight * count
        stats = kernel.stats
        if stalled:
            stats.redirect_stall_cycles += count
        stats.cycles += count
        kernel.cycle = cycle + count

    # ------------------------------------------------------------------
    # The four step variants (construction-time dispatch)
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the machine by one cycle."""
        kernel = self.kernel
        cycle = kernel.cycle
        solo = self._solo
        if solo is not None:
            if cycle < solo.fetch_stall_until:
                count = self._try_fast_forward(
                    solo, cycle, solo.fetch_stall_until
                )
                if count:
                    self._fast_forward(cycle, count, True)
                    return
            elif self._oracle_skip and solo.fetch_mode == "wrong":
                count = self._try_fast_forward(
                    solo, cycle, cycle + self._mask
                )
                if count:
                    self._fast_forward(cycle, count, False)
                    return
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        self.writeback.tick(cycle, activity)
        self.issue.tick(cycle, activity)
        self.decode_rename.tick(cycle, activity)
        self.fetch.tick(cycle, activity)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1

    def step_sanitized(self) -> None:
        """``step`` with invariant checks after every stage tick.

        The kernel binds its ``_step`` to this method instead of ``step``
        when ``config.sanitize`` is set (see ``Processor._finish_threads``)
        — the plain ``step`` carries no sanitize branch, so runs without
        the mode pay nothing.  The stage sequence and the cycle close
        mirror ``step`` exactly; a sanitized run is bit-identical or
        raises :class:`~repro.errors.SanitizerError`.  A fast-forwarded
        stretch is checked once at its last cycle — the structures are
        untouched across the batch, so one check covers every cycle of
        it.
        """
        kernel = self.kernel
        cycle = kernel.cycle
        solo = self._solo
        if solo is not None:
            if cycle < solo.fetch_stall_until:
                count = self._try_fast_forward(
                    solo, cycle, solo.fetch_stall_until
                )
                if count:
                    self._fast_forward(cycle, count, True)
                    check_invariants(kernel, "fast-forward", cycle + count - 1)
                    check_cycle_end(kernel, cycle + count - 1)
                    return
            elif self._oracle_skip and solo.fetch_mode == "wrong":
                count = self._try_fast_forward(
                    solo, cycle, cycle + self._mask
                )
                if count:
                    self._fast_forward(cycle, count, False)
                    check_invariants(kernel, "fast-forward", cycle + count - 1)
                    check_cycle_end(kernel, cycle + count - 1)
                    return
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        check_invariants(kernel, self.commit.name, cycle)
        self.writeback.tick(cycle, activity)
        check_invariants(kernel, self.writeback.name, cycle)
        self.issue.tick(cycle, activity)
        check_invariants(kernel, self.issue.name, cycle)
        self.decode_rename.tick(cycle, activity)
        check_invariants(kernel, self.decode_rename.name, cycle)
        self.fetch.tick(cycle, activity)
        check_invariants(kernel, self.fetch.name, cycle)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        check_cycle_end(kernel, cycle)

    def step_instrumented(self) -> None:
        """``step`` bracketed by the probe bus's per-cycle sampling.

        Chosen by ``Processor._finish_threads`` when ``config.telemetry``
        is set — the same construction-time dispatch as the sanitizer, so
        the plain ``step`` carries no telemetry branch.  The bus samples
        occupancy at cycle top and differences the kernel's statistics at
        cycle bottom (see :class:`repro.telemetry.probes.ProbeBus`); it
        never writes simulation state, so an instrumented run is
        bit-identical to an uninstrumented one.  A fast-forwarded stretch
        is sampled once and scaled (``ProbeBus.idle_cycles``) — every
        per-cycle sample is constant across it.
        """
        kernel = self.kernel
        probes = kernel.probes
        cycle = kernel.cycle
        solo = self._solo
        if solo is not None:
            if cycle < solo.fetch_stall_until:
                count = self._try_fast_forward(
                    solo, cycle, solo.fetch_stall_until
                )
                if count:
                    self._fast_forward(cycle, count, True)
                    probes.idle_cycles(kernel, count, True)
                    return
            elif self._oracle_skip and solo.fetch_mode == "wrong":
                count = self._try_fast_forward(
                    solo, cycle, cycle + self._mask
                )
                if count:
                    self._fast_forward(cycle, count, False)
                    probes.idle_cycles(kernel, count, False)
                    return
        probes.begin_cycle(kernel, cycle)
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        self.writeback.tick(cycle, activity)
        self.issue.tick(cycle, activity)
        self.decode_rename.tick(cycle, activity)
        self.fetch.tick(cycle, activity)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        probes.end_cycle(kernel)

    def step_instrumented_sanitized(self) -> None:
        """Probe sampling plus invariant checks (telemetry + sanitize)."""
        kernel = self.kernel
        probes = kernel.probes
        cycle = kernel.cycle
        solo = self._solo
        if solo is not None:
            if cycle < solo.fetch_stall_until:
                count = self._try_fast_forward(
                    solo, cycle, solo.fetch_stall_until
                )
                if count:
                    self._fast_forward(cycle, count, True)
                    probes.idle_cycles(kernel, count, True)
                    check_invariants(kernel, "fast-forward", cycle + count - 1)
                    check_cycle_end(kernel, cycle + count - 1)
                    return
            elif self._oracle_skip and solo.fetch_mode == "wrong":
                count = self._try_fast_forward(
                    solo, cycle, cycle + self._mask
                )
                if count:
                    self._fast_forward(cycle, count, False)
                    probes.idle_cycles(kernel, count, False)
                    check_invariants(kernel, "fast-forward", cycle + count - 1)
                    check_cycle_end(kernel, cycle + count - 1)
                    return
        probes.begin_cycle(kernel, cycle)
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        check_invariants(kernel, self.commit.name, cycle)
        self.writeback.tick(cycle, activity)
        check_invariants(kernel, self.writeback.name, cycle)
        self.issue.tick(cycle, activity)
        check_invariants(kernel, self.issue.name, cycle)
        self.decode_rename.tick(cycle, activity)
        check_invariants(kernel, self.decode_rename.name, cycle)
        self.fetch.tick(cycle, activity)
        check_invariants(kernel, self.fetch.name, cycle)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        probes.end_cycle(kernel)
        check_cycle_end(kernel, cycle)
