"""Select/issue: pick ready instructions and start them executing.

Refreshes the functional-unit pool, then walks the threads in the cycle's
rotation order letting each thread's issue queue select ready
instructions oldest-first (honouring slot capacities, MSHR availability
and the controller's no-select bit), performs load D-cache accesses and
schedules each issued instruction's writeback into the completion wheel
(one masked ring index per scheduled completion).

When no thread has a ready instruction the stage returns before even
refreshing the FU pool: ``new_cycle`` is only observable through claims
(it refreshes the availability slots in place and trims the MSHR ledger
lazily against whatever cycle the next claimer passes), so deferring it
across ready-empty cycles is invisible.
"""

from __future__ import annotations

from operator import attrgetter

from repro.isa.opcodes import FU_MEM_READ as _FU_MEM_READ
from repro.isa.opcodes import FU_MEM_WRITE as _FU_MEM_WRITE
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_BY_SEQ = attrgetter("seq")

_WINDOW = int(PowerUnit.WINDOW)
_LSQ = int(PowerUnit.LSQ)
_ALU = int(PowerUnit.ALU)
_DCACHE = int(PowerUnit.DCACHE)
_DCACHE2 = int(PowerUnit.DCACHE2)


class SelectIssueStage(Stage):
    """Out-of-order selection and execution start."""

    name = "issue"

    # Latch surfaces this stage may touch (CON001): consumes the ready
    # list and schedules completions.
    CONTRACT = {
        "reads": (),
        "writes": ("iq", "completions"),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self.width = kernel.config.issue_width
        self.extra_exec_latency = kernel.config.extra_exec_latency
        # Stable shared structures (never rebound on the kernel; the FU
        # pool refreshes its availability list in place, the completion
        # wheel rebinds ring slots but never the ring).
        self.memory = kernel.memory
        self.buckets = kernel.completions.buckets
        self.ring_mask = kernel.completions.mask
        self.far_buckets = kernel.completions.far_buckets
        self.try_claim_code = kernel.fu_pool.try_claim_code
        self.code_available = kernel.fu_pool._code_available

    def tick(self, cycle: int, activity) -> None:
        kernel = self.kernel
        if kernel.iq_count == 0:
            # No dispatched instruction anywhere, so nothing can be ready
            # and no slot can be claimed.
            return
        threads = kernel.threads
        count = len(threads)
        if count == 1:
            if not threads[0].iq.ready_list:
                # Everything dispatched is waiting on a wakeup; no claim
                # can happen, so the FU-pool refresh is deferred too.
                return
        else:
            for thread in threads:
                if thread.iq.ready_list:
                    break
            else:
                return
        fu_pool = kernel.fu_pool
        fu_pool.new_cycle(cycle)
        budget = self.width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            iq = thread.iq
            ready = iq.ready_list
            if not ready:
                continue
            # IssueQueue.select fused with the issue bookkeeping: walk the
            # ready instructions oldest first, claim slots, and start
            # execution in one pass (identical pick order and side
            # effects; survivors stay ready for the next cycle).  The sort
            # only runs after a wakeup readied an older instruction
            # (``ready_sorted``); dispatch appends and the survivor
            # rebuild below keep the list in fetch order.
            if not iq.ready_sorted:
                if len(ready) > 1:
                    ready.sort(key=_BY_SEQ)
                iq.ready_sorted = True
            if thread.ctrl_blocks_selection:
                controller_blocks = thread.controller.blocks_selection
            else:
                controller_blocks = None
            stats = kernel.stats
            memory = self.memory
            ring = self.buckets
            ring_mask = self.ring_mask
            extra_exec = self.extra_exec_latency
            stamp = kernel.observer is not None
            try_claim_code = self.try_claim_code
            code_available = self.code_available
            survivors = []
            survive = survivors.append
            issued = 0
            wrong_path = 0
            lsq_accesses = 0
            dcache_accesses = 0
            dcache2_accesses = 0
            # Miss fills allocated this cycle must not influence this
            # cycle's remaining MSHR-availability checks (selection reads
            # the *start-of-select* MSHR state); defer them to the end of
            # the thread's pass.
            mshr_holds = None
            for instr in ready:
                if instr.squashed or instr.issued:
                    continue
                if issued >= budget:
                    survive(instr)
                    continue
                if controller_blocks is not None and controller_blocks(instr):
                    stats.selection_blocked += 1
                    survive(instr)
                    continue
                static = instr.static
                code = static.fu_code
                if code == _FU_MEM_READ or code == _FU_MEM_WRITE:
                    # Shared memory ports + MSHR availability.
                    if not try_claim_code(code):
                        survive(instr)
                        continue
                elif code_available[code] > 0:
                    code_available[code] -= 1
                else:
                    survive(instr)
                    continue
                instr.issued = True
                issued += 1
                if stamp:
                    instr.issue_cycle = cycle
                latency = static.latency + extra_exec
                if static.is_load:
                    mem_latency, l1_hit = memory.load_data(instr.mem_address)
                    dcache_accesses += 1
                    instr.dcache_missed = not l1_hit
                    if not l1_hit:
                        dcache2_accesses += 1
                        # The miss occupies an MSHR until the fill returns;
                        # squashing the load does not recall the fill.
                        if mshr_holds is None:
                            mshr_holds = [cycle + mem_latency]
                        else:
                            mshr_holds.append(cycle + mem_latency)
                    latency += mem_latency
                    lsq_accesses += 1
                elif static.is_store:
                    lsq_accesses += 1
                if instr.on_wrong_path:
                    wrong_path += 1
                if latency <= ring_mask:
                    ring[(cycle + latency) & ring_mask].append(instr)
                else:
                    # Beyond the ring horizon (impossible under shipped
                    # configurations — the ring is sized for the worst
                    # walk — but kept correct): the far-bucket dict.
                    far = self.far_buckets
                    complete = cycle + latency
                    bucket = far.get(complete)
                    if bucket is None:
                        far[complete] = [instr]
                    else:
                        bucket.append(instr)
            iq.ready_list = survivors
            if mshr_holds is not None:
                hold_mshr = fu_pool.hold_mshr
                for until in mshr_holds:
                    hold_mshr(until)
            if issued:
                activity[_WINDOW] += issued
                activity[_ALU] += issued
                if lsq_accesses:
                    activity[_LSQ] += lsq_accesses
                    activity[_DCACHE] += dcache_accesses
                    activity[_DCACHE2] += dcache2_accesses
                iq.count -= issued
                kernel.iq_count -= issued
                stats.issued += issued
                budget -= issued
                if wrong_path:
                    stats.issued_wrong_path += wrong_path
