"""The stage-pipeline kernel: one component per pipeline region.

The processor's per-cycle loop is composed of five stage components with
explicit latch interfaces (see :mod:`repro.pipeline.stages.latch`), driven
in reverse pipeline order by the
:class:`~repro.pipeline.stages.scheduler.CycleScheduler`:

======================  ==============================================
:class:`FetchStage`              predicted-path instruction supply
:class:`DecodeRenameStage`       decode gate + rename/dispatch
:class:`SelectIssueStage`        wakeup/select and execution start
:class:`ExecuteWritebackStage`   result broadcast, branch resolution
:class:`CommitRecoverStage`      in-order retirement + squash recovery
======================  ==============================================

Both the single-thread :class:`~repro.pipeline.processor.Processor` and
the SMT core are instantiations of this kernel; see
``docs/ARCHITECTURE.md`` for the latch contracts and the throttling
attachment points.
"""

from repro.pipeline.stages.base import Stage
from repro.pipeline.stages.commit import CommitRecoverStage
from repro.pipeline.stages.decode_rename import DecodeRenameStage
from repro.pipeline.stages.execute_writeback import ExecuteWritebackStage
from repro.pipeline.stages.fetch import FetchStage
from repro.pipeline.stages.latch import CompletionLatch, PipeLatch
from repro.pipeline.stages.scheduler import CycleScheduler
from repro.pipeline.stages.select_issue import SelectIssueStage

__all__ = [
    "Stage",
    "PipeLatch",
    "CompletionLatch",
    "CycleScheduler",
    "FetchStage",
    "DecodeRenameStage",
    "SelectIssueStage",
    "ExecuteWritebackStage",
    "CommitRecoverStage",
]
