"""Commit and recovery: the in-order retirement end of the kernel.

Commit retires completed instructions from each thread's ROB head in
program order up to the machine's commit width (threads take turns in a
cycle-rotated order so no thread systematically eats the width first),
performing the architectural side effects: store D-cache access, LSQ
release, predictor/estimator/BTB training for conditional branches, and
power crediting of the retired instruction.

The array kernel stores no per-instruction access tally; the two cold
crediting paths that need one (per-thread energy attribution, squash
accounting) reconstruct it on demand with
:func:`repro.pipeline.arrays.materialize_tally`, and front-end latch
squashes — whose tally is always one I-cache access plus a predictor
access for branches — skip even that and credit the two units directly.

Recovery also lives here: when writeback resolves a mispredicted branch,
:meth:`CommitRecoverStage.recover` squashes the thread's younger
instructions (ROB, IQ, both front-end latch columns), repairs the rename
map, predictor history and RAS from the branch's checkpoints, and
re-points the thread's fetch cursor at the branch's recorded resume
position.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.pipeline.arrays import materialize_tally
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_ICACHE = int(PowerUnit.ICACHE)
_BPRED = int(PowerUnit.BPRED)
_REGFILE = int(PowerUnit.REGFILE)
_DCACHE = int(PowerUnit.DCACHE)
_DCACHE2 = int(PowerUnit.DCACHE2)

# Commit distance between supply prunes of the consumed true-path stream.
_PRUNE_INTERVAL = 8192


class CommitRecoverStage(Stage):
    """Retire completed instructions; repair state after mispredictions."""

    name = "commit"

    # Latch surfaces this stage may touch (checked by ``repro check``,
    # rule CON001).  Commit owns squash/repair, so recovery's latch
    # flushes and renamer restore are charged here even when writeback
    # triggers them through ``recover``.
    CONTRACT = {
        "reads": (),
        "writes": (
            "rob", "iq", "lsq", "renamer", "fetch_latch", "decode_latch",
        ),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self.width = kernel.config.commit_width
        self.redirect_penalty = kernel.config.redirect_penalty
        # Run batching: drain contiguous straight-line (non-store,
        # non-conditional-branch) completions through a reduced inner
        # loop with the retire side effects those instructions can't
        # have — store D-cache walk, predictor training — hoisted out.
        self._run_batch = kernel.config.run_batch

    def tick(self, cycle: int, activity) -> None:
        threads = self.kernel.threads
        count = len(threads)
        budget = self.width
        if count == 1:
            thread = threads[0]
            entries = thread.rob_entries
            # Skip the call (and all its hoisting) on stall cycles.
            if entries and entries[0].completed:
                self._commit_thread(thread, cycle, activity, budget)
            return
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._commit_thread(thread, cycle, activity, budget)

    def _commit_thread(self, thread, cycle: int, activity, budget: int) -> int:
        entries = thread.rob_entries
        # Nothing committable: skip all hoisting (most stall cycles).
        if not entries or not entries[0].completed:
            return 0
        kernel = self.kernel
        power = kernel.power
        memory = kernel.memory
        observer = kernel.observer
        # Single-thread machines never attribute energy per thread, so the
        # commit credit reduces to the clock-residency sum — inlined here
        # (same arithmetic as PowerModel.credit_committed).
        attribute = power.attribute_threads
        residency = 0
        lsq = thread.lsq
        committed = 0
        freed_lsq = 0
        regfile_writes = 0
        dcache_accesses = 0
        dcache2_accesses = 0
        branch_commits = 0
        run_batch = self._run_batch
        while committed < budget:
            if not entries:
                break
            head = entries[0]
            if not head.completed:
                break
            static = head.static
            if run_batch and not static.is_store and not static.is_cond_branch:
                # Batched straight-line retire: everything but stores and
                # conditional branches shares one reduced body (loads
                # release their LSQ entry; unconditional control trains
                # nothing at commit), so the contiguous qualifying prefix
                # drains in this inner loop — side-effect order, observer
                # callbacks and the power credit are instruction-exact.
                while True:
                    entries.popleft()
                    if observer is not None:
                        head.commit_cycle = cycle
                    if head.phys_dest >= 0:
                        regfile_writes += 1
                    if static.is_load:
                        lsq.release()
                        freed_lsq += 1
                    if attribute:
                        power.credit_committed(
                            head, cycle,
                            materialize_tally(head, True, True, False),
                        )
                    else:
                        fetch_cycle = head.fetch_cycle
                        if fetch_cycle >= 0 and cycle > fetch_cycle:
                            residency += cycle - fetch_cycle
                    if observer is not None:
                        observer.on_commit(head, cycle)
                    committed += 1
                    thread.last_committed_true_index = head.true_index
                    if committed >= budget or not entries:
                        break
                    head = entries[0]
                    if not head.completed:
                        break
                    static = head.static
                    if static.is_store or static.is_cond_branch:
                        break
                continue
            entries.popleft()
            if observer is not None:
                head.commit_cycle = cycle
            if head.phys_dest >= 0:
                regfile_writes += 1
            store_miss = False
            if static.is_store:
                _, l1_hit = memory.store_data(head.mem_address)
                dcache_accesses += 1
                if not l1_hit:
                    dcache2_accesses += 1
                    store_miss = True
                lsq.release()
                freed_lsq += 1
            elif static.is_load:
                lsq.release()
                freed_lsq += 1
            elif static.is_cond_branch:
                branch_commits += 1
                self._commit_branch(thread, head)
            if attribute:
                power.credit_committed(
                    head, cycle, materialize_tally(head, True, True, store_miss)
                )
            else:
                fetch_cycle = head.fetch_cycle
                if fetch_cycle >= 0 and cycle > fetch_cycle:
                    residency += cycle - fetch_cycle
            if observer is not None:
                observer.on_commit(head, cycle)
            committed += 1
            # Only true-path instructions commit, and every one carries
            # its stream index.
            thread.last_committed_true_index = head.true_index
        if residency:
            power.committed_instr_cycles += residency
        if committed:
            if regfile_writes:
                activity[_REGFILE] += regfile_writes
            if dcache_accesses:
                activity[_DCACHE] += dcache_accesses
                if dcache2_accesses:
                    activity[_DCACHE2] += dcache2_accesses
            if branch_commits:
                activity[_BPRED] += branch_commits
            kernel.stats.committed += committed
            kernel.rob_count -= committed
            kernel.lsq_count -= freed_lsq
            thread.committed += committed
            thread.commits_since_prune += committed
            if thread.commits_since_prune >= _PRUNE_INTERVAL:
                thread.supply.prune_before(thread.last_committed_true_index)
                thread.commits_since_prune = 0
        return committed

    def _commit_branch(self, thread, instr: DynamicInstruction) -> None:
        """Retire one conditional branch (training + bookkeeping).  The
        caller batches the per-branch predictor activity."""
        stats = self.kernel.stats
        stats.cond_branches_committed += 1
        thread.cond_branches_committed += 1
        correct = not instr.mispredicted
        if not correct:
            stats.mispredictions_committed += 1
            thread.mispredictions_committed += 1
        thread.bpred.train(instr.pc, instr.actual_taken, instr.bpred_snapshot)
        if thread.confidence is not None:
            thread.confidence.train(
                instr.pc, correct, instr.bpred_snapshot, taken=instr.actual_taken
            )
            if instr.confidence is not None:
                stats.confidence.record(instr.confidence, correct)
        if instr.actual_taken and instr.actual_target >= 0:
            target_address = thread.program.block(instr.actual_target).address
            thread.btb.update(instr.pc, target_address)

    # ------------------------------------------------------------------
    # Recovery (invoked by the writeback stage at branch resolution)
    # ------------------------------------------------------------------

    def recover(self, thread, branch: DynamicInstruction, cycle: int) -> None:
        """Squash the thread's younger instructions and redirect its fetch."""
        stats = self.kernel.stats
        stats.squashes += 1
        # Remove every younger instruction of this thread, youngest first.
        backend = thread.rob.squash_younger(branch.seq)
        if backend:
            self.kernel.rob_count -= len(backend)
            self._squash_many(thread, backend, cycle, in_backend=True)
        thread.iq.squash_younger(branch.seq)
        # The latch columns: squash the live window (``head`` onward) and
        # drop the columns wholesale.
        fetch_latch = thread.fetch_latch
        if fetch_latch.head < len(fetch_latch.instrs):
            self._squash_many(
                thread,
                fetch_latch.instrs[fetch_latch.head:],
                cycle,
                in_backend=False,
            )
            fetch_latch.clear()
        decode_latch = thread.decode_latch
        if decode_latch.head < len(decode_latch.instrs):
            self._squash_many(
                thread,
                decode_latch.instrs[decode_latch.head:],
                cycle,
                in_backend=False,
            )
            decode_latch.clear()

        # Architectural repair.
        thread.renamer.restore(branch.rename_checkpoint)
        thread.bpred.restore(branch.bpred_snapshot, branch.actual_taken)
        thread.ras.restore(branch.ras_checkpoint)

        # Redirect fetch down the branch's actual path.  Re-pointing the
        # wrong-path cursor invalidates any in-progress supply packet.
        if branch.resume_mode == "true":
            thread.fetch_mode = "true"
            thread.true_index = branch.resume_true_index
            thread.wp_cursor = None
        else:
            thread.fetch_mode = "wrong"
            thread.wp_cursor = branch.resume_wp_cursor
        thread.wp_packet = None
        thread.wp_template = None
        # Run descriptors only ever name latch-resident instructions, and
        # the latches were just squashed wholesale above.
        thread.run_queue.clear()
        thread.fetch_stall_until = cycle + self.redirect_penalty
        thread.unresolved_mispredicts -= 1
        if thread.unresolved_mispredicts < 0:
            raise SimulationError("unresolved misprediction count underflow")

    def _squash_many(self, thread, instrs, cycle: int, in_backend: bool) -> None:
        """Squash a batch of one thread's instructions (recovery hot loop).

        Mirrors, per instruction: the squash flag, the power model's
        wasted-energy credit (``PowerModel.credit_squashed`` — inlined for
        the common no-per-thread-ledger case, squashes being the
        second-hottest event in misprediction-heavy runs), observer and
        controller notifications, and — for back-end residents — rename/
        IQ/LSQ deallocation.
        """
        kernel = self.kernel
        power = kernel.power
        observer = kernel.observer
        attribute = power.attribute_threads
        energy_per_access = power._energy_per_access
        wasted = power.wasted_energy
        squashed_accesses = power.squashed_accesses
        wasted_cycles = 0
        count = 0
        iq = thread.iq
        lsq = thread.lsq
        pending_tags = thread.renamer.pending_tags
        waiters = iq.waiters
        squash_hook = thread.ctrl_has_squash_hook
        freed_iq = 0
        freed_lsq = 0
        # Two loop variants keyed on the (per-call constant) residency:
        # front-end latch squashes — the bulk of every recovery — carry
        # exactly one I-cache access plus one predictor access for
        # control instructions, so the credit is two direct accumulates
        # with no tally at all (``accesses * energy`` with
        # ``accesses == 1`` is exactly ``energy``, so the shortcut
        # accumulates bit-identical floats); back-end residents
        # materialize their tally and walk it ascending-unit, matching
        # the object kernel's attribution order.
        if not in_backend:
            icache_energy = energy_per_access[_ICACHE]
            bpred_energy = energy_per_access[_BPRED]
            for instr in instrs:
                instr.squashed = True
                count += 1
                if attribute:
                    power.credit_squashed(
                        instr, cycle, materialize_tally(instr, False)
                    )
                else:
                    wasted[_ICACHE] += icache_energy
                    squashed_accesses[_ICACHE] += 1
                    if instr.static.is_branch:
                        wasted[_BPRED] += bpred_energy
                        squashed_accesses[_BPRED] += 1
                    fetch_cycle = instr.fetch_cycle
                    if cycle > fetch_cycle >= 0:
                        wasted_cycles += cycle - fetch_cycle
                if observer is not None:
                    observer.on_squash(instr, cycle)
                if instr.static.is_cond_branch:
                    if instr.lowconf:
                        instr.lowconf = False
                        thread.lowconf_inflight -= 1
                    if squash_hook:
                        thread.controller.on_branch_squashed(instr)
                    # A mispredicted branch still in a front-end latch can
                    # never have resolved; it is always discounted here.
                    if instr.mispredicted:
                        thread.unresolved_mispredicts -= 1
        else:
            for instr in instrs:
                instr.squashed = True
                count += 1
                if attribute:
                    power.credit_squashed(
                        instr, cycle, materialize_tally(instr, True)
                    )
                else:
                    tally = materialize_tally(instr, True)
                    for unit, accesses in enumerate(tally):
                        if accesses:
                            wasted[unit] += accesses * energy_per_access[unit]
                            squashed_accesses[unit] += accesses
                    fetch_cycle = instr.fetch_cycle
                    if cycle > fetch_cycle >= 0:
                        wasted_cycles += cycle - fetch_cycle
                if observer is not None:
                    observer.on_squash(instr, cycle)
                static = instr.static
                if static.is_cond_branch:
                    if instr.lowconf:
                        instr.lowconf = False
                        thread.lowconf_inflight -= 1
                    if squash_hook:
                        thread.controller.on_branch_squashed(instr)
                    if instr.mispredicted and not instr.completed:
                        thread.unresolved_mispredicts -= 1
                tag = instr.phys_dest
                if tag >= 0:
                    pending_tags.discard(tag)  # RegisterRenamer.forget
                    waiters.pop(tag, None)  # IssueQueue.forget_tag
                if not instr.issued:
                    freed_iq += 1
                if static.is_mem:
                    freed_lsq += 1
        kernel.stats.squashed += count
        thread.squashed += count
        if wasted_cycles:
            power.wasted_instr_cycles += wasted_cycles
        if freed_iq:
            iq.count -= freed_iq
            kernel.iq_count -= freed_iq
            if iq.count < 0:
                raise SimulationError("issue queue count went negative")
        if freed_lsq:
            lsq.occupied -= freed_lsq
            kernel.lsq_count -= freed_lsq
            if lsq.occupied < 0:
                raise SimulationError("release from an empty LSQ")
