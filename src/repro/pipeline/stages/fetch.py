"""Fetch: walk the predicted path and fill the fetch latch.

The front-end fetches along its *predictions*: the thread's
:class:`~repro.frontend.supply.InstructionSupply` serves true-path records
while predictions are correct, and a misprediction diverges fetch onto a
wrong-path packet walk of the same CFG (real wrong-path code that fetches,
decodes and executes until the branch resolves).  Per fetched line the
I-cache is probed once; a miss stalls the thread's fetch until the fill
returns.  Conditional branches consult predictor, BTB, RAS and the
confidence estimator, arm the speculation controller's throttling hooks,
and record the cursor fetch must resume from if they turn out
mispredicted.

**Packet consumption.**  True-path records are indexed straight out of
the supply's ring.  Wrong-path records come in per-block packets: the
supply stamps one block at a time (``wrong_packet``), the thread keeps a
packet cursor (``wp_packet``/``wp_pos``), and only a packet's *last*
record can be a control instruction — so the inner loop pays one Python
call per wrong-path *block* instead of one per instruction.  Branch
recovery still works on the seed walker's ``(block, index, stack, step)``
cursors; anything that re-points ``thread.wp_cursor`` outside this loop
clears the packet.

On an SMT core the single fetch port is arbitrated by the kernel's fetch
policy; the single-thread machine skips the policy entirely.
"""

from __future__ import annotations

from itertools import repeat as _repeat

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import Opcode
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_ICACHE = int(PowerUnit.ICACHE)
_BPRED = int(PowerUnit.BPRED)
_DCACHE2 = int(PowerUnit.DCACHE2)

_CALL = Opcode.CALL
_RET = Opcode.RET

_NEW_INSTR = DynamicInstruction.__new__
_DYN = DynamicInstruction

# Smallest run worth admitting en bloc: below this the per-run setup
# (template unpack, line-span scan, bulk allocation, descriptor push)
# costs more than the per-instruction loop it replaces.
_MIN_RUN = 6


class FetchStage(Stage):
    """Front-end instruction supply along the predicted path."""

    name = "fetch"

    # Latch surfaces this stage may touch (CON001): appends to the fetch
    # latch only; the decode-latch read is the shared-buffer occupancy
    # gate.
    CONTRACT = {
        "reads": ("decode_latch",),
        "writes": ("fetch_latch",),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        config = kernel.config
        self.width = config.fetch_width
        self.max_taken_branches = config.max_taken_branches_per_cycle
        self.fetch_to_decode_latency = config.fetch_to_decode_latency
        self.line_shift = config.line_bytes.bit_length() - 1
        # Stable aliases of the I-cache internals for the inlined MRU
        # probe (the set array and stats objects are mutated in place,
        # never rebound).
        icache = kernel.memory.icache
        self._icache_sets = icache._sets
        self._icache_stats = icache.stats
        self._icache_set_mask = icache._set_mask
        # Run batching: admit whole precompiled straight-line runs when
        # the supply provides templates (repro/frontend/supply.py); the
        # per-instruction path below stays the fallback and the
        # REPRO_RUN_BATCH=0 A/B side.
        self._run_batch = config.run_batch

    def tick(self, cycle: int, activity) -> None:
        kernel = self.kernel
        threads = kernel.threads
        if len(threads) == 1:
            self._fetch_thread(threads[0], cycle, activity)
            return
        if kernel.fetch_policy is None:
            raise SimulationError("a multi-thread processor needs a fetch policy")
        thread = kernel.fetch_policy.pick(kernel, cycle)
        if thread is None:
            return
        self._fetch_thread(thread, cycle, activity)

    def _fetch_thread(self, thread, cycle: int, activity) -> None:
        kernel = self.kernel
        stats = kernel.stats
        if cycle < thread.fetch_stall_until:
            stats.redirect_stall_cycles += 1
            return
        controller = thread.controller
        if thread.ctrl_gates_fetch and not controller.fetch_allowed(cycle):
            stats.fetch_throttled_cycles += 1
            return
        if thread.ctrl_blocks_wp_fetch and thread.fetch_mode == "wrong":
            # Oracle fetch: wait at the misprediction until resolution.
            return
        fetch_latch = thread.fetch_latch
        decode_latch = thread.decode_latch
        capacity = (
            thread.fetch_buffer
            - (len(fetch_latch.instrs) - fetch_latch.head)
            - (len(decode_latch.instrs) - decode_latch.head)
        )
        if capacity <= 0:
            return

        width = self.width
        if capacity < width:
            width = capacity
        max_taken = self.max_taken_branches
        decode_latency = self.fetch_to_decode_latency
        supply = thread.supply
        memory = kernel.memory
        line_shift = self.line_shift
        # Inlined I-cache MRU probe (same line granularity: both shifts
        # derive from config.line_bytes).  The hit-at-MRU case — the
        # overwhelmingly common one — accounts the access and skips two
        # call frames; anything else takes the full hierarchy walk.
        icache_sets = self._icache_sets
        icache_stats = self._icache_stats
        icache_set_mask = self._icache_set_mask
        mem_offset = thread.mem_offset
        thread_id = thread.thread_id
        thread.fetch_cycles += 1
        seq = kernel.seq
        # True-path fast path: the supply's ring is stable for the whole
        # tick (pruning happens at commit, generation appends in place), so
        # already-materialised records are indexed directly.
        true_records = supply._records
        true_base = supply._base
        num_records = len(true_records)
        latch_instrs = fetch_latch.instrs
        append_instr = latch_instrs.append
        append_stamp = fetch_latch.stamps.append
        # Run-batch aliases.  ``run_meta`` is None when batching is off or
        # the supply has no per-record templates (trace replay, live walk)
        # — then every instruction takes the per-instruction path below.
        run_batch = self._run_batch
        if run_batch:
            run_meta = supply._run_meta
            run_pos = supply._run_pos
            extend_instrs = latch_instrs.extend
            extend_stamps = fetch_latch.stamps.extend
            push_run = thread.run_queue.append
        else:
            run_meta = None

        fetched = 0
        wrong_path = 0
        branches = 0
        taken_branches = 0
        current_line = -1
        ready_cycle = cycle + decode_latency
        # Only control instructions can change the path mode or jump the
        # cursors, so mode and packet state are tracked in locals and
        # synced with the thread around each branch (and at every loop
        # exit).  ``wp_cursor`` is always the continuation *after* the
        # in-progress packet drains.
        on_true = thread.fetch_mode == "true"
        true_index = thread.true_index
        wp_cursor = thread.wp_cursor
        wp_packet = thread.wp_packet
        if wp_packet is not None:
            wp_pos = thread.wp_pos
            wp_len = len(wp_packet)
            wp_tmpl = thread.wp_template if run_batch else None
        else:
            wp_pos = 0
            wp_len = 0
            wp_tmpl = None
        while fetched < width:
            if on_true:
                index = true_index - true_base
                if index >= num_records:
                    supply.get(true_index)
                    num_records = len(true_records)
                tmpl = run_meta[index] if run_meta is not None else None
                if tmpl is not None:
                    # Run batch: admit the rest of this block's straight-
                    # line body en bloc.  One MRU probe per newly spanned
                    # line; a non-MRU line cuts the run just before it so
                    # the per-instruction path (full hierarchy walk,
                    # stall) handles that line exactly as before.
                    # Terminator records carry None metadata, so this
                    # template always has body left: take >= 1 here.
                    # Short prospective runs fall through: below
                    # ``_MIN_RUN`` instructions the per-run setup costs
                    # more than the per-instruction loop it replaces.
                    pos = run_pos[index]
                    take = tmpl[1] - pos
                    room = width - fetched
                    if take > room:
                        take = room
                    if take >= _MIN_RUN:
                        (
                            body_statics, body_n, addr0, mem_positions,
                            mem_prefix, src_prefix,
                        ) = tmpl
                        addr0 += (pos << 2) + mem_offset
                        scan_line = addr0 >> line_shift
                        last_line = (
                            addr0 + ((take - 1) << 2)
                        ) >> line_shift
                        if scan_line == current_line:
                            scan_line += 1
                        while scan_line <= last_line:
                            tag_set = icache_sets[scan_line & icache_set_mask]
                            if tag_set and tag_set[0] == scan_line:
                                icache_stats.accesses += 1
                                scan_line += 1
                            else:
                                take = (
                                    (scan_line << line_shift) - addr0
                                ) >> 2
                                last_line = scan_line - 1
                                break
                        if take > 0:
                            # Bulk allocation: ``map`` drives ``__new__``
                            # from C, then one store loop stamps the slots
                            # and two ``extend`` calls land the run in the
                            # latch.
                            new_instrs = list(
                                map(_NEW_INSTR, _repeat(_DYN, take))
                            )
                            first_seq = seq
                            if pos or take != body_n:
                                run_statics = body_statics[pos:pos + take]
                            else:
                                run_statics = body_statics
                            for instr, static in zip(new_instrs, run_statics):
                                instr.seq = seq
                                instr.static = static
                                instr.thread_id = thread_id
                                instr.fetch_cycle = cycle
                                instr.on_wrong_path = False
                                instr.squashed = False
                                instr.true_index = true_index
                                seq += 1
                                true_index += 1
                            extend_instrs(new_instrs)
                            extend_stamps([ready_cycle] * take)
                            mp_lo = mem_prefix[pos]
                            mp_hi = mem_prefix[pos + take]
                            if mp_hi > mp_lo:
                                rebase = index - pos
                                for mp in mem_positions[mp_lo:mp_hi]:
                                    mem_address = true_records[rebase + mp][3]
                                    if mem_address:
                                        new_instrs[mp - pos].mem_address = (
                                            mem_address + mem_offset
                                        )
                            push_run((
                                first_seq,
                                take,
                                mp_hi - mp_lo,
                                src_prefix[pos + take] - src_prefix[pos],
                            ))
                            current_line = last_line
                            fetched += take
                            continue
                static, actual_taken, actual_target, mem_address = (
                    true_records[index]
                )
                next_cursor = None
            else:
                if wp_pos == wp_len:
                    if run_batch:
                        wp_packet, wp_cursor, wp_tmpl = (
                            supply.wrong_packet_run(wp_cursor)
                        )
                    else:
                        wp_packet, wp_cursor = supply.wrong_packet(wp_cursor)
                    wp_pos = 0
                    wp_len = len(wp_packet)
                if wp_tmpl is not None:
                    # Wrong-path run batch: same admission rules; the
                    # packet is the whole resolved block, so template
                    # positions index the packet records directly.
                    take = wp_tmpl[1] - wp_pos
                    room = width - fetched
                    if take > room:
                        take = room
                    if take >= _MIN_RUN:
                        (
                            body_statics, body_n, addr0, mem_positions,
                            mem_prefix, src_prefix,
                        ) = wp_tmpl
                        addr0 += (wp_pos << 2) + mem_offset
                        scan_line = addr0 >> line_shift
                        last_line = (addr0 + ((take - 1) << 2)) >> line_shift
                        if scan_line == current_line:
                            scan_line += 1
                        while scan_line <= last_line:
                            tag_set = icache_sets[scan_line & icache_set_mask]
                            if tag_set and tag_set[0] == scan_line:
                                icache_stats.accesses += 1
                                scan_line += 1
                            else:
                                take = (
                                    (scan_line << line_shift) - addr0
                                ) >> 2
                                last_line = scan_line - 1
                                break
                        if take > 0:
                            new_instrs = list(
                                map(_NEW_INSTR, _repeat(_DYN, take))
                            )
                            first_seq = seq
                            if wp_pos or take != body_n:
                                run_statics = body_statics[
                                    wp_pos:wp_pos + take
                                ]
                            else:
                                run_statics = body_statics
                            for instr, static in zip(new_instrs, run_statics):
                                instr.seq = seq
                                instr.static = static
                                instr.thread_id = thread_id
                                instr.fetch_cycle = cycle
                                instr.on_wrong_path = True
                                instr.squashed = False
                                seq += 1
                            extend_instrs(new_instrs)
                            extend_stamps([ready_cycle] * take)
                            mp_lo = mem_prefix[wp_pos]
                            mp_hi = mem_prefix[wp_pos + take]
                            if mp_hi > mp_lo:
                                for mp in mem_positions[mp_lo:mp_hi]:
                                    mem_address = wp_packet[mp][3]
                                    if mem_address:
                                        new_instrs[mp - wp_pos].mem_address = (
                                            mem_address + mem_offset
                                        )
                            push_run((
                                first_seq,
                                take,
                                mp_hi - mp_lo,
                                src_prefix[wp_pos + take]
                                - src_prefix[wp_pos],
                            ))
                            current_line = last_line
                            wp_pos += take
                            wrong_path += take
                            fetched += take
                            continue
                # Peek: the packet position only advances once the I-cache
                # admits the instruction (a stalled instruction must be
                # re-fetched when the fill returns).
                static, actual_taken, actual_target, mem_address = wp_packet[wp_pos]
                # Only a packet's last record can be a control instruction;
                # its continuation cursor is the branch's resume point.
                next_cursor = wp_cursor

            address = static.address + mem_offset
            line = address >> line_shift
            if line != current_line:
                tag_set = icache_sets[line & icache_set_mask]
                if tag_set and tag_set[0] == line:
                    icache_stats.accesses += 1
                else:
                    latency, l1_hit = memory.fetch_line(address)
                    if not l1_hit:
                        activity[_ICACHE] += 1
                        activity[_DCACHE2] += 1
                        thread.fetch_stall_until = cycle + latency - 1
                        stats.icache_stall_cycles += 1
                        break
                current_line = line

            on_wrong = not on_true
            if on_wrong:
                wp_pos += 1
            # DynamicInstruction creation, inlined (the hottest allocation
            # in the simulator): only the slots some later stage reads
            # before writing are initialised — see the lazily-populated
            # slot contract in repro/isa/instruction.py.
            instr = _NEW_INSTR(_DYN)
            instr.seq = seq
            instr.static = static
            instr.thread_id = thread_id
            instr.fetch_cycle = cycle
            instr.on_wrong_path = on_wrong
            instr.squashed = False
            seq += 1
            if mem_address:
                instr.mem_address = mem_address + mem_offset
            if on_true:
                instr.true_index = true_index

            append_instr(instr)
            append_stamp(ready_cycle)
            fetched += 1
            if static.is_branch:
                branches += 1
                thread.true_index = true_index
                thread.wp_cursor = wp_cursor
                stop_after = self._fetch_branch(
                    thread, instr, actual_taken, actual_target, next_cursor,
                    on_true,
                )
                if instr.predicted_taken:
                    taken_branches += 1
                if on_wrong:
                    wrong_path += 1
                on_true = thread.fetch_mode == "true"
                true_index = thread.true_index
                wp_cursor = thread.wp_cursor
                # A branch always ends its packet; any redirect re-pointed
                # ``thread.wp_cursor``, so the next packet stamps fresh.
                wp_packet = None
                wp_tmpl = None
                wp_pos = 0
                wp_len = 0
                # Only a control instruction can stop the fetch group.
                if stop_after or taken_branches >= max_taken:
                    break
            elif on_true:
                true_index += 1
            else:
                wrong_path += 1

        thread.true_index = true_index
        thread.wp_cursor = wp_cursor
        if wp_packet is not None and wp_pos < wp_len:
            thread.wp_packet = wp_packet
            thread.wp_pos = wp_pos
            thread.wp_template = wp_tmpl
        else:
            thread.wp_packet = None
            thread.wp_template = None
        kernel.seq = seq
        if fetched:
            activity[_ICACHE] += fetched
            if branches:
                activity[_BPRED] += branches
            stats.fetched += fetched
            thread.fetched += fetched
            if wrong_path:
                stats.fetched_wrong_path += wrong_path
                thread.fetched_wrong_path += wrong_path

    def _fetch_branch(
        self,
        thread,
        instr: DynamicInstruction,
        actual_taken: bool,
        actual_target: int,
        next_cursor,
        on_true: bool,
    ) -> bool:
        """Handle a control instruction at fetch.  Returns True to stop the
        fetch group after this instruction (BTB bubble, oracle stall, or a
        divergence onto the wrong path).  The caller batches the per-branch
        predictor activity into the cycle's array."""
        stats = self.kernel.stats
        instr.actual_taken = actual_taken
        instr.actual_target = actual_target
        stop_after = False
        pc = instr.pc = instr.static.address

        if instr.static.is_cond_branch:
            instr.lowconf = False
            instr.confidence = None
            instr.throttle_token = None
            stats.cond_branches_fetched += 1
            prediction = thread.bpred.predict(pc)
            instr.predicted_taken = prediction.taken
            instr.bpred_snapshot = prediction.snapshot
            instr.mispredicted = prediction.taken != actual_taken
            instr.ras_checkpoint = thread.ras.checkpoint()
            confidence = thread.confidence
            if confidence is not None:
                confidence.set_actual(actual_taken)
                level = confidence.estimate(
                    pc, prediction, thread.bpred,
                    update_state=not instr.on_wrong_path,
                )
                instr.confidence = level
                if level.is_low:
                    instr.lowconf = True
                    thread.lowconf_inflight += 1
                if thread.ctrl_has_fetch_hook:
                    thread.controller.on_branch_fetched(instr, level)
            if prediction.taken and thread.btb.lookup(pc) is None:
                # Taken prediction without a cached target: one-cycle bubble.
                stop_after = True
            self._advance_after_cond(thread, instr, on_true, next_cursor)
            if instr.mispredicted:
                thread.unresolved_mispredicts += 1
                if thread.ctrl_blocks_wp_fetch:
                    stop_after = True
        else:
            # Unconditional control: never mispredicts in this model.
            opcode = instr.static.opcode
            instr.predicted_taken = True
            instr.ras_checkpoint = thread.ras.checkpoint()
            if opcode is _CALL:
                thread.ras.push(pc + 4)
            elif opcode is _RET:
                thread.ras.pop()
            thread.btb.update(pc, 0 if actual_target < 0
                              else thread.program.block(actual_target).address)
            if on_true:
                thread.true_index += 1
            else:
                thread.wp_cursor = next_cursor
        return stop_after

    def _advance_after_cond(
        self,
        thread,
        instr: DynamicInstruction,
        on_true: bool,
        next_cursor,
    ) -> None:
        """Advance the fetch cursor along the *predicted* direction and
        store the recovery cursor for the *actual* direction."""
        block = thread.program.blocks[instr.static.block_id]
        predicted_target = (
            block.taken_target if instr.predicted_taken else block.fall_target
        )

        if on_true:
            resume_index = thread.true_index + 1
            instr.resume_mode = "true"
            instr.resume_true_index = resume_index
            if instr.mispredicted:
                # Diverge onto the wrong path at the predicted target.
                thread.wp_salt += 1
                thread.fetch_mode = "wrong"
                thread.wp_cursor = thread.supply.start_cursor(
                    predicted_target, thread.wp_salt * 8191 + instr.seq
                )
                thread.true_index = resume_index
            else:
                thread.true_index = resume_index
        else:
            instr.resume_mode = "wrong"
            instr.resume_wp_cursor = next_cursor
            if instr.mispredicted:
                # Redirect this wrong path along its own predicted direction.
                _, _, stack, step = next_cursor
                thread.wp_cursor = (predicted_target, 0, stack, step)
            else:
                thread.wp_cursor = next_cursor
