"""The stage interface of the pipeline kernel.

A stage is a component with one entry point, ``tick(cycle, activity)``,
called exactly once per cycle by the
:class:`~repro.pipeline.stages.scheduler.CycleScheduler` in reverse
pipeline order.  A stage owns no simulation state of its own: it reads and
writes the kernel's shared structures (caches, functional units, power
model, statistics) and the per-thread latches/queues handed to it by its
:class:`~repro.pipeline.processor.ThreadContext` arguments — which is what
makes the single-thread :class:`~repro.pipeline.processor.Processor` and
the SMT core two instantiations of the same stage code.

Width-bearing stages snapshot their width from the kernel's configuration
at construction; per-stage width experiments only need to hand a stage a
different value.
"""

from __future__ import annotations


class Stage:
    """Base class wiring a stage to its kernel."""

    name = "stage"

    def __init__(self, kernel) -> None:
        self.kernel = kernel

    def tick(self, cycle: int, activity) -> None:
        """Advance this stage by one cycle.

        ``activity`` is the per-unit access-count array the power model
        integrates at the end of the cycle.
        """
        raise NotImplementedError
