"""Latches: the state handed from one pipeline stage to the next.

Two latch kinds connect the stages of the kernel:

* :class:`PipeLatch` — an in-order pipe of instructions modelling the
  front-end's staging flip-flops.  The producing stage stamps each
  instruction's ``latch_ready`` cycle before inserting it; the consuming
  stage may take it once ``latch_ready <= now`` — that is how the
  configurable fetch→decode and decode→rename depths of the paper's
  Figure 6 sweep are realised.
* :class:`CompletionLatch` — the execute→writeback timing wheel: issued
  instructions are binned by absolute completion cycle, and writeback
  drains exactly one bin per cycle.

Both expose their backing container (``entries`` / ``buckets``) publicly
and the stages peek, pop and append it directly — every mutation lives in
the producing or consuming stage's hot loop, and the latch object itself
is the hand-off contract between exactly those two stages.

The contracts the mutating stages uphold:

* ``PipeLatch.entries`` — append an instruction only after stamping its
  ``latch_ready``; pop only from the head, and only once
  ``latch_ready <= now``; ``clear`` only during squash recovery.
* ``CompletionLatch.buckets`` — append an instruction to the bin of its
  absolute completion cycle; pop exactly the current cycle's bin.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.isa.instruction import DynamicInstruction


class PipeLatch:
    """An in-order pipe of instructions with per-entry ready cycles."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: Deque[DynamicInstruction] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def iter_with_stamps(self):
        """Yield ``(instr, ready_cycle)`` pairs, head to tail.

        The shared latch-inspection protocol with
        :class:`repro.pipeline.arrays.LatchArray` (which stores stamps in
        a parallel column): the sanitizer checks stamp monotonicity
        through this iterator without knowing the representation.
        """
        for instr in self.entries:
            yield instr, instr.latch_ready

    def clear(self) -> None:
        """Drop every entry (squash recovery)."""
        self.entries.clear()


class CompletionLatch:
    """Issued instructions binned by the cycle their results write back."""

    __slots__ = ("buckets",)

    def __init__(self) -> None:
        self.buckets: Dict[int, List[DynamicInstruction]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self.buckets.values())

    def pending_at(self, cycle: int) -> int:
        """Instructions scheduled to complete at ``cycle`` (probe API,
        shared with :class:`repro.pipeline.arrays.CompletionWheel`)."""
        bucket = self.buckets.get(cycle)
        return len(bucket) if bucket is not None else 0
