"""Execute/writeback: result broadcast and branch resolution.

Issued instructions sit in the kernel's
:class:`~repro.pipeline.arrays.CompletionWheel` until their completion
cycle arrives; this stage drains the cycle's ring slot in fetch
(sequence) order, marks results complete, broadcasts destination tags into
the owning thread's issue-queue wakeup network, and resolves conditional
branches — notifying the thread's speculation controller and invoking the
commit stage's recovery path for mispredictions.

The drain is one masked ring index and a slot rebind; a broadcast that
woke dependents records ``instr.woke`` (the array kernel derives the
window-wakeup power access from the flag instead of a stored tally).
"""

from __future__ import annotations

from operator import attrgetter

from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_WINDOW = int(PowerUnit.WINDOW)
_RESULTBUS = int(PowerUnit.RESULTBUS)

_BY_SEQ = attrgetter("seq")

_FRESH_SLOT: list = []


class ExecuteWritebackStage(Stage):
    """Drain the completion wheel; wake dependents; resolve branches."""

    name = "writeback"

    # Latch surfaces this stage may touch (CON001): pops the cycle's
    # completion bucket, clears busy tags and wakes IQ dependents.
    CONTRACT = {
        "reads": (),
        "writes": ("completions", "renamer", "iq"),
    }

    def __init__(self, kernel, recovery) -> None:
        super().__init__(kernel)
        # The commit stage owns squash/repair; branch resolution calls
        # into it through this explicit reference.
        self.recovery = recovery
        self.buckets = kernel.completions.buckets
        self.ring_mask = kernel.completions.mask
        self.far_buckets = kernel.completions.far_buckets

    def tick(self, cycle: int, activity) -> None:
        ring = self.buckets
        index = cycle & self.ring_mask
        events = ring[index]
        if events:
            ring[index] = []
        far = self.far_buckets
        if far:
            extra = far.pop(cycle, None)
            if extra:
                events = events + extra if events else extra
        if not events:
            return
        if len(events) > 1:
            events.sort(key=_BY_SEQ)
        threads = self.kernel.threads
        recover = self.recovery.recover
        if len(threads) == 1:
            # Single-thread fast path: one set of per-thread structures for
            # the whole event bin, and IssueQueue.wakeup inlined.
            thread = threads[0]
            pending_tags = thread.renamer.pending_tags
            iq = thread.iq
            waiters = iq.waiters
            stamp = self.kernel.observer is not None
            broadcasts = 0
            wakeups = 0
            for instr in events:
                if instr.squashed:
                    continue
                instr.completed = True
                if stamp:
                    instr.complete_cycle = cycle
                tag = instr.phys_dest
                if tag >= 0:
                    pending_tags.discard(tag)  # mark_completed
                    broadcasts += 1
                    waiting = waiters.pop(tag, None)
                    if waiting is not None:
                        woken = 0
                        ready = iq.ready_list
                        for waiter in waiting:
                            if waiter.squashed or waiter.issued:
                                continue
                            waiter.ready_sources -= 1
                            if waiter.ready_sources == 0:
                                ready.append(waiter)
                                iq.ready_sorted = False
                            woken += 1
                        iq.wakeup_broadcasts += 1
                        if woken:
                            wakeups += 1
                            instr.woke = True
                if instr.static.is_cond_branch:
                    if instr.lowconf:
                        instr.lowconf = False
                        thread.lowconf_inflight -= 1
                    if thread.ctrl_has_resolve_hook:
                        thread.controller.on_branch_resolved(instr)
                    if instr.mispredicted:
                        recover(thread, instr, cycle)
            if broadcasts:
                activity[_RESULTBUS] += broadcasts
                if wakeups:
                    activity[_WINDOW] += wakeups
            return
        stamp = self.kernel.observer is not None
        for instr in events:
            if instr.squashed:
                continue
            thread = threads[instr.thread_id]
            instr.completed = True
            if stamp:
                instr.complete_cycle = cycle
            tag = instr.phys_dest
            if tag >= 0:
                # RegisterRenamer.mark_completed, inlined.
                thread.renamer.pending_tags.discard(tag)
                activity[_RESULTBUS] += 1
                woken = thread.iq.wakeup(tag)
                if woken:
                    activity[_WINDOW] += 1
                    instr.woke = True
            if instr.static.is_cond_branch:
                if instr.lowconf:
                    instr.lowconf = False
                    thread.lowconf_inflight -= 1
                if thread.ctrl_has_resolve_hook:
                    thread.controller.on_branch_resolved(instr)
                if instr.mispredicted:
                    recover(thread, instr, cycle)
