"""Pinned object-backed stage kernel (the pre-array representation).

This module is a mechanical snapshot of the five stage files and the
cycle scheduler exactly as they stood before the array-backed kernel
rewrite (PR 8): deque-backed :class:`~repro.pipeline.stages.latch.PipeLatch`
front-end latches, a dict-of-buckets
:class:`~repro.pipeline.stages.latch.CompletionLatch`, and per-instruction
``unit_accesses`` tallies maintained by every stage.  It is selected with
``ProcessorConfig.kernel == "object"`` (env ``REPRO_KERNEL=object``) and
exists for two reasons:

* **same-process A/B benchmarking** — ``bench_core_throughput.py
  --interleave`` alternates object/array passes inside one process, so the
  recorded speedup ratio is immune to the ~10% cross-session clock wander
  documented in ``BENCH_core.json``;
* **equivalence testing** — ``tests/test_kernel_equivalence.py`` drives
  randomized micro-programs through both kernels and asserts identical
  commit sequences, statistics and fingerprints, beyond the 38 golden
  fingerprints both kernels must reproduce.

Because it is a snapshot, the code below is intentionally verbatim
(section markers aside, classes renamed with an ``Object`` prefix); do
not "improve" it — its value is bit-identical behaviour to the
representation the array kernel replaced.  See docs/ARCHITECTURE.md
("Array kernel") for the representation comparison.
"""

from __future__ import annotations


# ======================================================================
# snapshot of stages/fetch.py
# ======================================================================

"""Fetch: walk the predicted path and fill the fetch latch.

The front-end fetches along its *predictions*: the thread's
:class:`~repro.frontend.supply.InstructionSupply` serves true-path records
while predictions are correct, and a misprediction diverges fetch onto a
wrong-path packet walk of the same CFG (real wrong-path code that fetches,
decodes and executes until the branch resolves).  Per fetched line the
I-cache is probed once; a miss stalls the thread's fetch until the fill
returns.  Conditional branches consult predictor, BTB, RAS and the
confidence estimator, arm the speculation controller's throttling hooks,
and record the cursor fetch must resume from if they turn out
mispredicted.

**Packet consumption.**  True-path records are indexed straight out of
the supply's ring.  Wrong-path records come in per-block packets: the
supply stamps one block at a time (``wrong_packet``), the thread keeps a
packet cursor (``wp_packet``/``wp_pos``), and only a packet's *last*
record can be a control instruction — so the inner loop pays one Python
call per wrong-path *block* instead of one per instruction.  Branch
recovery still works on the seed walker's ``(block, index, stack, step)``
cursors; anything that re-points ``thread.wp_cursor`` outside this loop
clears the packet.

On an SMT core the single fetch port is arbitrated by the kernel's fetch
policy; the single-thread machine skips the policy entirely.
"""


from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.isa.opcodes import Opcode
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_ICACHE = int(PowerUnit.ICACHE)
_BPRED = int(PowerUnit.BPRED)
_DCACHE2 = int(PowerUnit.DCACHE2)

_CALL = Opcode.CALL
_RET = Opcode.RET

_NEW_INSTR = DynamicInstruction.__new__
_DYN = DynamicInstruction


class ObjectFetchStage(Stage):
    """Front-end instruction supply along the predicted path."""

    name = "fetch"

    # Latch surfaces this stage may touch (CON001): appends to the fetch
    # latch only; the decode-latch read is the shared-buffer occupancy
    # gate.
    CONTRACT = {
        "reads": ("decode_latch",),
        "writes": ("fetch_latch",),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        config = kernel.config
        self.width = config.fetch_width
        self.max_taken_branches = config.max_taken_branches_per_cycle
        self.fetch_to_decode_latency = config.fetch_to_decode_latency
        self.line_shift = config.line_bytes.bit_length() - 1
        # Stable aliases of the I-cache internals for the inlined MRU
        # probe (the set array and stats objects are mutated in place,
        # never rebound).
        icache = kernel.memory.icache
        self._icache_sets = icache._sets
        self._icache_stats = icache.stats
        self._icache_set_mask = icache._set_mask

    def tick(self, cycle: int, activity) -> None:
        kernel = self.kernel
        threads = kernel.threads
        if len(threads) == 1:
            self._fetch_thread(threads[0], cycle, activity)
            return
        if kernel.fetch_policy is None:
            raise SimulationError("a multi-thread processor needs a fetch policy")
        thread = kernel.fetch_policy.pick(kernel, cycle)
        if thread is None:
            return
        self._fetch_thread(thread, cycle, activity)

    def _fetch_thread(self, thread, cycle: int, activity) -> None:
        kernel = self.kernel
        stats = kernel.stats
        if cycle < thread.fetch_stall_until:
            stats.redirect_stall_cycles += 1
            return
        controller = thread.controller
        if thread.ctrl_gates_fetch and not controller.fetch_allowed(cycle):
            stats.fetch_throttled_cycles += 1
            return
        if thread.ctrl_blocks_wp_fetch and thread.fetch_mode == "wrong":
            # Oracle fetch: wait at the misprediction until resolution.
            return
        fetch_entries = thread.fetch_entries
        capacity = (
            thread.fetch_buffer - len(fetch_entries) - len(thread.decode_entries)
        )
        if capacity <= 0:
            return

        width = self.width
        if capacity < width:
            width = capacity
        max_taken = self.max_taken_branches
        decode_latency = self.fetch_to_decode_latency
        supply = thread.supply
        memory = kernel.memory
        line_shift = self.line_shift
        # Inlined I-cache MRU probe (same line granularity: both shifts
        # derive from config.line_bytes).  The hit-at-MRU case — the
        # overwhelmingly common one — accounts the access and skips two
        # call frames; anything else takes the full hierarchy walk.
        icache_sets = self._icache_sets
        icache_stats = self._icache_stats
        icache_set_mask = self._icache_set_mask
        mem_offset = thread.mem_offset
        thread_id = thread.thread_id
        thread.fetch_cycles += 1
        seq = kernel.seq
        # True-path fast path: the supply's ring is stable for the whole
        # tick (pruning happens at commit, generation appends in place), so
        # already-materialised records are indexed directly.
        true_records = supply._records
        true_base = supply._base
        num_records = len(true_records)
        append_instr = fetch_entries.append

        fetched = 0
        wrong_path = 0
        branches = 0
        taken_branches = 0
        current_line = -1
        ready_cycle = cycle + decode_latency
        # Only control instructions can change the path mode or jump the
        # cursors, so mode and packet state are tracked in locals and
        # synced with the thread around each branch (and at every loop
        # exit).  ``wp_cursor`` is always the continuation *after* the
        # in-progress packet drains.
        on_true = thread.fetch_mode == "true"
        true_index = thread.true_index
        wp_cursor = thread.wp_cursor
        wp_packet = thread.wp_packet
        if wp_packet is not None:
            wp_pos = thread.wp_pos
            wp_len = len(wp_packet)
        else:
            wp_pos = 0
            wp_len = 0
        while fetched < width:
            if on_true:
                index = true_index - true_base
                if index < num_records:
                    record = true_records[index]
                else:
                    record = supply.get(true_index)
                    num_records = len(true_records)
                static, actual_taken, actual_target, mem_address = record
                next_cursor = None
            else:
                if wp_pos == wp_len:
                    wp_packet, wp_cursor = supply.wrong_packet(wp_cursor)
                    wp_pos = 0
                    wp_len = len(wp_packet)
                # Peek: the packet position only advances once the I-cache
                # admits the instruction (a stalled instruction must be
                # re-fetched when the fill returns).
                static, actual_taken, actual_target, mem_address = wp_packet[wp_pos]
                # Only a packet's last record can be a control instruction;
                # its continuation cursor is the branch's resume point.
                next_cursor = wp_cursor

            address = static.address + mem_offset
            line = address >> line_shift
            if line != current_line:
                tag_set = icache_sets[line & icache_set_mask]
                if tag_set and tag_set[0] == line:
                    icache_stats.accesses += 1
                else:
                    latency, l1_hit = memory.fetch_line(address)
                    if not l1_hit:
                        activity[_ICACHE] += 1
                        activity[_DCACHE2] += 1
                        thread.fetch_stall_until = cycle + latency - 1
                        stats.icache_stall_cycles += 1
                        break
                current_line = line

            on_wrong = not on_true
            if on_wrong:
                wp_pos += 1
            # DynamicInstruction creation, inlined (the hottest allocation
            # in the simulator): only the slots some later stage reads
            # before writing are initialised — see the lazily-populated
            # slot contract in repro/isa/instruction.py.
            instr = _NEW_INSTR(_DYN)
            instr.seq = seq
            instr.static = static
            instr.thread_id = thread_id
            instr.fetch_cycle = cycle
            instr.on_wrong_path = on_wrong
            instr.squashed = False
            seq += 1
            instr.unit_accesses = tally = [0] * 11
            if mem_address:
                instr.mem_address = mem_address + mem_offset
            if on_true:
                instr.true_index = true_index
            tally[_ICACHE] = 1  # the tally is freshly zeroed

            instr.latch_ready = ready_cycle
            append_instr(instr)
            fetched += 1
            if static.is_branch:
                branches += 1
                thread.true_index = true_index
                thread.wp_cursor = wp_cursor
                stop_after = self._fetch_branch(
                    thread, instr, actual_taken, actual_target, next_cursor,
                    on_true,
                )
                if instr.predicted_taken:
                    taken_branches += 1
                if on_wrong:
                    wrong_path += 1
                on_true = thread.fetch_mode == "true"
                true_index = thread.true_index
                wp_cursor = thread.wp_cursor
                # A branch always ends its packet; any redirect re-pointed
                # ``thread.wp_cursor``, so the next packet stamps fresh.
                wp_packet = None
                wp_pos = 0
                wp_len = 0
                # Only a control instruction can stop the fetch group.
                if stop_after or taken_branches >= max_taken:
                    break
            elif on_true:
                true_index += 1
            else:
                wrong_path += 1

        thread.true_index = true_index
        thread.wp_cursor = wp_cursor
        if wp_packet is not None and wp_pos < wp_len:
            thread.wp_packet = wp_packet
            thread.wp_pos = wp_pos
        else:
            thread.wp_packet = None
        kernel.seq = seq
        if fetched:
            activity[_ICACHE] += fetched
            if branches:
                activity[_BPRED] += branches
            stats.fetched += fetched
            thread.fetched += fetched
            if wrong_path:
                stats.fetched_wrong_path += wrong_path
                thread.fetched_wrong_path += wrong_path

    def _fetch_branch(
        self,
        thread,
        instr: DynamicInstruction,
        actual_taken: bool,
        actual_target: int,
        next_cursor,
        on_true: bool,
    ) -> bool:
        """Handle a control instruction at fetch.  Returns True to stop the
        fetch group after this instruction (BTB bubble, oracle stall, or a
        divergence onto the wrong path).  The caller batches the per-branch
        predictor activity into the cycle's array."""
        stats = self.kernel.stats
        instr.actual_taken = actual_taken
        instr.actual_target = actual_target
        instr.unit_accesses[_BPRED] += 1
        stop_after = False
        pc = instr.pc = instr.static.address

        if instr.static.is_cond_branch:
            instr.lowconf = False
            instr.confidence = None
            instr.throttle_token = None
            # Squash recovery reads ``completed`` on latch-resident
            # conditional branches; every other instruction gets its
            # back-end slots at rename/dispatch.
            instr.completed = False
            stats.cond_branches_fetched += 1
            prediction = thread.bpred.predict(pc)
            instr.predicted_taken = prediction.taken
            instr.bpred_snapshot = prediction.snapshot
            instr.mispredicted = prediction.taken != actual_taken
            instr.ras_checkpoint = thread.ras.checkpoint()
            confidence = thread.confidence
            if confidence is not None:
                confidence.set_actual(actual_taken)
                level = confidence.estimate(
                    pc, prediction, thread.bpred,
                    update_state=not instr.on_wrong_path,
                )
                instr.confidence = level
                if level.is_low:
                    instr.lowconf = True
                    thread.lowconf_inflight += 1
                if thread.ctrl_has_fetch_hook:
                    thread.controller.on_branch_fetched(instr, level)
            if prediction.taken and thread.btb.lookup(pc) is None:
                # Taken prediction without a cached target: one-cycle bubble.
                stop_after = True
            self._advance_after_cond(thread, instr, on_true, next_cursor)
            if instr.mispredicted:
                thread.unresolved_mispredicts += 1
                if thread.ctrl_blocks_wp_fetch:
                    stop_after = True
        else:
            # Unconditional control: never mispredicts in this model.
            opcode = instr.static.opcode
            instr.predicted_taken = True
            instr.ras_checkpoint = thread.ras.checkpoint()
            if opcode is _CALL:
                thread.ras.push(pc + 4)
            elif opcode is _RET:
                thread.ras.pop()
            thread.btb.update(pc, 0 if actual_target < 0
                              else thread.program.block(actual_target).address)
            if on_true:
                thread.true_index += 1
            else:
                thread.wp_cursor = next_cursor
        return stop_after

    def _advance_after_cond(
        self,
        thread,
        instr: DynamicInstruction,
        on_true: bool,
        next_cursor,
    ) -> None:
        """Advance the fetch cursor along the *predicted* direction and
        store the recovery cursor for the *actual* direction."""
        block = thread.program.blocks[instr.static.block_id]
        predicted_target = (
            block.taken_target if instr.predicted_taken else block.fall_target
        )

        if on_true:
            resume_index = thread.true_index + 1
            instr.resume_mode = "true"
            instr.resume_true_index = resume_index
            if instr.mispredicted:
                # Diverge onto the wrong path at the predicted target.
                thread.wp_salt += 1
                thread.fetch_mode = "wrong"
                thread.wp_cursor = thread.supply.start_cursor(
                    predicted_target, thread.wp_salt * 8191 + instr.seq
                )
                thread.true_index = resume_index
            else:
                thread.true_index = resume_index
        else:
            instr.resume_mode = "wrong"
            instr.resume_wp_cursor = next_cursor
            if instr.mispredicted:
                # Redirect this wrong path along its own predicted direction.
                _, _, stack, step = next_cursor
                thread.wp_cursor = (predicted_target, 0, stack, step)
            else:
                thread.wp_cursor = next_cursor


# ======================================================================
# snapshot of stages/decode_rename.py
# ======================================================================

"""Decode and rename/dispatch: the in-order middle of the machine.

One stage component covers the two in-order phases between the fetch latch
and the out-of-order back-end.  Per cycle (reverse pipeline order, so
rename drains the decode latch before decode refills it):

* **rename/dispatch** — pull decoded instructions whose latch delay has
  elapsed, rename their registers, take a map checkpoint at conditional
  branches, and allocate ROB/IQ/LSQ entries, stalling on any structural
  hazard (per-thread partition or the shared-capacity caps of an SMT core
  in ``shared`` mode — tracked by the kernel's incremental occupancy
  counters, not a per-cycle rescan);
* **decode** — pull fetched instructions through the decode gate, where a
  speculation controller may hold instructions younger than a throttling
  branch (the paper's decode throttling), and hand them to the decode
  latch with the configured decode→rename delay.
"""


from repro.isa.registers import REG_ZERO as _REG_ZERO
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_REGFILE = int(PowerUnit.REGFILE)
_RENAME = int(PowerUnit.RENAME)
_WINDOW = int(PowerUnit.WINDOW)
_LSQ = int(PowerUnit.LSQ)


class ObjectDecodeRenameStage(Stage):
    """Decode gate plus rename/dispatch into the back-end."""

    name = "decode-rename"

    # Latch surfaces this stage may touch (CON001): drains the fetch
    # latch into the decode latch, then renames/dispatches into every
    # back-end structure.
    CONTRACT = {
        "reads": (),
        "writes": (
            "fetch_latch", "decode_latch", "rob", "iq", "lsq", "renamer",
        ),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self.width = kernel.config.decode_width
        self.decode_to_rename_latency = kernel.config.decode_to_rename_latency
        # Cycle of the last counted decode throttle (one count per cycle
        # however many threads stall).
        self._throttled_cycle = -1

    def tick(self, cycle: int, activity) -> None:
        threads = self.kernel.threads
        count = len(threads)
        if count == 1:
            # Skip the stage calls outright on latch-empty cycles.
            thread = threads[0]
            if thread.decode_entries:
                self._rename_thread(thread, cycle, activity, self.width)
            if thread.fetch_entries:
                self._decode_thread(thread, cycle, self.width)
            return
        budget = self.width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._rename_thread(thread, cycle, activity, budget)
        budget = self.width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._decode_thread(thread, cycle, budget)

    # ------------------------------------------------------------------
    # Rename / dispatch
    # ------------------------------------------------------------------

    def _rename_thread(self, thread, cycle: int, activity, budget: int) -> int:
        kernel = self.kernel
        pipe = thread.decode_entries
        if not pipe:
            return 0
        rob = thread.rob
        rob_entries = rob.entries
        iq = thread.iq
        iq_start = iq.count
        iq_ready = iq.ready_list
        iq_waiters = iq.waiters
        lsq = thread.lsq
        lsq_start = lsq.occupied
        lsq_size = lsq.size
        # One fused structural limit: the while-condition folds the ROB,
        # IQ and width bounds (each renamed instruction consumes exactly
        # one entry of each); only the LSQ check stays per-instruction.
        limit = rob.size - len(rob_entries)
        iq_space = iq.size - iq_start
        if iq_space < limit:
            limit = iq_space
        if budget < limit:
            limit = budget
        renamer = thread.renamer
        # Stable for the whole tick: ``restore`` (which rebinds the map)
        # only runs during writeback recovery, never mid-rename.
        rmap = renamer._map
        pending_tags = renamer.pending_tags
        shared_caps = kernel.shared_caps
        has_shared_caps = shared_caps is not None
        popleft = pipe.popleft
        append_rob = rob_entries.append
        append_ready = iq_ready.append
        stamp = kernel.observer is not None
        renamed = 0
        mem_renamed = 0
        regfile_reads = 0
        while renamed < limit and pipe:
            instr = pipe[0]
            if instr.latch_ready > cycle:
                break
            if instr.squashed:
                popleft()
                continue
            static = instr.static
            is_mem = static.is_mem
            if is_mem and lsq_start + mem_renamed >= lsq_size:
                break
            if has_shared_caps:
                # The kernel counters are batch-updated after the loop, so
                # add this loop's own allocations to see the live totals.
                if (
                    kernel.rob_count + renamed >= shared_caps[0]
                    or kernel.iq_count + renamed >= shared_caps[1]
                    or (is_mem and kernel.lsq_count + mem_renamed >= shared_caps[2])
                ):
                    break
            popleft()
            if stamp:
                instr.rename_cycle = cycle
            # Back-end slots (issue/completion state, physical dest) are
            # first read after dispatch, so they are stamped here rather
            # than on every fetched instruction (wrong-path work squashed
            # in the front-end latches never pays for them).
            instr.issued = False
            instr.completed = False

            # Rename (RegisterRenamer.rename, inlined): map sources to
            # producing tags, collect the still-pending ones as the wakeup
            # set, and claim the destination.  ``phys_sources`` is not
            # materialised here — nothing in the pipeline reads it (the
            # standalone RegisterRenamer.rename keeps setting it).
            static_sources = static.sources
            waits = None
            if static_sources:
                for reg in static_sources:
                    tag = rmap[reg]
                    if tag in pending_tags:
                        if waits is None:
                            waits = [tag]
                        else:
                            waits.append(tag)
            dest = static.dest
            if dest is not None and dest != _REG_ZERO:
                tag = instr.seq
                rmap[dest] = tag
                instr.phys_dest = tag
                pending_tags.add(tag)
            else:
                instr.phys_dest = -1

            tally = instr.unit_accesses
            tally[_RENAME] += 1
            source_reads = len(static_sources)
            if source_reads:
                regfile_reads += source_reads
                tally[_REGFILE] += source_reads
            tally[_WINDOW] += 1
            if static.is_cond_branch:
                instr.rename_checkpoint = rmap.copy()
            append_rob(instr)
            if is_mem:
                lsq.occupied += 1
                mem_renamed += 1
                tally[_LSQ] += 1

            # Dispatch (IssueQueue.dispatch, inlined): park behind pending
            # source tags, or go straight to the ready list.
            pending = 0
            if waits is not None:
                for tag in waits:
                    pending += 1
                    bucket = iq_waiters.get(tag)
                    if bucket is None:
                        iq_waiters[tag] = [instr]
                    else:
                        bucket.append(instr)
            instr.ready_sources = pending
            if pending == 0:
                append_ready(instr)
            renamed += 1
        if renamed:
            activity[_RENAME] += renamed
            activity[_WINDOW] += renamed
            if regfile_reads:
                activity[_REGFILE] += regfile_reads
            if mem_renamed:
                activity[_LSQ] += mem_renamed
            iq.count = iq_start + renamed
            kernel.stats.renamed += renamed
            kernel.rob_count += renamed
            kernel.iq_count += renamed
            kernel.lsq_count += mem_renamed
        return renamed

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------

    def _decode_thread(self, thread, cycle: int, budget: int) -> int:
        pipe = thread.fetch_entries
        if not pipe:
            return 0
        kernel = self.kernel
        out_append = thread.decode_entries.append
        popleft = pipe.popleft
        ready_cycle = cycle + self.decode_to_rename_latency
        gated = thread.ctrl_blocks_decode
        controller = thread.controller
        stamp = kernel.observer is not None
        moved = 0
        while moved < budget and pipe:
            instr = pipe[0]
            if instr.latch_ready > cycle:
                break
            if instr.squashed:
                popleft()
                continue
            if gated and controller.blocks_decode(cycle, instr):
                # Count a throttled cycle once, whichever thread stalls.
                if self._throttled_cycle != cycle:
                    self._throttled_cycle = cycle
                    kernel.stats.decode_throttled_cycles += 1
                break
            popleft()
            if stamp:
                instr.decode_cycle = cycle
            instr.latch_ready = ready_cycle
            out_append(instr)
            moved += 1
        if moved:
            kernel.stats.decoded += moved
        return moved


# ======================================================================
# snapshot of stages/select_issue.py
# ======================================================================

"""Select/issue: pick ready instructions and start them executing.

Refreshes the functional-unit pool, then walks the threads in the cycle's
rotation order letting each thread's issue queue select ready
instructions oldest-first (honouring slot capacities, MSHR availability
and the controller's no-select bit), performs load D-cache accesses and
schedules each issued instruction's writeback into the completion latch.
"""


from operator import attrgetter

from repro.isa.opcodes import FU_MEM_READ as _FU_MEM_READ
from repro.isa.opcodes import FU_MEM_WRITE as _FU_MEM_WRITE
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_BY_SEQ = attrgetter("seq")

_WINDOW = int(PowerUnit.WINDOW)
_LSQ = int(PowerUnit.LSQ)
_ALU = int(PowerUnit.ALU)
_DCACHE = int(PowerUnit.DCACHE)
_DCACHE2 = int(PowerUnit.DCACHE2)


class ObjectSelectIssueStage(Stage):
    """Out-of-order selection and execution start."""

    name = "issue"

    # Latch surfaces this stage may touch (CON001): consumes the ready
    # list and schedules completions.
    CONTRACT = {
        "reads": (),
        "writes": ("iq", "completions"),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self.width = kernel.config.issue_width
        self.extra_exec_latency = kernel.config.extra_exec_latency
        # Stable shared structures (never rebound on the kernel; the FU
        # pool refreshes its availability list in place).
        self.memory = kernel.memory
        self.buckets = kernel.completions.buckets
        self.try_claim_code = kernel.fu_pool.try_claim_code
        self.code_available = kernel.fu_pool._code_available

    def tick(self, cycle: int, activity) -> None:
        kernel = self.kernel
        if kernel.iq_count == 0:
            # No dispatched instruction anywhere, so nothing can be ready
            # and no slot can be claimed.  The FU-pool refresh is deferred
            # (``new_cycle`` is only observable through claims, and the
            # MSHR ledger trims lazily against the then-current cycle).
            return
        fu_pool = kernel.fu_pool
        fu_pool.new_cycle(cycle)
        threads = kernel.threads
        count = len(threads)
        budget = self.width
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            iq = thread.iq
            ready = iq.ready_list
            if not ready:
                continue
            # IssueQueue.select fused with the issue bookkeeping: walk the
            # ready instructions oldest first, claim slots, and start
            # execution in one pass (identical pick order and side
            # effects; survivors stay ready for the next cycle).  The sort
            # only runs after a wakeup readied an older instruction
            # (``ready_sorted``); dispatch appends and the survivor
            # rebuild below keep the list in fetch order.
            if not iq.ready_sorted:
                if len(ready) > 1:
                    ready.sort(key=_BY_SEQ)
                iq.ready_sorted = True
            if thread.ctrl_blocks_selection:
                controller_blocks = thread.controller.blocks_selection
            else:
                controller_blocks = None
            stats = kernel.stats
            memory = self.memory
            buckets = self.buckets
            extra_exec = self.extra_exec_latency
            stamp = kernel.observer is not None
            try_claim_code = self.try_claim_code
            code_available = self.code_available
            survivors = []
            survive = survivors.append
            issued = 0
            wrong_path = 0
            lsq_accesses = 0
            dcache_accesses = 0
            dcache2_accesses = 0
            # Miss fills allocated this cycle must not influence this
            # cycle's remaining MSHR-availability checks (selection reads
            # the *start-of-select* MSHR state); defer them to the end of
            # the thread's pass.
            mshr_holds = None
            for instr in ready:
                if instr.squashed or instr.issued:
                    continue
                if issued >= budget:
                    survive(instr)
                    continue
                if controller_blocks is not None and controller_blocks(instr):
                    stats.selection_blocked += 1
                    survive(instr)
                    continue
                static = instr.static
                code = static.fu_code
                if code == _FU_MEM_READ or code == _FU_MEM_WRITE:
                    # Shared memory ports + MSHR availability.
                    if not try_claim_code(code):
                        survive(instr)
                        continue
                elif code_available[code] > 0:
                    code_available[code] -= 1
                else:
                    survive(instr)
                    continue
                instr.issued = True
                issued += 1
                if stamp:
                    instr.issue_cycle = cycle
                tally = instr.unit_accesses
                tally[_WINDOW] += 1
                tally[_ALU] += 1
                latency = static.latency + extra_exec
                if static.is_load:
                    mem_latency, l1_hit = memory.load_data(instr.mem_address)
                    dcache_accesses += 1
                    tally[_DCACHE] += 1
                    if not l1_hit:
                        dcache2_accesses += 1
                        tally[_DCACHE2] += 1
                        # The miss occupies an MSHR until the fill returns;
                        # squashing the load does not recall the fill.
                        if mshr_holds is None:
                            mshr_holds = [cycle + mem_latency]
                        else:
                            mshr_holds.append(cycle + mem_latency)
                    latency += mem_latency
                    lsq_accesses += 1
                    tally[_LSQ] += 1
                elif static.is_store:
                    lsq_accesses += 1
                    tally[_LSQ] += 1
                if instr.on_wrong_path:
                    wrong_path += 1
                complete = cycle + latency
                bucket = buckets.get(complete)
                if bucket is None:
                    buckets[complete] = [instr]
                else:
                    bucket.append(instr)
            iq.ready_list = survivors
            if mshr_holds is not None:
                hold_mshr = fu_pool.hold_mshr
                for until in mshr_holds:
                    hold_mshr(until)
            if issued:
                activity[_WINDOW] += issued
                activity[_ALU] += issued
                if lsq_accesses:
                    activity[_LSQ] += lsq_accesses
                    activity[_DCACHE] += dcache_accesses
                    activity[_DCACHE2] += dcache2_accesses
                iq.count -= issued
                kernel.iq_count -= issued
                stats.issued += issued
                budget -= issued
                if wrong_path:
                    stats.issued_wrong_path += wrong_path


# ======================================================================
# snapshot of stages/execute_writeback.py
# ======================================================================

"""Execute/writeback: result broadcast and branch resolution.

Issued instructions sit in the kernel's
:class:`~repro.pipeline.stages.latch.CompletionLatch` until their
completion cycle arrives; this stage drains the cycle's bin in fetch
(sequence) order, marks results complete, broadcasts destination tags into
the owning thread's issue-queue wakeup network, and resolves conditional
branches — notifying the thread's speculation controller and invoking the
commit stage's recovery path for mispredictions.
"""


from operator import attrgetter

from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_WINDOW = int(PowerUnit.WINDOW)
_RESULTBUS = int(PowerUnit.RESULTBUS)

_BY_SEQ = attrgetter("seq")


class ObjectExecuteWritebackStage(Stage):
    """Drain the completion latch; wake dependents; resolve branches."""

    name = "writeback"

    # Latch surfaces this stage may touch (CON001): pops the cycle's
    # completion bucket, clears busy tags and wakes IQ dependents.
    CONTRACT = {
        "reads": (),
        "writes": ("completions", "renamer", "iq"),
    }

    def __init__(self, kernel, recovery) -> None:
        super().__init__(kernel)
        # The commit stage owns squash/repair; branch resolution calls
        # into it through this explicit reference.
        self.recovery = recovery
        self.buckets = kernel.completions.buckets

    def tick(self, cycle: int, activity) -> None:
        events = self.buckets.pop(cycle, None)
        if not events:
            return
        if len(events) > 1:
            events.sort(key=_BY_SEQ)
        threads = self.kernel.threads
        recover = self.recovery.recover
        if len(threads) == 1:
            # Single-thread fast path: one set of per-thread structures for
            # the whole event bin, and IssueQueue.wakeup inlined.
            thread = threads[0]
            pending_tags = thread.renamer.pending_tags
            iq = thread.iq
            waiters = iq.waiters
            stamp = self.kernel.observer is not None
            broadcasts = 0
            wakeups = 0
            for instr in events:
                if instr.squashed:
                    continue
                instr.completed = True
                if stamp:
                    instr.complete_cycle = cycle
                tag = instr.phys_dest
                if tag >= 0:
                    pending_tags.discard(tag)  # mark_completed
                    broadcasts += 1
                    instr.unit_accesses[_RESULTBUS] += 1
                    waiting = waiters.pop(tag, None)
                    if waiting is not None:
                        woken = 0
                        ready = iq.ready_list
                        for waiter in waiting:
                            if waiter.squashed or waiter.issued:
                                continue
                            waiter.ready_sources -= 1
                            if waiter.ready_sources == 0:
                                ready.append(waiter)
                                iq.ready_sorted = False
                            woken += 1
                        iq.wakeup_broadcasts += 1
                        if woken:
                            wakeups += 1
                            instr.unit_accesses[_WINDOW] += 1
                if instr.static.is_cond_branch:
                    if instr.lowconf:
                        instr.lowconf = False
                        thread.lowconf_inflight -= 1
                    if thread.ctrl_has_resolve_hook:
                        thread.controller.on_branch_resolved(instr)
                    if instr.mispredicted:
                        recover(thread, instr, cycle)
            if broadcasts:
                activity[_RESULTBUS] += broadcasts
                if wakeups:
                    activity[_WINDOW] += wakeups
            return
        stamp = self.kernel.observer is not None
        for instr in events:
            if instr.squashed:
                continue
            thread = threads[instr.thread_id]
            instr.completed = True
            if stamp:
                instr.complete_cycle = cycle
            tag = instr.phys_dest
            if tag >= 0:
                # RegisterRenamer.mark_completed, inlined.
                thread.renamer.pending_tags.discard(tag)
                activity[_RESULTBUS] += 1
                instr.unit_accesses[_RESULTBUS] += 1
                woken = thread.iq.wakeup(tag)
                if woken:
                    activity[_WINDOW] += 1
                    instr.unit_accesses[_WINDOW] += 1
            if instr.static.is_cond_branch:
                if instr.lowconf:
                    instr.lowconf = False
                    thread.lowconf_inflight -= 1
                if thread.ctrl_has_resolve_hook:
                    thread.controller.on_branch_resolved(instr)
                if instr.mispredicted:
                    recover(thread, instr, cycle)


# ======================================================================
# snapshot of stages/commit.py
# ======================================================================

"""Commit and recovery: the in-order retirement end of the kernel.

Commit retires completed instructions from each thread's ROB head in
program order up to the machine's commit width (threads take turns in a
cycle-rotated order so no thread systematically eats the width first),
performing the architectural side effects: store D-cache access, LSQ
release, predictor/estimator/BTB training for conditional branches, and
power crediting of the retired instruction's access tally.

Recovery also lives here: when writeback resolves a mispredicted branch,
:meth:`ObjectCommitRecoverStage.recover` squashes the thread's younger
instructions (ROB, IQ, both front-end latches), repairs the rename map,
predictor history and RAS from the branch's checkpoints, and re-points the
thread's fetch cursor at the branch's recorded resume position.
"""


from typing import List

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction
from repro.pipeline.stages.base import Stage
from repro.power.units import PowerUnit

_BPRED = int(PowerUnit.BPRED)
_REGFILE = int(PowerUnit.REGFILE)
_DCACHE = int(PowerUnit.DCACHE)
_DCACHE2 = int(PowerUnit.DCACHE2)

# Commit distance between supply prunes of the consumed true-path stream.
_PRUNE_INTERVAL = 8192

# The two tally shapes wrong-path work squashed in the front-end latches
# almost always carries: one I-cache access (plain instructions), or one
# I-cache plus one predictor access (conditional branches).  A C-level
# list comparison routes them past the 11-unit attribution loop.
_TALLY_ICACHE_ONLY = [
    1 if unit == int(PowerUnit.ICACHE) else 0 for unit in range(11)
]
_TALLY_ICACHE_BPRED = [
    1 if unit in (int(PowerUnit.ICACHE), _BPRED) else 0 for unit in range(11)
]
_ICACHE = int(PowerUnit.ICACHE)


class ObjectCommitRecoverStage(Stage):
    """Retire completed instructions; repair state after mispredictions."""

    name = "commit"

    # Latch surfaces this stage may touch (checked by ``repro check``,
    # rule CON001).  Commit owns squash/repair, so recovery's latch
    # flushes and renamer restore are charged here even when writeback
    # triggers them through ``recover``.
    CONTRACT = {
        "reads": (),
        "writes": (
            "rob", "iq", "lsq", "renamer", "fetch_latch", "decode_latch",
        ),
    }

    def __init__(self, kernel) -> None:
        super().__init__(kernel)
        self.width = kernel.config.commit_width
        self.redirect_penalty = kernel.config.redirect_penalty

    def tick(self, cycle: int, activity) -> None:
        threads = self.kernel.threads
        count = len(threads)
        budget = self.width
        if count == 1:
            thread = threads[0]
            entries = thread.rob_entries
            # Skip the call (and all its hoisting) on stall cycles.
            if entries and entries[0].completed:
                self._commit_thread(thread, cycle, activity, budget)
            return
        for offset in range(count):
            if budget <= 0:
                break
            thread = threads[(cycle + offset) % count]
            budget -= self._commit_thread(thread, cycle, activity, budget)

    def _commit_thread(self, thread, cycle: int, activity, budget: int) -> int:
        entries = thread.rob_entries
        # Nothing committable: skip all hoisting (most stall cycles).
        if not entries or not entries[0].completed:
            return 0
        kernel = self.kernel
        power = kernel.power
        memory = kernel.memory
        observer = kernel.observer
        # Single-thread machines never attribute energy per thread, so the
        # commit credit reduces to the clock-residency sum — inlined here
        # (same arithmetic as PowerModel.credit_committed).
        attribute = power.attribute_threads
        residency = 0
        lsq = thread.lsq
        committed = 0
        freed_lsq = 0
        regfile_writes = 0
        dcache_accesses = 0
        dcache2_accesses = 0
        branch_commits = 0
        while committed < budget:
            if not entries:
                break
            head = entries[0]
            if not head.completed:
                break
            entries.popleft()
            if observer is not None:
                head.commit_cycle = cycle
            tally = head.unit_accesses
            if head.phys_dest >= 0:
                regfile_writes += 1
                tally[_REGFILE] += 1
            static = head.static
            if static.is_store:
                _, l1_hit = memory.store_data(head.mem_address)
                dcache_accesses += 1
                tally[_DCACHE] += 1
                if not l1_hit:
                    dcache2_accesses += 1
                    tally[_DCACHE2] += 1
                lsq.release()
                freed_lsq += 1
            elif static.is_load:
                lsq.release()
                freed_lsq += 1
            elif static.is_cond_branch:
                branch_commits += 1
                self._commit_branch(thread, head)
            if attribute:
                power.credit_committed(head, cycle)
            else:
                fetch_cycle = head.fetch_cycle
                if fetch_cycle >= 0 and cycle > fetch_cycle:
                    residency += cycle - fetch_cycle
            if observer is not None:
                observer.on_commit(head, cycle)
            committed += 1
            # Only true-path instructions commit, and every one carries
            # its stream index.
            thread.last_committed_true_index = head.true_index
        if residency:
            power.committed_instr_cycles += residency
        if committed:
            if regfile_writes:
                activity[_REGFILE] += regfile_writes
            if dcache_accesses:
                activity[_DCACHE] += dcache_accesses
                if dcache2_accesses:
                    activity[_DCACHE2] += dcache2_accesses
            if branch_commits:
                activity[_BPRED] += branch_commits
            kernel.stats.committed += committed
            kernel.rob_count -= committed
            kernel.lsq_count -= freed_lsq
            thread.committed += committed
            thread.commits_since_prune += committed
            if thread.commits_since_prune >= _PRUNE_INTERVAL:
                thread.supply.prune_before(thread.last_committed_true_index)
                thread.commits_since_prune = 0
        return committed

    def _commit_branch(self, thread, instr: DynamicInstruction) -> None:
        """Retire one conditional branch (training + bookkeeping).  The
        caller batches the per-branch predictor activity."""
        stats = self.kernel.stats
        stats.cond_branches_committed += 1
        thread.cond_branches_committed += 1
        correct = not instr.mispredicted
        if not correct:
            stats.mispredictions_committed += 1
            thread.mispredictions_committed += 1
        thread.bpred.train(instr.pc, instr.actual_taken, instr.bpred_snapshot)
        instr.unit_accesses[_BPRED] += 1
        if thread.confidence is not None:
            thread.confidence.train(
                instr.pc, correct, instr.bpred_snapshot, taken=instr.actual_taken
            )
            if instr.confidence is not None:
                stats.confidence.record(instr.confidence, correct)
        if instr.actual_taken and instr.actual_target >= 0:
            target_address = thread.program.block(instr.actual_target).address
            thread.btb.update(instr.pc, target_address)

    # ------------------------------------------------------------------
    # Recovery (invoked by the writeback stage at branch resolution)
    # ------------------------------------------------------------------

    def recover(self, thread, branch: DynamicInstruction, cycle: int) -> None:
        """Squash the thread's younger instructions and redirect its fetch."""
        stats = self.kernel.stats
        stats.squashes += 1
        # Remove every younger instruction of this thread, youngest first.
        backend = thread.rob.squash_younger(branch.seq)
        if backend:
            self.kernel.rob_count -= len(backend)
            self._squash_many(thread, backend, cycle, in_backend=True)
        thread.iq.squash_younger(branch.seq)
        if thread.fetch_latch.entries:
            self._squash_many(
                thread, thread.fetch_latch.entries, cycle, in_backend=False
            )
            thread.fetch_latch.clear()
        if thread.decode_latch.entries:
            self._squash_many(
                thread, thread.decode_latch.entries, cycle, in_backend=False
            )
            thread.decode_latch.clear()

        # Architectural repair.
        thread.renamer.restore(branch.rename_checkpoint)
        thread.bpred.restore(branch.bpred_snapshot, branch.actual_taken)
        thread.ras.restore(branch.ras_checkpoint)

        # Redirect fetch down the branch's actual path.  Re-pointing the
        # wrong-path cursor invalidates any in-progress supply packet.
        if branch.resume_mode == "true":
            thread.fetch_mode = "true"
            thread.true_index = branch.resume_true_index
            thread.wp_cursor = None
        else:
            thread.fetch_mode = "wrong"
            thread.wp_cursor = branch.resume_wp_cursor
        thread.wp_packet = None
        thread.fetch_stall_until = cycle + self.redirect_penalty
        thread.unresolved_mispredicts -= 1
        if thread.unresolved_mispredicts < 0:
            raise SimulationError("unresolved misprediction count underflow")

    def _squash_many(self, thread, instrs, cycle: int, in_backend: bool) -> None:
        """Squash a batch of one thread's instructions (recovery hot loop).

        Mirrors, per instruction: the squash flag, the power model's
        wasted-energy credit (``PowerModel.credit_squashed`` — inlined for
        the common no-per-thread-ledger case, squashes being the
        second-hottest event in misprediction-heavy runs), observer and
        controller notifications, and — for back-end residents — rename/
        IQ/LSQ deallocation.
        """
        kernel = self.kernel
        power = kernel.power
        observer = kernel.observer
        attribute = power.attribute_threads
        energy_per_access = power._energy_per_access
        wasted = power.wasted_energy
        squashed_accesses = power.squashed_accesses
        wasted_cycles = 0
        count = 0
        iq = thread.iq
        lsq = thread.lsq
        pending_tags = thread.renamer.pending_tags
        waiters = iq.waiters
        squash_hook = thread.ctrl_has_squash_hook
        freed_iq = 0
        freed_lsq = 0
        # Two loop variants keyed on the (per-call constant) residency:
        # front-end latch squashes — the bulk of every recovery — skip
        # the back-end bookkeeping branchlessly and route their two
        # dominant tally shapes (one I-cache access; I-cache + predictor
        # for conditional branches) past the 11-unit attribution loop
        # (``accesses * energy`` with ``accesses == 1`` is exactly
        # ``energy``, so the shortcut accumulates bit-identical floats).
        if not in_backend:
            for instr in instrs:
                instr.squashed = True
                count += 1
                if attribute:
                    power.credit_squashed(instr, cycle)
                else:
                    tally = instr.unit_accesses
                    if tally is not None:
                        if tally == _TALLY_ICACHE_ONLY:
                            wasted[_ICACHE] += energy_per_access[_ICACHE]
                            squashed_accesses[_ICACHE] += 1
                        elif tally == _TALLY_ICACHE_BPRED:
                            wasted[_ICACHE] += energy_per_access[_ICACHE]
                            squashed_accesses[_ICACHE] += 1
                            wasted[_BPRED] += energy_per_access[_BPRED]
                            squashed_accesses[_BPRED] += 1
                        else:
                            for unit, accesses in enumerate(tally):
                                if accesses:
                                    wasted[unit] += accesses * energy_per_access[unit]
                                    squashed_accesses[unit] += accesses
                    fetch_cycle = instr.fetch_cycle
                    if cycle > fetch_cycle >= 0:
                        wasted_cycles += cycle - fetch_cycle
                if observer is not None:
                    observer.on_squash(instr, cycle)
                if instr.static.is_cond_branch:
                    if instr.lowconf:
                        instr.lowconf = False
                        thread.lowconf_inflight -= 1
                    if squash_hook:
                        thread.controller.on_branch_squashed(instr)
                    # A mispredicted branch that already resolved was
                    # discounted at resolution; only still-outstanding
                    # ones are discounted here.
                    if instr.mispredicted and not instr.completed:
                        thread.unresolved_mispredicts -= 1
        else:
            for instr in instrs:
                instr.squashed = True
                count += 1
                if attribute:
                    power.credit_squashed(instr, cycle)
                else:
                    tally = instr.unit_accesses
                    if tally is not None:
                        for unit, accesses in enumerate(tally):
                            if accesses:
                                wasted[unit] += accesses * energy_per_access[unit]
                                squashed_accesses[unit] += accesses
                    fetch_cycle = instr.fetch_cycle
                    if cycle > fetch_cycle >= 0:
                        wasted_cycles += cycle - fetch_cycle
                if observer is not None:
                    observer.on_squash(instr, cycle)
                static = instr.static
                if static.is_cond_branch:
                    if instr.lowconf:
                        instr.lowconf = False
                        thread.lowconf_inflight -= 1
                    if squash_hook:
                        thread.controller.on_branch_squashed(instr)
                    if instr.mispredicted and not instr.completed:
                        thread.unresolved_mispredicts -= 1
                tag = instr.phys_dest
                if tag >= 0:
                    pending_tags.discard(tag)  # RegisterRenamer.forget
                    waiters.pop(tag, None)  # IssueQueue.forget_tag
                if not instr.issued:
                    freed_iq += 1
                if static.is_mem:
                    freed_lsq += 1
        kernel.stats.squashed += count
        thread.squashed += count
        if wasted_cycles:
            power.wasted_instr_cycles += wasted_cycles
        if freed_iq:
            iq.count -= freed_iq
            kernel.iq_count -= freed_iq
            if iq.count < 0:
                raise SimulationError("issue queue count went negative")
        if freed_lsq:
            lsq.occupied -= freed_lsq
            kernel.lsq_count -= freed_lsq
            if lsq.occupied < 0:
                raise SimulationError("release from an empty LSQ")


# ======================================================================
# snapshot of stages/scheduler.py
# ======================================================================

"""The cycle scheduler: drives the stage components through one cycle.

Stages run in reverse pipeline order — commit, writeback, select/issue,
rename+decode, fetch — so that results written back this cycle are
visible to commit next cycle, issue slots freed by writeback are not
reused in the same cycle, and latch entries move at most one stage per
cycle.  After the last stage the scheduler closes the cycle: the per-unit
activity array is integrated by the power model (clock-tree power driven
by ROB occupancy from the kernel's incremental counter — no per-cycle
rescan of the threads), and the cycle counter advances.

The scheduler holds the stage components as plain attributes, so tests
and future scenarios can wrap or replace a single stage without touching
the kernel.
"""


from repro.pipeline.sanitizer import check_cycle_end, check_invariants
from repro.power.units import NUM_UNITS


class ObjectCycleScheduler:
    """Owns the five stage components and advances them one cycle at a time."""

    __slots__ = (
        "kernel", "total_rob_size",
        "commit", "writeback", "issue", "decode_rename", "fetch",
        "stages",
    )

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        # Constant once the kernel's threads are final (the kernel builds
        # its scheduler last).
        self.total_rob_size = kernel.total_rob_size
        self.commit = ObjectCommitRecoverStage(kernel)
        self.writeback = ObjectExecuteWritebackStage(kernel, recovery=self.commit)
        self.issue = ObjectSelectIssueStage(kernel)
        self.decode_rename = ObjectDecodeRenameStage(kernel)
        self.fetch = ObjectFetchStage(kernel)
        # Reverse pipeline order, the order ``step`` runs them in.  The
        # stage objects stay plain attributes and ``step`` dispatches
        # through them each cycle, so tests and scenarios may wrap or
        # replace a single stage (or its ``tick``) at any time.
        self.stages = (
            self.commit,
            self.writeback,
            self.issue,
            self.decode_rename,
            self.fetch,
        )

    def step(self) -> None:
        """Advance the machine by one cycle."""
        kernel = self.kernel
        cycle = kernel.cycle
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        self.writeback.tick(cycle, activity)
        self.issue.tick(cycle, activity)
        self.decode_rename.tick(cycle, activity)
        self.fetch.tick(cycle, activity)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1

    def step_sanitized(self) -> None:
        """``step`` with invariant checks after every stage tick.

        The kernel binds its ``_step`` to this method instead of ``step``
        when ``config.sanitize`` is set (see ``Processor._finish_threads``)
        — the plain ``step`` carries no sanitize branch, so runs without
        the mode pay nothing.  The stage sequence and the cycle close
        mirror ``step`` exactly; a sanitized run is bit-identical or
        raises :class:`~repro.errors.SanitizerError`.
        """
        kernel = self.kernel
        cycle = kernel.cycle
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        check_invariants(kernel, self.commit.name, cycle)
        self.writeback.tick(cycle, activity)
        check_invariants(kernel, self.writeback.name, cycle)
        self.issue.tick(cycle, activity)
        check_invariants(kernel, self.issue.name, cycle)
        self.decode_rename.tick(cycle, activity)
        check_invariants(kernel, self.decode_rename.name, cycle)
        self.fetch.tick(cycle, activity)
        check_invariants(kernel, self.fetch.name, cycle)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        check_cycle_end(kernel, cycle)

    def step_instrumented(self) -> None:
        """``step`` bracketed by the probe bus's per-cycle sampling.

        Chosen by ``Processor._finish_threads`` when ``config.telemetry``
        is set — the same construction-time dispatch as the sanitizer, so
        the plain ``step`` carries no telemetry branch.  The bus samples
        occupancy at cycle top and differences the kernel's statistics at
        cycle bottom (see :class:`repro.telemetry.probes.ProbeBus`); it
        never writes simulation state, so an instrumented run is
        bit-identical to an uninstrumented one.
        """
        kernel = self.kernel
        probes = kernel.probes
        cycle = kernel.cycle
        probes.begin_cycle(kernel, cycle)
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        self.writeback.tick(cycle, activity)
        self.issue.tick(cycle, activity)
        self.decode_rename.tick(cycle, activity)
        self.fetch.tick(cycle, activity)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        probes.end_cycle(kernel)

    def step_instrumented_sanitized(self) -> None:
        """Probe sampling plus invariant checks (telemetry + sanitize)."""
        kernel = self.kernel
        probes = kernel.probes
        cycle = kernel.cycle
        probes.begin_cycle(kernel, cycle)
        activity = [0] * NUM_UNITS
        self.commit.tick(cycle, activity)
        check_invariants(kernel, self.commit.name, cycle)
        self.writeback.tick(cycle, activity)
        check_invariants(kernel, self.writeback.name, cycle)
        self.issue.tick(cycle, activity)
        check_invariants(kernel, self.issue.name, cycle)
        self.decode_rename.tick(cycle, activity)
        check_invariants(kernel, self.decode_rename.name, cycle)
        self.fetch.tick(cycle, activity)
        check_invariants(kernel, self.fetch.name, cycle)
        power = kernel.power
        in_flight = kernel.rob_count
        power.end_cycle(activity, in_flight / self.total_rob_size)
        power.total_instr_cycles += in_flight
        kernel.stats.cycles += 1
        kernel.cycle = cycle + 1
        probes.end_cycle(kernel)
        check_cycle_end(kernel, cycle)
