"""Load/store queue: occupancy tracking for the Table-3 64-entry LSQ.

Memory disambiguation is optimistic (loads never wait on older stores);
the LSQ's simulated role is the structural hazard at dispatch and the
activity counts the power model's ``lsq`` block consumes.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instruction import DynamicInstruction


class LoadStoreQueue:
    """Bounded set of in-flight memory operations."""

    __slots__ = ("size", "occupied")

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise SimulationError("LSQ size must be positive")
        self.size = size
        # Occupancy; public so the dispatch loop can read it without a
        # property call (never written from outside this class).
        self.occupied = 0

    def __len__(self) -> int:
        return self.occupied

    @property
    def full(self) -> bool:
        """True when a memory op cannot dispatch this cycle."""
        return self.occupied >= self.size

    def allocate(self, instruction: DynamicInstruction) -> None:
        """Reserve an entry at dispatch."""
        if self.occupied >= self.size:
            raise SimulationError("allocate into a full LSQ")
        self.occupied += 1

    def release(self) -> None:
        """Free an entry (commit or squash of a memory op)."""
        if self.occupied <= 0:
            raise SimulationError("release from an empty LSQ")
        self.occupied -= 1
