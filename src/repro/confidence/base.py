"""Confidence estimator interface and the four-level categorisation."""

from __future__ import annotations

import enum
from typing import Any

from repro.bpred.base import BranchPredictor, Prediction


@enum.unique
class ConfidenceLevel(enum.IntEnum):
    """Paper §4.2: four confidence states, ordered by decreasing confidence.

    The integer ordering (VHC < HC < LC < VLC) doubles as a *throttling
    aggressiveness* ordering: higher value = less confidence = more
    aggressive heuristics may fire.
    """

    VHC = 0  # very-high confidence
    HC = 1  # high confidence
    LC = 2  # low confidence
    VLC = 3  # very-low confidence

    @property
    def is_low(self) -> bool:
        """True for the two low-confidence states (LC, VLC)."""
        return self >= ConfidenceLevel.LC


def history_of_snapshot(snapshot: Any) -> int:
    """Extract an integer history value from a predictor snapshot.

    gshare snapshots are plain ints; hybrid/two-level snapshots are tuples
    whose first element is the history; history-free predictors carry None.
    Confidence tables use this value for their own indexing so the estimate
    and the later training update hit the same entry.
    """
    if snapshot is None:
        return 0
    if isinstance(snapshot, int):
        return snapshot
    if isinstance(snapshot, tuple) and snapshot and isinstance(snapshot[0], int):
        return snapshot[0]
    return 0


class ConfidenceEstimator:
    """Assign a confidence level to each conditional-branch prediction."""

    __slots__ = ()

    name = "abstract"

    def set_actual(self, taken: bool) -> None:
        """Tell the estimator the branch's resolved direction before
        :meth:`estimate`.

        The trace-driven front-end knows each branch's outcome at fetch
        time; estimators that model *data-value* knowledge (the perfect
        oracle, or BPRU's value predictor on a value hit) consume it.
        Table-driven estimators ignore it.
        """
        return None

    def estimate(
        self,
        pc: int,
        prediction: Prediction,
        predictor: BranchPredictor,
        update_state: bool = True,
    ) -> ConfidenceLevel:
        """Label a prediction made at fetch time.

        ``update_state`` is False for wrong-path fetches: estimator state
        that advances speculatively at fetch (e.g. BPRU's streak counters)
        is checkpointed and repaired on a squash in hardware, which a
        trace-driven model expresses by never applying the update.
        """
        raise NotImplementedError

    def train(self, pc: int, correct: bool, snapshot: Any, taken: bool = None) -> None:
        """Update the estimator at commit.

        ``correct`` is whether the prediction was right; ``taken`` is the
        resolved direction (used by estimators that model loop trips).
        """
        raise NotImplementedError

    def storage_bits(self) -> int:
        """Estimator storage in bits (for the Fig. 7 size sweep)."""
        raise NotImplementedError
