"""Perfect (oracle) confidence estimation.

Labels every prediction with full knowledge of the outcome: mispredictions
are VLC, correct predictions VHC.  This is the upper bound any realistic
estimator is chasing (SPEC = PVN = 100%), and it drives the oracle-fetch
experiments of the paper's Figure 1 when combined with fetch gating.
"""

from __future__ import annotations

from typing import Any

from repro.bpred.base import BranchPredictor, Prediction
from repro.confidence.base import ConfidenceEstimator, ConfidenceLevel


class PerfectEstimator(ConfidenceEstimator):
    """Oracle estimator: the pipeline tells it the actual outcome via hint."""

    name = "perfect"

    __slots__ = ("_next_actual_taken",)

    def __init__(self) -> None:
        self._next_actual_taken = None

    def set_actual(self, taken: bool) -> None:
        """Provide the true outcome of the branch about to be estimated.

        The fetch stage knows the true outcome in a trace-driven simulator;
        it deposits the outcome here immediately before calling estimate().
        """
        self._next_actual_taken = taken

    def estimate(
        self,
        pc: int,
        prediction: Prediction,
        predictor: BranchPredictor,
        update_state: bool = True,
    ) -> ConfidenceLevel:
        if self._next_actual_taken is None:
            # Without a hint there is nothing to be oracular about.
            return ConfidenceLevel.HC
        actual = self._next_actual_taken
        self._next_actual_taken = None
        if prediction.taken == actual:
            return ConfidenceLevel.VHC
        return ConfidenceLevel.VLC

    def train(self, pc: int, correct: bool, snapshot: Any, taken: bool = None) -> None:
        return None

    def storage_bits(self) -> int:
        return 0
