"""Branch confidence estimation.

The paper categorises each conditional-branch prediction into four states
(§4.2): very-high (VHC), high (HC), low (LC) and very-low confidence (VLC).
Two estimators are reproduced: the JRS resetting-counter estimator (used by
the Pipeline Gating baseline, binary HC/LC) and the modified BPRU estimator
(4-level, used by Selective Throttling).  A perfect oracle estimator bounds
what any estimator could achieve.
"""

from repro.confidence.base import ConfidenceEstimator, ConfidenceLevel, history_of_snapshot
from repro.confidence.bpru import BPRUEstimator
from repro.confidence.jrs import JRSEstimator
from repro.confidence.metrics import ConfidenceMatrix
from repro.confidence.perfect import PerfectEstimator
from repro.confidence.selfconf import (
    CounterConfidenceEstimator,
    PerceptronConfidenceEstimator,
)

__all__ = [
    "ConfidenceLevel",
    "ConfidenceEstimator",
    "JRSEstimator",
    "BPRUEstimator",
    "PerfectEstimator",
    "PerceptronConfidenceEstimator",
    "CounterConfidenceEstimator",
    "ConfidenceMatrix",
    "history_of_snapshot",
]
