"""Self-confidence estimators: confidence from the predictor's own state.

Two estimators that need no separate confidence table:

* :class:`PerceptronConfidenceEstimator` — the perceptron's output
  magnitude is a direct confidence signal (|output| >> theta means the
  weights agree strongly).  Thresholds at fractions of theta map the
  magnitude onto the paper's four levels.
* :class:`CounterConfidenceEstimator` — the underlying predictor's
  saturating counter alone: weak counters are LC, strong ones HC.  This is
  the degenerate estimator the paper's §4.3 fallback uses on a BPRU table
  miss, promoted to a standalone baseline for ablations.

Both are *free* in hardware terms — the comparison against BPRU/JRS shows
what dedicated confidence storage buys.
"""

from __future__ import annotations

from typing import Any

from repro.bpred.base import BranchPredictor, Prediction
from repro.bpred.perceptron import PerceptronPredictor
from repro.confidence.base import ConfidenceEstimator, ConfidenceLevel
from repro.errors import ConfigurationError


class PerceptronConfidenceEstimator(ConfidenceEstimator):
    """Four-level confidence from perceptron output magnitude.

    ``|output| >= theta`` is VHC, ``>= theta/2`` HC, ``>= theta/4`` LC and
    anything closer to the decision boundary VLC.  The thresholds are the
    natural break points of the perceptron training rule (weights stop
    training above theta).
    """

    name = "perceptron-self"

    __slots__ = ()

    def estimate(
        self,
        pc: int,
        prediction: Prediction,
        predictor: BranchPredictor,
        update_state: bool = True,
    ) -> ConfidenceLevel:
        if not isinstance(predictor, PerceptronPredictor):
            raise ConfigurationError(
                "perceptron-self confidence requires a perceptron predictor"
            )
        magnitude = predictor.output_magnitude(prediction.snapshot)
        theta = predictor.theta
        if magnitude >= theta:
            return ConfidenceLevel.VHC
        if magnitude >= theta // 2:
            return ConfidenceLevel.HC
        if magnitude >= theta // 4:
            return ConfidenceLevel.LC
        return ConfidenceLevel.VLC

    def train(self, pc: int, correct: bool, snapshot: Any, taken: bool = None) -> None:
        return None  # stateless: the predictor's training is the training

    def storage_bits(self) -> int:
        return 0


class CounterConfidenceEstimator(ConfidenceEstimator):
    """Two-level confidence straight from the predictor's counter.

    Weakly taken / weakly not-taken counters are LC; strong counters HC.
    """

    name = "counter-self"

    __slots__ = ()

    def estimate(
        self,
        pc: int,
        prediction: Prediction,
        predictor: BranchPredictor,
        update_state: bool = True,
    ) -> ConfidenceLevel:
        strength = predictor.counter_strength(pc, prediction.snapshot)
        if strength in (1, 2):
            return ConfidenceLevel.LC
        return ConfidenceLevel.HC

    def train(self, pc: int, correct: bool, snapshot: Any, taken: bool = None) -> None:
        return None

    def storage_bits(self) -> int:
        return 0
